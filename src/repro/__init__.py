"""repro: a reproduction of "Focus: Querying Large Video Datasets with
Low Latency and Low Cost" (Hsieh et al., OSDI 2018).

Focus splits video-query work between ingest time and query time: a
cheap per-stream specialized CNN indexes objects under their top-K
classes at ingest, similar objects are clustered so the expensive
ground-truth CNN verifies only cluster centroids at query time, and a
tuner trades ingest cost against query latency while meeting
user-specified precision/recall targets.

Quick start::

    from repro import FocusSystem

    system = FocusSystem()
    system.ingest_stream("auburn_c", duration_s=300)
    answer = system.query("auburn_c", "car")
    print(answer.frames, answer.precision, answer.recall)

See README.md for the tour and docs/ARCHITECTURE.md for the
module-by-module mapping to the paper's sections and figures.
"""

from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.streaming import ChunkReport, StreamIngestor
from repro.core.system import FocusSystem, QueryAnswer, StreamHandle
from repro.core.costmodel import CostCategory, GPULedger
from repro.baselines import IngestAllBaseline, QueryAllBaseline
from repro.fabric import (
    FabricRouter,
    FabricSupervisor,
    MigrationReport,
    PlacementTable,
    ShardClient,
    ShardNode,
    migrate_stream,
    migrate_stream_remote,
)
from repro.serve import MultiStreamAnswer, QueryRequest, QueryService, VerificationCache
from repro.storage.docstore import DocumentStore
from repro.storage.faults import FaultInjected, FaultyStore
from repro.storage.journal import IngestJournal, JournalCorruption, StaleEpochError
from repro.video import STREAMS, generate_observations, get_profile
from repro.cnn import GROUND_TRUTH, cheap_cnn, resnet152, specialize

__version__ = "1.2.0"

__all__ = [
    "FabricRouter",
    "FabricSupervisor",
    "MigrationReport",
    "PlacementTable",
    "ShardClient",
    "ShardNode",
    "migrate_stream",
    "migrate_stream_remote",
    "AccuracyTarget",
    "FocusConfig",
    "Policy",
    "TunerSettings",
    "FocusSystem",
    "QueryAnswer",
    "StreamHandle",
    "ChunkReport",
    "StreamIngestor",
    "CostCategory",
    "GPULedger",
    "IngestAllBaseline",
    "QueryAllBaseline",
    "MultiStreamAnswer",
    "QueryRequest",
    "QueryService",
    "VerificationCache",
    "DocumentStore",
    "FaultInjected",
    "FaultyStore",
    "IngestJournal",
    "JournalCorruption",
    "StaleEpochError",
    "STREAMS",
    "generate_observations",
    "get_profile",
    "GROUND_TRUTH",
    "cheap_cnn",
    "resnet152",
    "specialize",
    "__version__",
]
