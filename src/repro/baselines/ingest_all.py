"""The Ingest-all baseline: GT-CNN on everything at ingest time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.metrics import SegmentMetrics, gt_segments, result_segments, segment_metrics
from repro.video.synthesis import ObservationTable


@dataclass
class IngestAllResult:
    """Outcome of Ingest-all's ingest pass."""

    ingest_gpu_seconds: float
    inferences: int


class IngestAllBaseline:
    """Classifies every detected object with GT-CNN at ingest.

    Queries become inverted-index lookups with zero GPU cost and zero
    latency (Section 6.1: "The query latency of Ingest-all is 0").
    Accuracy equals the ground truth by construction.
    """

    def __init__(self, gt_model: ClassifierModel, ledger: Optional[GPULedger] = None):
        if not gt_model.is_ground_truth:
            raise ValueError("Ingest-all runs the ground-truth model")
        self.gt_model = gt_model
        self.ledger = ledger or GPULedger()
        self._tables: Dict[str, ObservationTable] = {}
        self._inverted: Dict[str, Dict[int, np.ndarray]] = {}

    def ingest(self, table: ObservationTable) -> IngestAllResult:
        """Run GT-CNN over all moving objects and build the index."""
        entry = self.ledger.record(
            CostCategory.BASELINE_INGEST,
            self.gt_model,
            len(table),
            note="ingest-all stream=%s" % table.stream,
        )
        inverted: Dict[int, np.ndarray] = {}
        order = np.argsort(table.class_id, kind="stable")
        sorted_cls = table.class_id[order]
        boundaries = np.nonzero(np.diff(sorted_cls))[0] + 1
        for group in np.split(order, boundaries):
            if len(group):
                inverted[int(table.class_id[group[0]])] = group
        self._tables[table.stream] = table
        self._inverted[table.stream] = inverted
        return IngestAllResult(
            ingest_gpu_seconds=entry.gpu_seconds, inferences=len(table)
        )

    def query(self, stream: str, class_id: int) -> SegmentMetrics:
        """Zero-GPU query: exact lookup in the inverted index."""
        table = self._tables[stream]
        rows = self._inverted[stream].get(class_id, np.zeros(0, dtype=np.int64))
        return segment_metrics(table, class_id, rows)

    def query_latency_seconds(self) -> float:
        """Index lookups involve no GPU work."""
        return 0.0
