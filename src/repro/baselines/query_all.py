"""The Query-all baseline: GT-CNN on the queried interval at query time."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.metrics import SegmentMetrics, segment_metrics
from repro.video.synthesis import ObservationTable


@dataclass
class QueryAllAnswer:
    """Outcome of one Query-all query."""

    metrics: SegmentMetrics
    gt_inferences: int
    gpu_seconds: float

    def latency_seconds(self, num_gpus: int = 1) -> float:
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        return self.gpu_seconds / num_gpus


class QueryAllBaseline:
    """Does nothing at ingest; classifies every object at query time.

    Strengthened with motion detection: only detected moving objects
    (the observation table) are classified, never empty frames --
    NoScope's core optimization (Section 6.1).
    """

    def __init__(self, gt_model: ClassifierModel, ledger: Optional[GPULedger] = None):
        if not gt_model.is_ground_truth:
            raise ValueError("Query-all runs the ground-truth model")
        self.gt_model = gt_model
        self.ledger = ledger or GPULedger()
        self._tables: Dict[str, ObservationTable] = {}

    def ingest(self, table: ObservationTable) -> None:
        """Zero GPU work: just record the stream's detections."""
        self._tables[table.stream] = table

    def query(
        self,
        stream: str,
        class_id: int,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryAllAnswer:
        """Classify every object in the interval with GT-CNN."""
        table = self._tables[stream]
        sub = table if time_range is None else table.time_range(*time_range)
        entry = self.ledger.record(
            CostCategory.BASELINE_QUERY,
            self.gt_model,
            len(sub),
            note="query-all class=%d stream=%s" % (class_id, stream),
        )
        rows = np.nonzero(sub.class_id == class_id)[0]
        metrics = segment_metrics(sub, class_id, rows)
        return QueryAllAnswer(
            metrics=metrics, gt_inferences=len(sub), gpu_seconds=entry.gpu_seconds
        )

    def ingest_gpu_seconds(self) -> float:
        """Ingest is free for Query-all (Section 6.1)."""
        return 0.0
