"""Baseline comparators (Section 6.1, Baselines).

* **Ingest-all**: runs the GT-CNN on every detected moving object at
  ingest time and stores an inverted index; queries are free lookups.
* **Query-all**: does nothing at ingest; at query time runs the GT-CNN
  on every object in the queried interval.

Both are strengthened with motion detection (background subtraction),
so neither spends GPU time on frames without moving objects -- the core
optimization of NoScope that the paper folds into its baselines.
"""

from repro.baselines.ingest_all import IngestAllBaseline
from repro.baselines.query_all import QueryAllBaseline

__all__ = ["IngestAllBaseline", "QueryAllBaseline"]
