"""Single-pass incremental clustering of object feature vectors.

Section 4.2 of the paper: objects are clustered online at ingest time.
A new object joins the closest existing cluster if that cluster's
centroid is within L2 distance T; otherwise it seeds a new cluster.
The number of *live* clusters is capped at M by retiring the smallest
ones (their contents are already safely recorded in the index), giving
O(M n) total complexity.

Implementation notes beyond the paper's sketch:

* Clusters track a running-mean centroid for distance tests, and
  remember their *seed observation* -- the first object that opened the
  cluster -- which is the object the GT-CNN classifies at query time
  ("centroid object" in the paper's index layout).
* A per-track shortcut first tests the cluster this object's track was
  last assigned to.  Objects of one track are nearly identical frame to
  frame (Section 2.2.3), so the test hits almost always and the scan
  over all live clusters is skipped; semantics are unchanged in the
  common case because the previous cluster is also the nearest one.
  ``strict=True`` disables the shortcut and always scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.video.synthesis import ObservationTable


def group_rows_by_cluster(
    assignments: np.ndarray, num_clusters: int
) -> List[np.ndarray]:
    """Row indexes grouped by cluster id (list index = cluster id).

    Ids without rows in ``assignments`` get an empty group; rows within
    a group keep their original (stream) order.
    """
    order = np.argsort(assignments, kind="stable")
    sorted_ids = assignments[order]
    boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
    groups = np.split(order, boundaries)
    out: List[np.ndarray] = [np.zeros(0, dtype=np.int64)] * num_clusters
    for group in groups:
        if len(group):
            out[int(assignments[group[0]])] = group
    return out


@dataclass(frozen=True)
class ClusterSummary:
    """Immutable result of a clustering pass.

    Attributes:
        assignments: cluster id per observation row.
        seed_rows: per cluster, the row index of its seed observation.
        sizes: per cluster, its member count.
    """

    assignments: np.ndarray
    seed_rows: np.ndarray
    sizes: np.ndarray

    @property
    def num_clusters(self) -> int:
        return len(self.seed_rows)

    @property
    def num_observations(self) -> int:
        return len(self.assignments)

    def members_by_cluster(self) -> List[np.ndarray]:
        """Row indexes per cluster id (index = cluster id).

        Cached after the first call: both index variants consume this
        grouping, and re-sorting the full assignment array per caller
        dominates index construction on large windows.  The returned
        arrays are shared -- treat them as read-only.
        """
        cached = self.__dict__.get("_members_cache")
        if cached is not None:
            return cached
        out = group_rows_by_cluster(self.assignments, self.num_clusters)
        # frozen dataclass: stash the cache outside the declared fields
        object.__setattr__(self, "_members_cache", out)
        return out


class IncrementalClusterer:
    """Online single-pass clusterer with a live-cluster cap."""

    def __init__(
        self,
        threshold: float,
        dim: int,
        max_live_clusters: int = 512,
        strict: bool = False,
    ):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if max_live_clusters < 1:
            raise ValueError("max_live_clusters must be >= 1")
        self.threshold = threshold
        self.dim = dim
        self.max_live = max_live_clusters
        self.strict = strict

        self._capacity = max(64, max_live_clusters)
        self._centroids = np.zeros((self._capacity, dim), dtype=np.float64)
        self._counts = np.zeros(self._capacity, dtype=np.int64)
        self._live_ids = np.full(self._capacity, -1, dtype=np.int64)
        self._n_live = 0

        self._next_id = 0
        self._seed_rows: List[int] = []
        self._sizes: List[int] = []
        #: per-row cluster ids, amortized-doubling buffer: appending a
        #: chunk copies only that chunk, and a snapshot is an O(1) view
        self._assign_buf = np.zeros(0, dtype=np.int64)
        self._rows_seen = 0
        self._track_cache: Dict[int, int] = {}  # track -> slot in live arrays
        self._slot_of_id: Dict[int, int] = {}
        self.full_scans = 0
        self.shortcut_hits = 0

    @property
    def num_clusters(self) -> int:
        return self._next_id

    def _evict_smallest(self) -> None:
        """Retire the smallest live cluster (its id stays valid)."""
        live = slice(0, self._n_live)
        victim = int(np.argmin(self._counts[live]))
        victim_id = int(self._live_ids[victim])
        last = self._n_live - 1
        if victim != last:
            self._centroids[victim] = self._centroids[last]
            self._counts[victim] = self._counts[last]
            moved_id = int(self._live_ids[last])
            self._live_ids[victim] = moved_id
            self._slot_of_id[moved_id] = victim
        self._n_live = last
        self._slot_of_id.pop(victim_id, None)
        # tracks pointing at the evicted cluster lose their shortcut;
        # tracks pointing at the moved (formerly last) slot are re-pointed
        stale = [t for t, slot in self._track_cache.items() if slot == victim or slot == last]
        for t in stale:
            if self._track_cache[t] == last and victim != last:
                self._track_cache[t] = victim
            else:
                del self._track_cache[t]

    def _new_cluster(self, vector: np.ndarray, row: int) -> int:
        if self._n_live >= self.max_live:
            self._evict_smallest()
        slot = self._n_live
        self._centroids[slot] = vector
        self._counts[slot] = 1
        cid = self._next_id
        self._live_ids[slot] = cid
        self._slot_of_id[cid] = slot
        self._n_live += 1
        self._next_id += 1
        self._seed_rows.append(row)
        self._sizes.append(1)
        return slot

    def _join(self, slot: int, vector: np.ndarray) -> int:
        count = self._counts[slot]
        self._centroids[slot] = (self._centroids[slot] * count + vector) / (count + 1)
        self._counts[slot] = count + 1
        cid = int(self._live_ids[slot])
        self._sizes[cid] += 1
        return cid

    def add(
        self,
        features: np.ndarray,
        track_ids: np.ndarray,
        precomputed_assignments: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Cluster a chunk of observations (in stream order).

        Args:
            features: [n, dim] feature rows; NaN rows are allowed only
                when ``precomputed_assignments`` marks them (pixel-diff
                suppressed objects join their track's current cluster
                without a feature vector).
            track_ids: [n] track id per row (the shortcut key).
            precomputed_assignments: [n] of -1 (cluster normally) or -2
                (suppressed: join the track's cached cluster).

        Returns:
            [n] cluster ids.
        """
        n = len(features)
        if len(track_ids) != n:
            raise ValueError("features and track_ids must align")
        if self._rows_seen + n > len(self._assign_buf):
            capacity = max(1024, len(self._assign_buf))
            while capacity < self._rows_seen + n:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._rows_seen] = self._assign_buf[: self._rows_seen]
            self._assign_buf = grown
        out = np.empty(n, dtype=np.int64)
        threshold = self.threshold
        for i in range(n):
            track = int(track_ids[i])
            cached_slot = self._track_cache.get(track)
            suppressed = (
                precomputed_assignments is not None and precomputed_assignments[i] == -2
            )
            if suppressed and cached_slot is not None:
                vector = self._centroids[cached_slot]
                cid = self._join(cached_slot, vector)
                out[i] = cid
                self._rows_seen += 1
                continue
            vector = features[i]
            slot = None
            if not self.strict and cached_slot is not None:
                delta = self._centroids[cached_slot] - vector
                if float(np.sqrt(delta @ delta)) <= threshold:
                    slot = cached_slot
                    self.shortcut_hits += 1
            if slot is None and self._n_live > 0:
                self.full_scans += 1
                live = self._centroids[: self._n_live]
                d2 = np.einsum("ij,ij->i", live - vector, live - vector)
                best = int(np.argmin(d2))
                if float(np.sqrt(d2[best])) <= threshold:
                    slot = best
            if slot is None:
                slot = self._new_cluster(vector, self._rows_seen)
                cid = int(self._live_ids[slot])
            else:
                cid = self._join(slot, vector)
            self._track_cache[track] = slot
            out[i] = cid
            self._rows_seen += 1
        self._assign_buf[self._rows_seen - n : self._rows_seen] = out
        return out

    def snapshot(self) -> ClusterSummary:
        """The clustering state so far, *without* closing the clusterer.

        Live ingest calls this after every chunk: the returned summary
        covers every row fed through :meth:`add` up to now, while the
        clusterer keeps its centroids, live-cluster slots, and per-track
        shortcuts so the next chunk continues exactly where this one
        stopped.
        """
        return ClusterSummary(
            # a view of the buffer prefix: rows before _rows_seen are
            # never rewritten, and buffer growth reallocates rather than
            # mutating, so earlier snapshots stay frozen
            assignments=self._assign_buf[: self._rows_seen],
            seed_rows=np.asarray(self._seed_rows, dtype=np.int64),
            sizes=np.asarray(self._sizes, dtype=np.int64),
        )

    def finalize(self) -> ClusterSummary:
        """Freeze and return the clustering result (one-shot ingest)."""
        return self.snapshot()


def cluster_table(
    table: ObservationTable,
    model: ClassifierModel,
    threshold: float,
    max_live_clusters: int = 512,
    suppressed: Optional[np.ndarray] = None,
    chunk_rows: int = 65536,
    strict: bool = False,
) -> ClusterSummary:
    """Cluster all observations of ``table`` with ``model``'s features.

    Features are generated in chunks to bound memory; suppressed rows
    (pixel differencing) skip feature extraction entirely and join their
    track's current cluster.
    """
    clusterer = IncrementalClusterer(
        threshold=threshold,
        dim=model.feature_dim,
        max_live_clusters=max_live_clusters,
        strict=strict,
    )
    extractor = model.feature_extractor()
    n = len(table)
    for start in range(0, max(n, 1), chunk_rows):
        stop = min(start + chunk_rows, n)
        if stop <= start:
            break
        mask = np.zeros(n, dtype=bool)
        mask[start:stop] = True
        chunk = table.select(mask)
        feats = extractor.extract(chunk).astype(np.float64)
        pre = None
        if suppressed is not None:
            pre = np.where(suppressed[start:stop], -2, -1).astype(np.int64)
        clusterer.add(feats, chunk.track_id, pre)
    return clusterer.finalize()
