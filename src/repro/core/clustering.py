"""Single-pass incremental clustering of object feature vectors.

Section 4.2 of the paper: objects are clustered online at ingest time.
A new object joins the closest existing cluster if that cluster's
centroid is within L2 distance T; otherwise it seeds a new cluster.
The number of *live* clusters is capped at M by retiring the smallest
ones (their contents are already safely recorded in the index), giving
O(M n) total complexity.

Implementation notes beyond the paper's sketch:

* Clusters keep the *sum* of their dense (CNN-processed) member
  features plus a dense count; the centroid is their mean.  Objects
  suppressed by pixel differencing never ran the CNN, so they join
  their track's current cluster by count only -- they carry no feature
  evidence and leave the centroid untouched (in exact arithmetic the
  old running-mean update did the same).  Suppressed objects follow
  their track's cluster even after it was retired from the live set:
  pixel-diff matching is independent of the clusterer's working set.
* Each cluster remembers its *seed observation* -- the first object
  that opened it -- which is the object the GT-CNN classifies at query
  time ("centroid object" in the paper's index layout).
* A per-track shortcut first tests the cluster this object's track was
  last assigned to.  Objects of one track are nearly identical frame to
  frame (Section 2.2.3), so the test hits almost always and the scan
  over all live clusters is skipped; semantics are unchanged in the
  common case because the previous cluster is also the nearest one.
  ``strict=True`` disables the shortcut and always scans.

Two execution kernels produce bit-identical assignments:

* ``kernel="scalar"`` -- the row-at-a-time reference loop (the pre-PR3
  hot path, kept as the semantic oracle for tests and benchmarks).
* ``kernel="batch"`` (default) -- a vectorized speculative kernel.  It
  groups a chunk's rows by track, *hypothesizes* that every row joins
  its track's cached cluster (the shortcut), and verifies whole runs at
  once: per-track prefix sums over the run's feature rows reproduce the
  exact sequential centroid evolution (``cumsum`` adds in the same
  order the scalar loop would), so the shortcut distance test for every
  row of a run is evaluated in one vectorized pass.  Rows whose run
  breaks -- shortcut miss, unknown track, retired cluster, new cluster,
  retirement -- fall back to the ordered scalar step at exactly their
  stream position, with all earlier rows committed first, so cluster
  state at every scalar step matches the reference loop bit for bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.video.synthesis import ObservationTable


def group_slices(assignments: np.ndarray, num_clusters: int):
    """One argsort for all per-cluster row groupings.

    Returns ``(order, starts)`` such that cluster ``c``'s rows, in
    stream order, are ``order[starts[c]:starts[c + 1]]``.  Callers that
    need groupwise aggregates (sizes, first/last times) can reduce over
    ``starts`` without per-cluster Python loops.
    """
    order = np.argsort(assignments, kind="stable")
    if len(assignments):
        counts = np.bincount(assignments, minlength=num_clusters)
    else:
        counts = np.zeros(num_clusters, dtype=np.int64)
    starts = np.zeros(num_clusters + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return order, starts


def group_rows_by_cluster(
    assignments: np.ndarray, num_clusters: int
) -> List[np.ndarray]:
    """Row indexes grouped by cluster id (list index = cluster id).

    Ids without rows in ``assignments`` get an empty group of their
    own; rows within a group keep their original (stream) order.
    """
    order, starts = group_slices(assignments, num_clusters)
    return [order[starts[c]:starts[c + 1]] for c in range(num_clusters)]


def grouped_min_max(
    assignments: np.ndarray, num_clusters: int, values: np.ndarray
):
    """Per-cluster ``(min, max)`` of ``values`` in two reduceat passes.

    Replaces the per-cluster Python loops the index layers used for
    first/last timestamps -- an O(clusters) interpreter cost paid per
    lazy-index refresh.  Empty clusters get ``(0.0, 0.0)``.
    """
    order, starts = group_slices(assignments, num_clusters)
    first = np.zeros(num_clusters, dtype=np.float64)
    last = np.zeros(num_clusters, dtype=np.float64)
    if not len(order):
        return first, last
    sorted_vals = np.asarray(values)[order]
    seg = starts[:-1]
    nonempty = starts[1:] > seg
    if not nonempty.any():
        return first, last
    # reduceat over nonempty segment starts only: empty groups share
    # their neighbour's start index and would corrupt the segmentation
    ne_starts = seg[nonempty]
    first[nonempty] = np.minimum.reduceat(sorted_vals, ne_starts)
    last[nonempty] = np.maximum.reduceat(sorted_vals, ne_starts)
    return first, last


@dataclass(frozen=True)
class ClusterSummary:
    """Immutable result of a clustering pass.

    Attributes:
        assignments: cluster id per observation row.
        seed_rows: per cluster, the row index of its seed observation.
        sizes: per cluster, its member count.
    """

    assignments: np.ndarray
    seed_rows: np.ndarray
    sizes: np.ndarray

    @property
    def num_clusters(self) -> int:
        return len(self.seed_rows)

    @property
    def num_observations(self) -> int:
        return len(self.assignments)

    def members_by_cluster(self) -> List[np.ndarray]:
        """Row indexes per cluster id (index = cluster id).

        Cached after the first call: both index variants consume this
        grouping, and re-sorting the full assignment array per caller
        dominates index construction on large windows.  The returned
        arrays are shared -- treat them as read-only.
        """
        cached = self.__dict__.get("_members_cache")
        if cached is not None:
            return cached
        out = group_rows_by_cluster(self.assignments, self.num_clusters)
        # frozen dataclass: stash the cache outside the declared fields
        object.__setattr__(self, "_members_cache", out)
        return out


#: initial / maximum speculative run length the batch kernel verifies
#: per cluster before committing to more (doubles on clean extension)
_HORIZON_START = 64
_HORIZON_MAX = 8192

_EMPTY_I = np.zeros(0, dtype=np.int64)


class _ClusterRun:
    """Per-cluster speculation state for one batch-kernel invocation.

    A run covers the pending rows of *every* track currently cached on
    the cluster, merged in stream order -- so the prefix-sum chain
    reproduces exactly the sequence of joins the reference loop would
    apply, no matter how the member tracks interleave.
    """

    __slots__ = (
        "cid", "rows", "sup", "ptr", "live",
        "blk_dense", "blk_cpre", "verified_end", "fail_at", "horizon",
    )

    def __init__(self, cid: int, rows: np.ndarray, sup, live: bool):
        self.cid = cid
        self.rows = rows          # chunk positions, ascending
        self.sup = sup            # aligned suppressed flags (or None)
        self.ptr = 0              # rows[:ptr] are committed
        self.live = live          # False once the cluster is retired
        self.blk_dense = _EMPTY_I  # abs idx (into rows) of verified dense rows
        self.blk_cpre = None      # prefix sums: [len(blk_dense)+1, dim]
        self.verified_end = 0     # rows[ptr:verified_end] are verified OK
        self.fail_at = None       # abs idx of known-failing row (== verified_end)
        self.horizon = _HORIZON_START


class IncrementalClusterer:
    """Online single-pass clusterer with a live-cluster cap."""

    #: ``auto`` switches to the batch kernel below this break density
    #: (full scans per row over the recent window): speculation only
    #: pays once shortcut runs are a few dozen rows long
    AUTO_BATCH_BREAK_RATE = 0.02

    def __init__(
        self,
        threshold: float,
        dim: int,
        max_live_clusters: int = 512,
        strict: bool = False,
        kernel: str = "auto",
    ):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if max_live_clusters < 1:
            raise ValueError("max_live_clusters must be >= 1")
        if kernel not in ("auto", "batch", "scalar"):
            raise ValueError("kernel must be 'auto', 'batch' or 'scalar'")
        self.threshold = threshold
        self._t2 = float(threshold) * float(threshold)
        self.dim = dim
        self.max_live = max_live_clusters
        self.strict = strict
        self.kernel = kernel
        #: the kernel auto mode last picked (informational)
        self.active_kernel = "scalar"
        #: decaying window of (full scans, rows) driving auto mode
        self._recent_scans = 0
        self._recent_rows = 0

        capacity = max(64, max_live_clusters)
        self._sums = np.zeros((capacity, dim), dtype=np.float64)
        self._centroids = np.zeros((capacity, dim), dtype=np.float64)
        self._cnorm2 = np.zeros(capacity, dtype=np.float64)
        self._scan_buf = np.empty(capacity, dtype=np.float64)
        self._dense = np.zeros(capacity, dtype=np.int64)
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._live_ids = np.full(capacity, -1, dtype=np.int64)
        self._n_live = 0

        self._next_id = 0
        self._seed_rows: List[int] = []
        self._sizes: List[int] = []
        #: per-row cluster ids, amortized-doubling buffer: appending a
        #: chunk copies only that chunk, and a snapshot is an O(1) view
        self._assign_buf = np.zeros(0, dtype=np.int64)
        self._rows_seen = 0
        #: track -> cluster id of its last assignment.  Keyed by cluster
        #: id (not live slot), so entries survive retirement: suppressed
        #: objects keep following their track's cluster, and retiring a
        #: cluster is O(1) -- no scan over live tracks.
        self._track_cache: Dict[int, int] = {}
        self._slot_of_id: Dict[int, int] = {}
        self.full_scans = 0
        self.shortcut_hits = 0

    @property
    def num_clusters(self) -> int:
        return self._next_id

    # -- shared cluster-state primitives -----------------------------------
    # Every kernel (batch, scalar, strict) funnels through these, with
    # identical floating-point operation order -- the basis of the
    # bit-identical-assignments guarantee.

    def _evict_smallest(self) -> int:
        """Retire the smallest live cluster; returns its (valid) id."""
        victim = int(np.argmin(self._counts[: self._n_live]))
        victim_id = int(self._live_ids[victim])
        last = self._n_live - 1
        if victim != last:
            self._sums[victim] = self._sums[last]
            self._centroids[victim] = self._centroids[last]
            self._cnorm2[victim] = self._cnorm2[last]
            self._dense[victim] = self._dense[last]
            self._counts[victim] = self._counts[last]
            moved_id = int(self._live_ids[last])
            self._live_ids[victim] = moved_id
            self._slot_of_id[moved_id] = victim
        self._n_live = last
        del self._slot_of_id[victim_id]
        return victim_id

    def _new_cluster(self, vector: np.ndarray, vv: float, row: int):
        """Open a cluster seeded by ``vector``; returns (slot, cid, evicted)."""
        evicted = None
        if self._n_live >= self.max_live:
            evicted = self._evict_smallest()
        slot = self._n_live
        self._sums[slot] = vector
        self._centroids[slot] = vector
        self._cnorm2[slot] = vv
        self._dense[slot] = 1
        self._counts[slot] = 1
        cid = self._next_id
        self._live_ids[slot] = cid
        self._slot_of_id[cid] = slot
        self._n_live += 1
        self._next_id += 1
        self._seed_rows.append(row)
        self._sizes.append(1)
        return slot, cid, evicted

    def _join_dense(self, slot: int, vector: np.ndarray) -> int:
        self._sums[slot] += vector
        d = self._dense[slot] + 1
        self._dense[slot] = d
        self._counts[slot] += 1
        centroid = self._sums[slot] / d
        self._centroids[slot] = centroid
        self._cnorm2[slot] = float((centroid * centroid).sum())
        cid = int(self._live_ids[slot])
        self._sizes[cid] += 1
        return cid

    def _scan(self, vector: np.ndarray, vv: float):
        """Distance-squared scan over all live centroids.

        ``d2[i] = |c_i|^2 - 2 c_i.v + |v|^2``, evaluated into a reused
        buffer: one BLAS matvec plus in-place arithmetic, no temporaries.
        """
        n = self._n_live
        buf = self._scan_buf[:n]
        np.dot(self._centroids[:n], vector, out=buf)
        buf *= -2.0
        buf += self._cnorm2[:n]
        buf += vv
        best = int(np.argmin(buf))
        return best, float(buf[best])

    def feature_rows_needed(self, track_ids: np.ndarray,
                            suppressed: np.ndarray) -> np.ndarray:
        """Which rows' feature vectors :meth:`add` will actually read.

        Suppressed rows join their track's cluster without features;
        the only suppressed rows needing a vector are first occurrences
        of tracks this clusterer has never seen (a window truncated
        mid-track).  Callers can skip feature extraction -- the
        dominant ingest CPU cost -- for every other suppressed row.
        """
        need = ~np.asarray(suppressed, dtype=bool)
        if need.all():
            return need
        uniq, first_idx, inverse = np.unique(
            track_ids, return_index=True, return_inverse=True
        )
        cache = self._track_cache
        unknown = np.fromiter(
            (int(t) not in cache for t in uniq), dtype=bool, count=len(uniq)
        )
        first_mask = np.zeros(len(need), dtype=bool)
        first_mask[first_idx] = True
        return need | (first_mask & unknown[inverse])

    def _row_suppressed(self, track: int) -> Optional[int]:
        """Suppressed row: join the track's cluster (live or retired) by
        count only.  Returns None when the track has no cluster yet."""
        cid = self._track_cache.get(track)
        if cid is None:
            return None
        slot = self._slot_of_id.get(cid)
        if slot is not None:
            self._counts[slot] += 1
        self._sizes[cid] += 1
        return cid

    def _row_dense(self, track: int, vector: np.ndarray, row: int,
                   use_shortcut: bool):
        """One dense row through shortcut -> scan -> join/new.

        Returns ``(cid, created, evicted_id)``.
        """
        slot = None
        if use_shortcut:
            cached_cid = self._track_cache.get(track)
            if cached_cid is not None:
                cached_slot = self._slot_of_id.get(cached_cid)
                if cached_slot is not None:
                    delta = self._centroids[cached_slot] - vector
                    d2 = float((delta * delta).sum())
                    if d2 <= self._t2:
                        slot = cached_slot
                        self.shortcut_hits += 1
        evicted = None
        created = False
        if slot is None:
            # |v|^2 is only needed by the scan and for a new cluster's
            # cached norm; the common shortcut-hit path skips it
            vv = float((vector * vector).sum())
            if self._n_live > 0:
                self.full_scans += 1
                best, best_d2 = self._scan(vector, vv)
                if best_d2 <= self._t2:
                    slot = best
            if slot is None:
                slot, cid, evicted = self._new_cluster(vector, vv, row)
                created = True
        if not created:
            cid = self._join_dense(slot, vector)
        self._track_cache[track] = cid
        return cid, created, evicted

    # -- ingest -------------------------------------------------------------
    def add(
        self,
        features: np.ndarray,
        track_ids: np.ndarray,
        precomputed_assignments: Optional[np.ndarray] = None,
        *,
        suppressed: Optional[np.ndarray] = None,
        feature_valid: Optional[np.ndarray] = None,
        feature_fill: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> np.ndarray:
        """Cluster a chunk of observations (in stream order).

        Args:
            features: [n, dim] feature rows.  Rows of suppressed
                observations are never read while their track has a
                cluster, so callers may leave them unset (see
                ``feature_valid``).
            track_ids: [n] track id per row (the shortcut key).
            precomputed_assignments: legacy mask: [n] of -1 (cluster
                normally) or -2 (suppressed); prefer ``suppressed``.
            suppressed: [n] bool; suppressed rows join their track's
                current cluster without a feature vector.
            feature_valid: [n] bool marking which ``features`` rows hold
                real data.  ``None`` means all rows are valid.
            feature_fill: callback ``rows -> [len(rows), dim]`` invoked
                for the rare suppressed row whose track has no cluster
                yet (e.g. a table truncated mid-track); fills
                ``features`` in place.

        Returns:
            [n] cluster ids.
        """
        features = np.asarray(features, dtype=np.float64)
        n = len(features)
        if len(track_ids) != n:
            raise ValueError("features and track_ids must align")
        if suppressed is None and precomputed_assignments is not None:
            suppressed = np.asarray(precomputed_assignments) == -2
        if self._rows_seen + n > len(self._assign_buf):
            capacity = max(1024, len(self._assign_buf))
            while capacity < self._rows_seen + n:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._rows_seen] = self._assign_buf[: self._rows_seen]
            self._assign_buf = grown
        out = np.empty(n, dtype=np.int64)
        if n:
            kernel = self.kernel
            if kernel == "auto" and not self.strict:
                # kernel choice is purely a performance knob: both
                # kernels produce bit-identical state, so switching
                # between chunks cannot change any assignment
                kernel = self._auto_kernel()
            scans_before = self.full_scans
            if self.strict or kernel == "scalar":
                self.active_kernel = "scalar"
                self._add_scalar(
                    features, track_ids, suppressed, feature_valid,
                    feature_fill, out, use_shortcut=not self.strict,
                )
            else:
                self.active_kernel = "batch"
                self._add_batch(
                    features, track_ids, suppressed, feature_valid,
                    feature_fill, out,
                )
            self._recent_scans += self.full_scans - scans_before
            self._recent_rows += n
        self._assign_buf[self._rows_seen: self._rows_seen + n] = out
        self._rows_seen += n
        return out

    def _auto_kernel(self) -> str:
        """Pick the kernel from the observed break density.

        The batch kernel's speculation amortizes only when shortcut
        runs are long (breaks -- full scans -- are rare); on churny
        windows the row-at-a-time loop is faster.  Density is measured
        over the most recent ~16k rows so a stream that calms down (or
        heats up) switches kernels within a few chunks.
        """
        if self._recent_rows >= 16384:
            self._recent_scans //= 2
            self._recent_rows //= 2
        if not self._recent_rows:
            return "scalar"  # first chunk calibrates the density
        rate = self._recent_scans / self._recent_rows
        return "batch" if rate < self.AUTO_BATCH_BREAK_RATE else "scalar"

    @staticmethod
    def _fill_features(features, valid, fill, rows: np.ndarray) -> None:
        if fill is None:
            raise ValueError(
                "feature row(s) %s are marked invalid and no feature_fill "
                "callback was provided" % rows
            )
        features[rows] = fill(rows)
        valid[rows] = True

    # -- reference kernel ---------------------------------------------------
    def _add_scalar(self, features, track_ids, sup, valid, fill, out,
                    use_shortcut: bool) -> None:
        """Row-at-a-time loop: the semantic reference for the batch kernel
        (and the ``strict=True`` always-scan mode)."""
        base = self._rows_seen
        # plain-list row flags: ndarray scalar access costs ~5x a list
        # index, and this loop runs per observation
        track_list = np.asarray(track_ids, dtype=np.int64).tolist()
        sup_list = sup.tolist() if sup is not None else None
        valid_list = valid.tolist() if valid is not None else None
        for i in range(len(out)):
            track = track_list[i]
            if sup_list is not None and sup_list[i]:
                cid = self._row_suppressed(track)
                if cid is not None:
                    out[i] = cid
                    continue
            if valid_list is not None and not valid_list[i]:
                self._fill_features(features, valid, fill,
                                    np.asarray([i], dtype=np.int64))
                valid_list[i] = True
            cid, _, _ = self._row_dense(track, features[i], base + i,
                                        use_shortcut)
            out[i] = cid

    # -- batch kernel -------------------------------------------------------
    def _add_batch(self, features, track_ids, sup, valid, fill, out) -> None:
        """Speculative vectorized kernel; see the module docstring.

        Rows are grouped per *cluster* (all tracks currently cached on
        it, merged in stream order); each group's joins are verified in
        closed form against the exact sequential centroid evolution.
        An ordered event loop resolves break rows one at a time with
        every earlier row committed first, so state at each scalar step
        -- and therefore every assignment -- matches the reference loop
        bit for bit.
        """
        base = self._rows_seen
        t2 = self._t2
        n = len(out)
        track_ids = np.asarray(track_ids)
        track_cache = self._track_cache
        slot_of_id = self._slot_of_id

        # group the chunk's rows by track, preserving stream order
        order = np.argsort(track_ids, kind="stable")
        sorted_tracks = track_ids[order]
        seg_breaks = np.nonzero(sorted_tracks[1:] != sorted_tracks[:-1])[0] + 1
        bounds = [0] + seg_breaks.tolist() + [n]

        track_rows: Dict[int, np.ndarray] = {}
        track_ptr: Dict[int, int] = {}
        #: cluster id -> tracks cached on it (with rows in this chunk)
        members: Dict[int, set] = {}
        events: list = []    # (chunk_pos, seq, kind, key, gen)
        pending: list = []   # (chunk_pos, seq, cid, gen)
        groups: Dict[int, Optional[_ClusterRun]] = {}
        gen: Dict[int, int] = {}
        horizon_hint: Dict[int, int] = {}
        seq_counter = [0]
        ar_i64 = np.arange(_HORIZON_MAX, dtype=np.int64)

        def seq() -> int:
            seq_counter[0] += 1
            return seq_counter[0]

        for a, b in zip(bounds, bounds[1:]):
            track = int(sorted_tracks[a])
            track_rows[track] = order[a:b]
            track_ptr[track] = 0
            cid = track_cache.get(track)
            if cid is None:
                # unknown track: its first row must take the scalar path
                heapq.heappush(events, (int(order[a]), seq(), 1, track, 0))
            else:
                members.setdefault(cid, set()).add(track)

        def first_pending(cid: int) -> Optional[int]:
            best = None
            for track in members.get(cid, ()):
                rows = track_rows[track]
                p = track_ptr[track]
                if p < len(rows) and (best is None or rows[p] < best):
                    best = rows[p]
            return best

        def mark_stale(cid: int) -> None:
            """Invalidate a cluster's speculation; rebuild lazily at its
            next pending row (coalesces repeated invalidations)."""
            run = groups.get(cid)
            if run is not None and run.ptr:
                # remember how far speculation got before it was torn
                # down: the next build verifies ~2x that, instead of a
                # fixed window that is mostly thrown away again
                horizon_hint[cid] = min(max(16, 2 * run.ptr), _HORIZON_MAX)
            groups[cid] = None
            gen[cid] = gen.get(cid, 0) + 1
            pos = first_pending(cid)
            if pos is not None:
                heapq.heappush(events, (int(pos), seq(), 0, cid, gen[cid]))

        def verify_next(run: _ClusterRun) -> None:
            """Verify the run's next horizon window against current
            state; requires the run's earlier rows to be committed."""
            rows = run.rows
            lo = run.verified_end
            hi = min(lo + run.horizon, len(rows))
            run.fail_at = None
            if run.sup is not None:
                dense_local = np.nonzero(~run.sup[lo:hi])[0]
            else:
                dense_local = None
            if not run.live:
                # retired cluster: suppressed rows still follow it, but
                # the first dense row must scan
                if dense_local is None:
                    run.verified_end = lo
                    run.fail_at = lo
                elif len(dense_local):
                    run.verified_end = lo + int(dense_local[0])
                    run.fail_at = run.verified_end
                else:
                    run.verified_end = hi
                run.blk_dense = _EMPTY_I
                run.blk_cpre = None
                return
            if dense_local is None:
                dense_abs = np.arange(lo, hi, dtype=np.int64)
            else:
                dense_abs = lo + dense_local
            if not len(dense_abs):
                run.blk_dense = _EMPTY_I
                run.blk_cpre = None
                run.verified_end = hi
                run.horizon = min(run.horizon * 2, _HORIZON_MAX)
                return
            slot = slot_of_id[run.cid]
            vectors = features[rows[dense_abs]]
            k = len(dense_abs)
            cpre = np.empty((k + 1, vectors.shape[1]), dtype=np.float64)
            cpre[0] = self._sums[slot]
            cpre[1:] = vectors
            # in-place cumsum = the exact sequence of += the scalar loop
            # would apply to this cluster's sum
            np.cumsum(cpre, axis=0, out=cpre)
            denom = self._dense[slot] + ar_i64[:k]
            work = cpre[:-1] / denom[:, np.newaxis]   # prefix centroids
            work -= vectors
            np.square(work, out=work)
            ok = work.sum(axis=1) <= t2
            first_bad = int(np.argmin(ok))
            if ok[first_bad]:  # argmin found no False: all rows passed
                run.blk_dense = dense_abs
                run.blk_cpre = cpre
                run.verified_end = hi
                run.horizon = min(run.horizon * 2, _HORIZON_MAX)
            else:
                run.blk_dense = dense_abs[:first_bad]
                run.blk_cpre = cpre[: first_bad + 1]
                run.verified_end = int(dense_abs[first_bad])
                run.fail_at = run.verified_end

        def build(cid: int) -> Optional[_ClusterRun]:
            """(Re)build a cluster's run over its tracks' pending rows."""
            arrays = []
            for track in members.get(cid, ()):
                pend = track_rows[track][track_ptr[track]:]
                if len(pend):
                    arrays.append(pend)
            if not arrays:
                return None
            if len(arrays) == 1:
                rows = arrays[0]
            else:
                rows = np.sort(np.concatenate(arrays))
            run = _ClusterRun(cid, rows, sup[rows] if sup is not None else None,
                              cid in slot_of_id)
            run.horizon = horizon_hint.get(cid, _HORIZON_START)
            groups[cid] = run
            verify_next(run)
            return run

        def push_event(run: _ClusterRun) -> None:
            if run.fail_at is not None:
                pos = run.rows[run.fail_at]
            elif run.verified_end < len(run.rows):
                pos = run.rows[run.verified_end]
            else:
                return  # fully verified; committed by flushes / the drain
            heapq.heappush(events, (int(pos), seq(), 0, run.cid,
                                    gen.get(run.cid, 0)))

        def push_pending(run: _ClusterRun) -> None:
            if run.ptr < len(run.rows):
                heapq.heappush(pending, (int(run.rows[run.ptr]), seq(),
                                         run.cid, gen.get(run.cid, 0)))

        def commit(run: _ClusterRun, upto: int) -> None:
            """Apply the run's verified rows at chunk positions < upto."""
            lo, hi = run.ptr, run.verified_end
            if lo >= hi:
                return
            rows = run.rows
            if upto > rows[hi - 1]:
                stop = hi
            else:
                stop = lo + int(np.searchsorted(rows[lo:hi], upto))
                if stop <= lo:
                    return
            k = stop - lo
            cid = run.cid
            committed = rows[lo:stop]
            if run.live:
                blk = run.blk_dense
                nb = len(blk)
                cd0 = int(np.searchsorted(blk, lo)) if lo else 0
                if stop == hi or (nb and stop > blk[nb - 1]):
                    cd1 = nb
                else:
                    cd1 = int(np.searchsorted(blk, stop))
                kd = cd1 - cd0
                slot = slot_of_id[cid]
                if kd:
                    self._sums[slot] = run.blk_cpre[cd1]
                    d = self._dense[slot] + kd
                    self._dense[slot] = d
                    centroid = self._sums[slot] / d
                    self._centroids[slot] = centroid
                    self._cnorm2[slot] = float((centroid * centroid).sum())
                    self.shortcut_hits += kd
                self._counts[slot] += k
            self._sizes[cid] += k
            out[committed] = cid
            mem = members.get(cid)
            if mem is not None and len(mem) == 1:
                for track in mem:
                    track_ptr[track] += k
            else:
                # multi-track runs are rare and their commits small:
                # a dict-increment walk beats np.unique here
                for track in track_ids[committed].tolist():
                    track_ptr[track] += 1
            run.ptr = stop

        def flush(upto: int) -> None:
            """Commit every run's verified rows at positions < upto."""
            while pending and pending[0][0] < upto:
                pos, _, cid, g = heapq.heappop(pending)
                if gen.get(cid, 0) != g:
                    continue
                run = groups.get(cid)
                if (run is None or run.ptr >= len(run.rows)
                        or run.rows[run.ptr] != pos):
                    continue
                commit(run, upto)
                push_pending(run)

        def ensure_valid(pos: int) -> None:
            if valid is not None and not valid[pos]:
                self._fill_features(features, valid, fill,
                                    np.asarray([pos], dtype=np.int64))

        def resolve_dense(track: int, pos: int, use_shortcut: bool):
            """One scalar step; returns the set of clusters whose
            speculation it invalidated."""
            ensure_valid(pos)
            old_cid = track_cache.get(track)
            cid, created, evicted = self._row_dense(
                track, features[pos], base + pos, use_shortcut)
            out[pos] = cid
            track_ptr[track] += 1
            if cid != old_cid:
                if old_cid is not None:
                    mem = members.get(old_cid)
                    if mem is not None:
                        mem.discard(track)
                members.setdefault(cid, set()).add(track)
            stale = {cid}
            if old_cid is not None:
                stale.add(old_cid)
            if evicted is not None:
                stale.add(evicted)
            return stale

        # every cached cluster with rows in this chunk gets built (and
        # verified) lazily when its first event pops
        for cid in members:
            mark_stale(cid)

        # -- ordered event loop
        while events:
            pos, _, kind, key, g = heapq.heappop(events)
            if kind == 1:
                # first row of a track the clusterer has never seen
                track = key
                flush(pos)
                if sup is not None and sup[pos]:
                    cid = self._row_suppressed(track)
                    if cid is not None:  # pragma: no cover - unreachable
                        out[pos] = cid
                        track_ptr[track] += 1
                        continue
                for cid in resolve_dense(track, int(pos), False):
                    mark_stale(cid)
                continue
            if gen.get(key, 0) != g:
                continue
            run = groups.get(key)
            if run is None:
                run = build(key)
                if run is not None:
                    push_event(run)
                    push_pending(run)
                continue
            if run.fail_at is not None and run.rows[run.fail_at] == pos:
                flush(pos)
                commit(run, int(pos))
                # the breaking row is always dense: suppressed rows never
                # fail while their track has a cluster
                for cid in resolve_dense(int(track_ids[pos]), int(pos),
                                         False):
                    mark_stale(cid)
                continue
            if run.verified_end < len(run.rows) and \
                    run.rows[run.verified_end] == pos:
                # horizon reached cleanly: commit it, verify the next
                # window from the updated state
                commit(run, int(pos))
                verify_next(run)
                push_event(run)
                push_pending(run)

        # -- drain: everything left is verified
        flush(n)

    # -- durable state -------------------------------------------------------
    def state_dict(self) -> Dict:
        """The clusterer's complete resumable state, JSON-serializable.

        Everything :meth:`from_state_dict` needs to continue ingest
        exactly where this instance stands: live-slot arrays, the full
        assignment history, per-track shortcuts, and the counters that
        drive ``kernel="auto"``.  Centroids and their cached norms are
        *not* stored -- they are recomputed from (sum, dense count)
        with the identical floating-point expressions the join path
        uses, so the restored values are bit-identical.  Python's JSON
        round-trips float64 exactly (shortest-repr), which is what
        makes a journal replay on top of a restored clusterer
        reproduce uninterrupted ingest bit for bit.
        """
        n = self._n_live
        return {
            "threshold": float(self.threshold),
            "dim": int(self.dim),
            "max_live": int(self.max_live),
            "strict": bool(self.strict),
            "kernel": self.kernel,
            "n_live": int(n),
            "sums": self._sums[:n].tolist(),
            "dense": self._dense[:n].tolist(),
            "counts": self._counts[:n].tolist(),
            "live_ids": self._live_ids[:n].tolist(),
            "next_id": int(self._next_id),
            "seed_rows": list(self._seed_rows),
            "sizes": list(self._sizes),
            "assignments": self._assign_buf[: self._rows_seen].tolist(),
            "rows_seen": int(self._rows_seen),
            "track_cache": [[int(t), int(c)] for t, c in self._track_cache.items()],
            "full_scans": int(self.full_scans),
            "shortcut_hits": int(self.shortcut_hits),
            "recent_scans": int(self._recent_scans),
            "recent_rows": int(self._recent_rows),
            "active_kernel": self.active_kernel,
        }

    @classmethod
    def from_state_dict(cls, state: Dict) -> "IncrementalClusterer":
        """Rebuild a clusterer from :meth:`state_dict` output, bit-exact."""
        self = cls(
            threshold=state["threshold"],
            dim=state["dim"],
            max_live_clusters=state["max_live"],
            strict=state["strict"],
            kernel=state["kernel"],
        )
        n = int(state["n_live"])
        dim = self.dim
        self._sums[:n] = np.asarray(state["sums"], dtype=np.float64).reshape(n, dim)
        self._dense[:n] = np.asarray(state["dense"], dtype=np.int64)
        self._counts[:n] = np.asarray(state["counts"], dtype=np.int64)
        self._live_ids[:n] = np.asarray(state["live_ids"], dtype=np.int64)
        self._n_live = n
        # recompute centroid / |centroid|^2 per slot with the exact
        # expressions _join_dense uses -- same operands, same order,
        # same results, so no rounding drift versus the live instance
        for slot in range(n):
            centroid = self._sums[slot] / self._dense[slot]
            self._centroids[slot] = centroid
            self._cnorm2[slot] = float((centroid * centroid).sum())
        self._next_id = int(state["next_id"])
        self._seed_rows = [int(x) for x in state["seed_rows"]]
        self._sizes = [int(x) for x in state["sizes"]]
        rows = int(state["rows_seen"])
        capacity = 1024
        while capacity < rows:
            capacity *= 2
        self._assign_buf = np.zeros(capacity, dtype=np.int64)
        self._assign_buf[:rows] = np.asarray(state["assignments"], dtype=np.int64)
        self._rows_seen = rows
        self._track_cache = {int(t): int(c) for t, c in state["track_cache"]}
        self._slot_of_id = {int(self._live_ids[i]): i for i in range(n)}
        self.full_scans = int(state["full_scans"])
        self.shortcut_hits = int(state["shortcut_hits"])
        self._recent_scans = int(state["recent_scans"])
        self._recent_rows = int(state["recent_rows"])
        self.active_kernel = state["active_kernel"]
        return self

    def snapshot(self) -> ClusterSummary:
        """The clustering state so far, *without* closing the clusterer.

        Live ingest calls this after every chunk: the returned summary
        covers every row fed through :meth:`add` up to now, while the
        clusterer keeps its centroids, live-cluster slots, and per-track
        shortcuts so the next chunk continues exactly where this one
        stopped.
        """
        return ClusterSummary(
            # a view of the buffer prefix: rows before _rows_seen are
            # never rewritten, and buffer growth reallocates rather than
            # mutating, so earlier snapshots stay frozen
            assignments=self._assign_buf[: self._rows_seen],
            seed_rows=np.asarray(self._seed_rows, dtype=np.int64),
            sizes=np.asarray(self._sizes, dtype=np.int64),
        )

    def finalize(self) -> ClusterSummary:
        """Freeze and return the clustering result (one-shot ingest)."""
        return self.snapshot()


def cluster_table(
    table: ObservationTable,
    model: ClassifierModel,
    threshold: float,
    max_live_clusters: int = 512,
    suppressed: Optional[np.ndarray] = None,
    chunk_rows: int = 65536,
    strict: bool = False,
    kernel: str = "auto",
) -> ClusterSummary:
    """Cluster all observations of ``table`` with ``model``'s features.

    Features are generated in chunks to bound memory.  Suppressed rows
    (pixel differencing) skip feature extraction entirely and join
    their track's current cluster; only a suppressed row whose track
    first appears at that row (a table truncated mid-track) still needs
    a feature vector, which is extracted up front.
    """
    clusterer = IncrementalClusterer(
        threshold=threshold,
        dim=model.feature_dim,
        max_live_clusters=max_live_clusters,
        strict=strict,
        kernel=kernel,
    )
    extractor = model.feature_extractor()
    n = len(table)
    for start in range(0, max(n, 1), chunk_rows):
        stop = min(start + chunk_rows, n)
        if stop <= start:
            break
        chunk = table.slice(start, stop)
        if suppressed is None:
            feats = extractor.extract(chunk).astype(np.float64)
            clusterer.add(feats, chunk.track_id)
            continue
        sup = suppressed[start:stop]
        extract_and_cluster_chunk(clusterer, extractor, chunk, sup)
    return clusterer.finalize()


def extract_and_cluster_chunk(
    clusterer: IncrementalClusterer,
    extractor,
    chunk: ObservationTable,
    suppressed: np.ndarray,
) -> np.ndarray:
    """Extract features only for the rows the clusterer will read, then
    cluster the chunk.  Shared by one-shot and live (streaming) ingest:
    skipping suppressed rows cuts feature synthesis -- the dominant
    ingest CPU cost -- by the suppression ratio."""
    need = clusterer.feature_rows_needed(chunk.track_id, suppressed)
    feats = np.empty((len(chunk), clusterer.dim), dtype=np.float64)
    if need.all():
        feats[:] = extractor.extract(chunk)
        feature_valid = None
    else:
        feats[need] = extractor.extract(chunk.select(need))
        feature_valid = need.copy()

    def fill(rows: np.ndarray) -> np.ndarray:
        mask = np.zeros(len(chunk), dtype=bool)
        mask[rows] = True
        return extractor.extract(chunk.select(mask)).astype(np.float64)

    return clusterer.add(
        feats,
        chunk.track_id,
        suppressed=suppressed,
        feature_valid=feature_valid,
        feature_fill=fill,
    )
