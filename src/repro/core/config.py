"""Configuration types for Focus."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.cnn.model import ClassifierModel


class Policy(enum.Enum):
    """The ingest-cost vs query-latency trade-off policies (Section 4.4).

    * ``OPT_INGEST`` minimizes ingest cost -- for streams that are
      rarely queried (most surveillance video).
    * ``BALANCE`` (default) minimizes the sum of ingest and query GPU
      cost.
    * ``OPT_QUERY`` minimizes query latency -- for streams needing fast
      turnaround.
    """

    OPT_INGEST = "opt-ingest"
    BALANCE = "balance"
    OPT_QUERY = "opt-query"


@dataclass(frozen=True)
class AccuracyTarget:
    """User-specified precision/recall targets relative to the GT-CNN.

    The paper's default is 95%/95% (Section 6.1); it also evaluates
    97/98/99% (Section 6.5).
    """

    precision: float = 0.95
    recall: float = 0.95

    def __post_init__(self):
        for name, value in (("precision", self.precision), ("recall", self.recall)):
            if not 0.0 < value <= 1.0:
                raise ValueError("%s target must be in (0, 1], got %r" % (name, value))

    def met_by(self, precision: float, recall: float) -> bool:
        return precision >= self.precision and recall >= self.recall


@dataclass(frozen=True)
class FocusConfig:
    """One concrete operating point: the tuner's output.

    Attributes:
        model: the ingest-time cheap CNN (generic or specialized).
        k: top-K index width.
        cluster_threshold: feature-distance threshold T for the
            single-pass clusterer.
        pixel_diff: whether ingest applies pixel differencing between
            adjacent frames (Section 4.2).
    """

    model: ClassifierModel
    k: int
    cluster_threshold: float
    pixel_diff: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.cluster_threshold < 0:
            raise ValueError("cluster_threshold must be non-negative")

    def describe(self) -> str:
        return "%s, K=%d, T=%.2f%s" % (
            self.model.name,
            self.k,
            self.cluster_threshold,
            "" if self.pixel_diff else ", no pixel-diff",
        )


@dataclass(frozen=True)
class TunerSettings:
    """Search-space and sampling settings for the parameter tuner.

    Defaults keep the sweep tractable while covering the paper's
    parameter ranges: generic K up to 200 (Figure 5), specialized
    K = 2-8 (Section 4.3), Ls in {5, 10, 20, 50}, and a T grid spanning
    per-track to cross-track clustering.
    """

    k_grid_generic: Tuple[int, ...] = (10, 20, 60, 100, 200)
    k_grid_specialized: Tuple[int, ...] = (1, 2, 4, 6, 8)
    t_grid: Tuple[float, ...] = (0.04, 0.06, 0.09, 0.12, 0.16)
    ls_values: Tuple[int, ...] = (5, 10, 20, 50)
    specialization_divisors: Tuple[float, ...] = (6.0, 10.0)
    sample_fraction: float = 0.4
    max_sample_seconds: float = 180.0
    include_generic: bool = True
    max_candidates_per_model: int = 2
    dominant_coverage: float = 0.95
    #: Safety margin on sample-estimated accuracy: the tuner only
    #: accepts configurations whose *per-class minimum* precision and
    #: recall clear the target by this much on the sample, absorbing
    #: sampling error so the full-video accuracy still meets the target.
    accuracy_margin: float = 0.04
