"""The top-K ingest index (Figure 4, IT3-IT4).

Layout per the paper (Section 3):

    object class -> <cluster ID>
    cluster ID   -> [centroid object, <objects> in cluster,
                     <frame IDs> of objects]

Each cluster is indexed under the top-K classes of its centroid (seed)
observation, *with rank positions*, so a query can dynamically restrict
itself to a smaller Kx <= K at query time (Section 5).  The index can be
persisted to the embedded document store, standing in for the paper's
MongoDB deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.core.clustering import ClusterSummary
from repro.storage.docstore import DocumentStore
from repro.video.synthesis import ObservationTable


@dataclass(frozen=True)
class ClusterEntry:
    """One cluster's record in the index."""

    cluster_id: int
    centroid_row: int
    centroid_class: int       # true class of the centroid (what GT-CNN returns)
    top_k: Tuple[int, ...]    # ranked class tokens of the centroid
    size: int
    first_time_s: float
    last_time_s: float


class TopKIndex:
    """Class-token -> clusters mapping with per-entry rank positions."""

    def __init__(self, stream: str, model_name: str, k: int):
        self.stream = stream
        self.model_name = model_name
        self.k = k
        self._clusters: Dict[int, ClusterEntry] = {}
        self._by_class: Dict[int, List[Tuple[int, int]]] = {}  # token -> [(cluster, pos)]
        self._members: Dict[int, np.ndarray] = {}
        self._frames: Dict[int, np.ndarray] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: ObservationTable,
        model: ClassifierModel,
        k: int,
        clusters: ClusterSummary,
    ) -> "TopKIndex":
        """Materialize the index from a clustering pass.

        For each cluster, the ingest CNN's ranked top-K classes of the
        centroid observation are written out, and the cluster is linked
        from each of those class tokens.
        """
        index = cls(stream=table.stream, model_name=model.name, k=k)
        members = clusters.members_by_cluster()
        seeds = clusters.seed_rows
        obs_seeds = table.observation_seeds()
        for cid in range(clusters.num_clusters):
            row = int(seeds[cid])
            member_rows = members[cid]
            top_k = model.topk_list(
                int(obs_seeds[row]),
                int(table.class_id[row]),
                float(table.difficulty[row]),
                k,
            )
            times = table.time_s[member_rows]
            entry = ClusterEntry(
                cluster_id=cid,
                centroid_row=row,
                centroid_class=int(table.class_id[row]),
                top_k=tuple(top_k),
                size=int(len(member_rows)),
                first_time_s=float(times.min()) if len(times) else 0.0,
                last_time_s=float(times.max()) if len(times) else 0.0,
            )
            index.add_cluster(entry, member_rows, table.frame_idx[member_rows])
        return index

    def add_cluster(
        self, entry: ClusterEntry, member_rows: np.ndarray, frame_ids: np.ndarray
    ) -> None:
        if entry.cluster_id in self._clusters:
            raise ValueError("cluster %d already indexed" % entry.cluster_id)
        self._clusters[entry.cluster_id] = entry
        self._members[entry.cluster_id] = np.asarray(member_rows, dtype=np.int64)
        self._frames[entry.cluster_id] = np.asarray(frame_ids, dtype=np.int64)
        for pos, token in enumerate(entry.top_k, start=1):
            self._by_class.setdefault(int(token), []).append((entry.cluster_id, pos))

    # -- reads ------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    @property
    def num_entries(self) -> int:
        return sum(len(v) for v in self._by_class.values())

    def classes(self) -> List[int]:
        return sorted(self._by_class)

    def cluster(self, cluster_id: int) -> ClusterEntry:
        return self._clusters[cluster_id]

    def members(self, cluster_id: int) -> np.ndarray:
        return self._members[cluster_id]

    def frames(self, cluster_id: int) -> np.ndarray:
        return self._frames[cluster_id]

    def lookup(
        self,
        class_token: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[int]:
        """Cluster ids whose centroid top-K contains ``class_token``.

        Args:
            class_token: class id (or the OTHER sentinel for
                specialized models).
            kx: dynamic query-time K; only entries whose token sits at
                rank <= kx are returned (Section 5).  Defaults to the
                index's K.
            time_range: optionally restrict to clusters overlapping
                [start, end) seconds.
        """
        if kx is not None:
            if kx < 1:
                raise ValueError("kx must be >= 1")
            if kx > self.k:
                raise ValueError("kx=%d exceeds the index width K=%d" % (kx, self.k))
        limit = self.k if kx is None else kx
        hits = self._by_class.get(int(class_token), [])
        out = []
        for cluster_id, pos in hits:
            if pos > limit:
                continue
            if time_range is not None:
                entry = self._clusters[cluster_id]
                start, end = time_range
                if entry.last_time_s < start or entry.first_time_s >= end:
                    continue
            out.append(cluster_id)
        return out

    def entries(self) -> Iterable[ClusterEntry]:
        return self._clusters.values()

    # -- persistence --------------------------------------------------------
    def to_docstore(self, store: DocumentStore) -> None:
        """Persist the index into a document store (MongoDB stand-in).

        Re-saving a stream replaces its previous snapshot (upsert
        semantics) rather than appending duplicate documents.
        """
        store.drop("clusters:%s" % self.stream)
        clusters = store.collection("clusters:%s" % self.stream)
        meta = store.collection("index-meta")
        meta.delete_many({"stream": self.stream})
        meta.insert_one(
            {"stream": self.stream, "model": self.model_name, "k": self.k}
        )
        for entry in self._clusters.values():
            clusters.insert_one(
                {
                    "cluster_id": entry.cluster_id,
                    "centroid_row": entry.centroid_row,
                    "centroid_class": entry.centroid_class,
                    "top_k": list(entry.top_k),
                    "size": entry.size,
                    "first_time_s": entry.first_time_s,
                    "last_time_s": entry.last_time_s,
                    "members": [int(r) for r in self._members[entry.cluster_id]],
                    "frames": [int(f) for f in self._frames[entry.cluster_id]],
                }
            )
        clusters.create_index("top_k")  # multikey: one entry per token

    @classmethod
    def from_docstore(cls, store: DocumentStore, stream: str) -> "TopKIndex":
        return _from_docstore(cls, store, stream)


class LazyTopKIndex:
    """Top-K index evaluated lazily per query token.

    Materializing explicit top-K lists costs O(clusters * K) at ingest;
    with K up to 200 and ablation configurations where every observation
    is its own cluster, that dominates runtime while queries only ever
    touch a handful of tokens.  This variant stores the centroid
    observations and answers ``lookup`` by running the ingest model's
    (deterministic) top-K membership over all centroids at once --
    bitwise-identical across repeated calls, cached per (token, kx).

    Exposes the same read interface as :class:`TopKIndex`.
    """

    def __init__(self, table, model, k: int, clusters: ClusterSummary):
        self.stream = table.stream
        self.model_name = model.name
        self.k = k
        self._model = model
        self._clusters = clusters
        seed_mask = np.zeros(len(table), dtype=bool)
        seed_mask[clusters.seed_rows] = True
        self._centroid_table = table.select(seed_mask)
        # select() keeps row order, so the i-th centroid-table row holds
        # the i-th smallest seed row; argsort maps each centroid-table
        # position back to its cluster id
        self._centroid_cluster_ids = np.argsort(clusters.seed_rows, kind="stable")
        self._members = clusters.members_by_cluster()
        self._member_frames = [table.frame_idx[m] for m in self._members]
        self._centroid_class = table.class_id[clusters.seed_rows]
        self._first_time = np.array(
            [table.time_s[m].min() if len(m) else 0.0 for m in self._members]
        )
        self._last_time = np.array(
            [table.time_s[m].max() if len(m) else 0.0 for m in self._members]
        )
        self._lookup_cache: Dict[Tuple[int, int], np.ndarray] = {}

    @property
    def num_clusters(self) -> int:
        return self._clusters.num_clusters

    def cluster(self, cluster_id: int) -> ClusterEntry:
        members = self._members[cluster_id]
        return ClusterEntry(
            cluster_id=cluster_id,
            centroid_row=int(self._clusters.seed_rows[cluster_id]),
            centroid_class=int(self._centroid_class[cluster_id]),
            top_k=(),
            size=int(len(members)),
            first_time_s=float(self._first_time[cluster_id]),
            last_time_s=float(self._last_time[cluster_id]),
        )

    def members(self, cluster_id: int) -> np.ndarray:
        return self._members[cluster_id]

    def frames(self, cluster_id: int) -> np.ndarray:
        return self._member_frames[cluster_id]

    def lookup(
        self,
        class_token: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[int]:
        """Cluster ids whose centroid top-K contains ``class_token``."""
        if kx is not None:
            if kx < 1:
                raise ValueError("kx must be >= 1")
            if kx > self.k:
                raise ValueError("kx=%d exceeds the index width K=%d" % (kx, self.k))
        limit = self.k if kx is None else kx
        cache_key = (int(class_token), limit)
        hits = self._lookup_cache.get(cache_key)
        if hits is None:
            member = self._model.topk_membership(self._centroid_table, class_token, limit)
            hits = self._centroid_cluster_ids[member]
            self._lookup_cache[cache_key] = hits
        out = []
        for cid in hits:
            if time_range is not None:
                start, end = time_range
                if self._last_time[cid] < start or self._first_time[cid] >= end:
                    continue
            out.append(int(cid))
        return out

    def materialize(self) -> "TopKIndex":
        """Write out an explicit :class:`TopKIndex` (e.g. for persistence)."""
        explicit = TopKIndex(stream=self.stream, model_name=self.model_name, k=self.k)
        obs_seeds = self._centroid_table.observation_seeds()
        # centroid table rows are in seed-row order; walk them together
        # with their cluster ids
        for pos, cid in enumerate(self._centroid_cluster_ids):
            cid = int(cid)
            top_k = self._model.topk_list(
                int(obs_seeds[pos]),
                int(self._centroid_table.class_id[pos]),
                float(self._centroid_table.difficulty[pos]),
                self.k,
            )
            entry = ClusterEntry(
                cluster_id=cid,
                centroid_row=int(self._clusters.seed_rows[cid]),
                centroid_class=int(self._centroid_class[cid]),
                top_k=tuple(top_k),
                size=int(len(self._members[cid])),
                first_time_s=float(self._first_time[cid]),
                last_time_s=float(self._last_time[cid]),
            )
            explicit.add_cluster(entry, self._members[cid], self._member_frames[cid])
        return explicit

    def to_docstore(self, store: DocumentStore) -> None:
        """Persist by materializing the explicit index first."""
        self.materialize().to_docstore(store)


def stored_streams(store: DocumentStore) -> List[str]:
    """Streams with a persisted index in ``store``."""
    return sorted({doc["stream"] for doc in store.collection("index-meta").find()})


def _from_docstore(cls, store: DocumentStore, stream: str) -> "TopKIndex":
        meta = store.collection("index-meta").find_one({"stream": stream})
        if meta is None:
            raise KeyError("no index for stream %r in store" % stream)
        index = cls(stream=stream, model_name=meta["model"], k=meta["k"])
        for doc in store.collection("clusters:%s" % stream).find():
            entry = ClusterEntry(
                cluster_id=doc["cluster_id"],
                centroid_row=doc["centroid_row"],
                centroid_class=doc["centroid_class"],
                top_k=tuple(doc["top_k"]),
                size=doc["size"],
                first_time_s=doc["first_time_s"],
                last_time_s=doc["last_time_s"],
            )
            index.add_cluster(
                entry,
                np.asarray(doc["members"], dtype=np.int64),
                np.asarray(doc["frames"], dtype=np.int64),
            )
        return index
