"""The top-K ingest index (Figure 4, IT3-IT4).

Layout per the paper (Section 3):

    object class -> <cluster ID>
    cluster ID   -> [centroid object, <objects> in cluster,
                     <frame IDs> of objects]

Each cluster is indexed under the top-K classes of its centroid (seed)
observation, *with rank positions*, so a query can dynamically restrict
itself to a smaller Kx <= K at query time (Section 5).  The index can be
persisted to the embedded document store, standing in for the paper's
MongoDB deployment.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple, runtime_checkable

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.core.clustering import ClusterSummary, grouped_min_max
from repro.storage.docstore import DocumentStore
from repro.video.synthesis import ObservationTable


@dataclass(frozen=True)
class ClusterEntry:
    """One cluster's record in the index."""

    cluster_id: int
    centroid_row: int
    centroid_class: int       # true class of the centroid (what GT-CNN returns)
    top_k: Tuple[int, ...]    # ranked class tokens of the centroid
    size: int
    first_time_s: float
    last_time_s: float


@runtime_checkable
class IndexReader(Protocol):
    """The read interface every top-K index variant serves.

    Query-side code (``QueryEngine``, the serve planner/scheduler) only
    needs these members; both :class:`TopKIndex` and
    :class:`LazyTopKIndex` satisfy the protocol, as does any future
    variant, so ``IngestResult.index`` and friends are typed against
    this instead of a bare ``object``.
    """

    stream: str
    model_name: str
    k: int

    @property
    def num_clusters(self) -> int: ...

    def cluster(self, cluster_id: int) -> ClusterEntry: ...

    def members(self, cluster_id: int) -> np.ndarray: ...

    def frames(self, cluster_id: int) -> np.ndarray: ...

    def lookup(
        self,
        class_token: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[int]: ...

    def to_docstore(self, store: DocumentStore, incremental: bool = False) -> None: ...


def _cluster_doc(
    entry: ClusterEntry, member_rows: np.ndarray, frame_ids: np.ndarray
) -> Dict:
    """The document one cluster persists as (shared by full rewrites and
    incremental checkpoint deltas)."""
    return {
        "cluster_id": entry.cluster_id,
        "centroid_row": entry.centroid_row,
        "centroid_class": entry.centroid_class,
        "top_k": list(entry.top_k),
        "size": entry.size,
        "first_time_s": entry.first_time_s,
        "last_time_s": entry.last_time_s,
        # ndarray.tolist() converts to Python ints in C, instead of a
        # per-element Python round-trip -- checkpoints serialize every
        # member row of every dirty cluster
        "members": np.asarray(member_rows).tolist(),
        "frames": np.asarray(frame_ids).tolist(),
    }


def _entry_from_doc(doc: Dict) -> ClusterEntry:
    return ClusterEntry(
        cluster_id=doc["cluster_id"],
        centroid_row=doc["centroid_row"],
        centroid_class=doc["centroid_class"],
        top_k=tuple(doc["top_k"]),
        size=doc["size"],
        first_time_s=doc["first_time_s"],
        last_time_s=doc["last_time_s"],
    )


def _upsert_cluster_delta(
    store: DocumentStore,
    stream: str,
    model_name: str,
    k: int,
    epoch: str,
    num_clusters: int,
    dirty: Set[int],
    doc_of,
    full_writer,
) -> None:
    """Write only the dirty clusters of a stream's index (checkpoint).

    Shared by both index variants: ensures the meta document and the
    cluster-id/top-K indexes exist, then upserts ``doc_of(cid)`` for
    every dirty cluster.  Unchanged cluster documents are untouched.

    A delta is only sound on top of this index's own earlier
    checkpoints.  The meta document records the index's ``epoch`` (a
    per-lineage token, carried across save/load), so a snapshot written
    by any other session -- even one with the same model/K and a
    compatible shape but a different clustering -- is detected and
    replaced wholesale via ``full_writer``.  The same fallback covers a
    store that is missing clusters the delta would not write (e.g. a
    fresh store after the dirty cursor was already cleared by a
    checkpoint elsewhere), which would otherwise end up partial.
    """
    meta_doc = store.collection("index-meta").find_one({"stream": stream})
    clusters = store.collection("clusters:%s" % stream)
    stale = (
        (meta_doc is None and len(clusters) > 0)
        or (
            meta_doc is not None
            and (
                meta_doc["model"] != model_name
                or meta_doc["k"] != k
                or meta_doc.get("epoch") != epoch
            )
        )
        or len(clusters) > num_clusters
    )
    if not stale:
        # the delta writes S_store ∪ dirty; that covers all clusters
        # only if every non-dirty id is already stored
        if not clusters.has_index("cluster_id"):
            clusters.create_index("cluster_id")
        stored_dirty = sum(
            1 for cid in dirty if clusters.find_one({"cluster_id": cid})
        )
        stale = len(clusters) - stored_dirty + len(dirty) < num_clusters
    if stale:
        full_writer()
        return
    if meta_doc is None:
        store.collection("index-meta").insert_one(
            {"stream": stream, "model": model_name, "k": k, "epoch": epoch}
        )
    if not clusters.has_index("top_k"):
        clusters.create_index("top_k")
    for cid in sorted(dirty):
        doc = doc_of(cid)
        existing = clusters.find_one({"cluster_id": cid})
        if existing is None:
            clusters.insert_one(doc)
        else:
            clusters.update_one(existing["_id"], doc)
    dirty.clear()


class TopKIndex:
    """Class-token -> clusters mapping with per-entry rank positions."""

    def __init__(self, stream: str, model_name: str, k: int):
        self.stream = stream
        self.model_name = model_name
        self.k = k
        self._clusters: Dict[int, ClusterEntry] = {}
        self._by_class: Dict[int, List[Tuple[int, int]]] = {}  # token -> [(cluster, pos)]
        self._members: Dict[int, np.ndarray] = {}
        self._frames: Dict[int, np.ndarray] = {}
        #: clusters added or extended since the last docstore checkpoint
        self._dirty: Set[int] = set()
        #: lineage token persisted with the meta doc; incremental
        #: checkpoints refuse to merge onto another lineage's snapshot
        self._epoch = uuid.uuid4().hex

    # -- construction -------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: ObservationTable,
        model: ClassifierModel,
        k: int,
        clusters: ClusterSummary,
    ) -> "TopKIndex":
        """Materialize the index from a clustering pass.

        For each cluster, the ingest CNN's ranked top-K classes of the
        centroid observation are written out, and the cluster is linked
        from each of those class tokens.
        """
        index = cls(stream=table.stream, model_name=model.name, k=k)
        members = clusters.members_by_cluster()
        seeds = clusters.seed_rows
        obs_seeds = table.observation_seeds()
        # one batched rank/slot draw for every centroid: the per-cluster
        # scalar path used to dominate materialized-index construction
        top_ks = model.topk_lists(
            obs_seeds[seeds], table.class_id[seeds], table.difficulty[seeds], k
        )
        first, last = grouped_min_max(
            clusters.assignments, clusters.num_clusters, table.time_s
        )
        for cid in range(clusters.num_clusters):
            row = int(seeds[cid])
            member_rows = members[cid]
            entry = ClusterEntry(
                cluster_id=cid,
                centroid_row=row,
                centroid_class=int(table.class_id[row]),
                top_k=tuple(top_ks[cid]),
                size=int(len(member_rows)),
                first_time_s=float(first[cid]),
                last_time_s=float(last[cid]),
            )
            index.add_cluster(entry, member_rows, table.frame_idx[member_rows])
        return index

    def add_cluster(
        self, entry: ClusterEntry, member_rows: np.ndarray, frame_ids: np.ndarray
    ) -> None:
        if entry.cluster_id in self._clusters:
            raise ValueError(
                "cluster %d already indexed; use extend_cluster to append "
                "members to a live cluster" % entry.cluster_id
            )
        self._clusters[entry.cluster_id] = entry
        self._members[entry.cluster_id] = np.asarray(member_rows, dtype=np.int64)
        self._frames[entry.cluster_id] = np.asarray(frame_ids, dtype=np.int64)
        for pos, token in enumerate(entry.top_k, start=1):
            self._by_class.setdefault(int(token), []).append((entry.cluster_id, pos))
        self._dirty.add(entry.cluster_id)

    def extend_cluster(
        self,
        cluster_id: int,
        member_rows: np.ndarray,
        frame_ids: np.ndarray,
        time_s: Optional[np.ndarray] = None,
    ) -> ClusterEntry:
        """Append members to an already-indexed cluster (live ingest).

        The centroid -- and therefore the cluster's top-K entry tokens
        and any cached GT verdict for it -- is unchanged by growth; only
        the member/frame lists and the size/time summary move.  Returns
        the updated entry.
        """
        if cluster_id not in self._clusters:
            raise KeyError("cluster %d is not indexed" % cluster_id)
        member_rows = np.asarray(member_rows, dtype=np.int64)
        frame_ids = np.asarray(frame_ids, dtype=np.int64)
        if len(member_rows) != len(frame_ids):
            raise ValueError("member_rows and frame_ids must align")
        if not len(member_rows):
            return self._clusters[cluster_id]
        self._members[cluster_id] = np.concatenate(
            [self._members[cluster_id], member_rows]
        )
        self._frames[cluster_id] = np.concatenate(
            [self._frames[cluster_id], frame_ids]
        )
        entry = self._clusters[cluster_id]
        first, last = entry.first_time_s, entry.last_time_s
        if time_s is not None and len(time_s):
            first = min(first, float(np.min(time_s)))
            last = max(last, float(np.max(time_s)))
        entry = replace(
            entry,
            size=entry.size + len(member_rows),
            first_time_s=first,
            last_time_s=last,
        )
        self._clusters[cluster_id] = entry
        self._dirty.add(cluster_id)
        return entry

    # -- reads ------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    @property
    def num_entries(self) -> int:
        return sum(len(v) for v in self._by_class.values())

    def classes(self) -> List[int]:
        return sorted(self._by_class)

    def cluster(self, cluster_id: int) -> ClusterEntry:
        return self._clusters[cluster_id]

    def members(self, cluster_id: int) -> np.ndarray:
        return self._members[cluster_id]

    def frames(self, cluster_id: int) -> np.ndarray:
        return self._frames[cluster_id]

    def lookup(
        self,
        class_token: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[int]:
        """Cluster ids whose centroid top-K contains ``class_token``.

        Args:
            class_token: class id (or the OTHER sentinel for
                specialized models).
            kx: dynamic query-time K; only entries whose token sits at
                rank <= kx are returned (Section 5).  Defaults to the
                index's K.
            time_range: optionally restrict to clusters overlapping
                [start, end) seconds.
        """
        if kx is not None:
            if kx < 1:
                raise ValueError("kx must be >= 1")
            if kx > self.k:
                raise ValueError("kx=%d exceeds the index width K=%d" % (kx, self.k))
        limit = self.k if kx is None else kx
        hits = self._by_class.get(int(class_token), [])
        out = []
        for cluster_id, pos in hits:
            if pos > limit:
                continue
            if time_range is not None:
                entry = self._clusters[cluster_id]
                start, end = time_range
                if entry.last_time_s < start or entry.first_time_s >= end:
                    continue
            out.append(cluster_id)
        return out

    def entries(self) -> Iterable[ClusterEntry]:
        return self._clusters.values()

    # -- persistence --------------------------------------------------------
    @property
    def dirty_clusters(self) -> Set[int]:
        """Cluster ids mutated since the last docstore write (read-only)."""
        return set(self._dirty)

    def adopt_lineage(self, epoch: str, clean: bool = True) -> None:
        """Adopt a persisted snapshot's lineage token (crash recovery).

        A recovered index rebuilt over a committed checkpoint must
        checkpoint *onto* that snapshot rather than replace it
        wholesale; adopting the stored epoch makes later incremental
        deltas merge cleanly.  ``clean=True`` additionally marks the
        current state as already persisted (it *is* the committed
        snapshot) so only post-recovery mutations are dirty.
        """
        self._epoch = epoch
        if clean:
            self._dirty.clear()

    def mark_dirty(self, cluster_ids: Iterable[int]) -> None:
        """Re-flag clusters as unpersisted.

        Incremental writes clear the dirty set as they stage documents;
        a durable checkpoint whose atomic commit then *fails* must put
        the flags back, or the next checkpoint would skip those
        clusters and commit stale documents.
        """
        self._dirty.update(int(c) for c in cluster_ids)

    def to_docstore(self, store: DocumentStore, incremental: bool = False) -> None:
        """Persist the index into a document store (MongoDB stand-in).

        ``incremental=False`` replaces the stream's previous snapshot
        wholesale (upsert semantics); ``incremental=True`` is the live
        checkpoint path: only clusters added or extended since the last
        write are upserted, so unchanged cluster documents are never
        rewritten and a long-lived stream checkpoints in O(delta).
        """
        if incremental:
            self._checkpoint_docstore(store)
            return
        store.drop("clusters:%s" % self.stream)
        clusters = store.collection("clusters:%s" % self.stream)
        self._write_meta(store)
        for entry in self._clusters.values():
            clusters.insert_one(
                _cluster_doc(entry, self._members[entry.cluster_id],
                             self._frames[entry.cluster_id])
            )
        clusters.create_index("top_k")  # multikey: one entry per token
        clusters.create_index("cluster_id")
        self._dirty.clear()

    def _write_meta(self, store: DocumentStore) -> None:
        meta = store.collection("index-meta")
        meta.delete_many({"stream": self.stream})
        meta.insert_one(
            {
                "stream": self.stream,
                "model": self.model_name,
                "k": self.k,
                "epoch": self._epoch,
            }
        )

    def _checkpoint_docstore(self, store: DocumentStore) -> None:
        """Append the cluster delta since the last checkpoint."""
        _upsert_cluster_delta(
            store,
            self.stream,
            self.model_name,
            self.k,
            self._epoch,
            self.num_clusters,
            self._dirty,
            lambda cid: _cluster_doc(
                self._clusters[cid], self._members[cid], self._frames[cid]
            ),
            lambda: self.to_docstore(store),
        )

    @classmethod
    def from_docstore(cls, store: DocumentStore, stream: str) -> "TopKIndex":
        """Load a stream's persisted index -- whether it was written by a
        full rewrite or grown through incremental checkpoints; documents
        of both paths share one schema (:func:`_cluster_doc`)."""
        meta = store.collection("index-meta").find_one({"stream": stream})
        if meta is None:
            raise KeyError("no index for stream %r in store" % stream)
        index = cls(stream=stream, model_name=meta["model"], k=meta["k"])
        if meta.get("epoch"):
            # adopt the stored lineage so this handle's later incremental
            # checkpoints merge cleanly onto the snapshot it came from
            index._epoch = meta["epoch"]
        for doc in sorted(
            store.collection("clusters:%s" % stream).find(),
            key=lambda d: d["cluster_id"],
        ):
            index.add_cluster(
                _entry_from_doc(doc),
                np.asarray(doc["members"], dtype=np.int64),
                np.asarray(doc["frames"], dtype=np.int64),
            )
        index._dirty.clear()  # freshly loaded state is already persisted
        return index


class LazyTopKIndex:
    """Top-K index evaluated lazily per query token.

    Materializing explicit top-K lists costs O(clusters * K) at ingest;
    with K up to 200 and ablation configurations where every observation
    is its own cluster, that dominates runtime while queries only ever
    touch a handful of tokens.  This variant stores the centroid
    observations and answers ``lookup`` by running the ingest model's
    (deterministic) top-K membership over all centroids at once --
    bitwise-identical across repeated calls, cached per (token, kx).

    Exposes the same read interface as :class:`TopKIndex`.
    """

    def __init__(self, table, model, k: int, clusters: ClusterSummary):
        self.stream = table.stream
        self.model_name = model.name
        self.k = k
        self._model = model
        self._lookup_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._dirty: Set[int] = set(range(clusters.num_clusters))
        self._epoch = uuid.uuid4().hex
        self._rebuild(table, clusters)

    def _rebuild(self, table, clusters: ClusterSummary) -> None:
        """(Re)derive every per-cluster array from a clustering snapshot.

        Runs once per live-ingest refresh, so everything per-cluster is
        vectorized (``grouped_min_max``) or deferred (member frame
        lists materialize lazily per queried cluster)."""
        self._clusters = clusters
        self._table = table
        seed_mask = np.zeros(len(table), dtype=bool)
        seed_mask[clusters.seed_rows] = True
        self._centroid_table = table.select(seed_mask)
        # select() keeps row order, so the i-th centroid-table row holds
        # the i-th smallest seed row; argsort maps each centroid-table
        # position back to its cluster id
        self._centroid_cluster_ids = np.argsort(clusters.seed_rows, kind="stable")
        # ... and its inverse maps a cluster id to its centroid-table row
        self._pos_of_cid = np.argsort(self._centroid_cluster_ids, kind="stable")
        self._members = clusters.members_by_cluster()
        self._frames_cache: Dict[int, np.ndarray] = {}
        self._centroid_class = table.class_id[clusters.seed_rows]
        self._first_time, self._last_time = grouped_min_max(
            clusters.assignments, clusters.num_clusters, table.time_s
        )
        # computed on demand, once per rebuild: entry materialization is
        # per cluster and must not recompute the O(clusters) seed array
        self._centroid_obs_seeds: Optional[np.ndarray] = None

    def _centroid_seeds(self) -> np.ndarray:
        if self._centroid_obs_seeds is None:
            self._centroid_obs_seeds = self._centroid_table.observation_seeds()
        return self._centroid_obs_seeds

    def refresh(
        self, table, clusters: ClusterSummary
    ) -> Tuple[List[int], List[int]]:
        """Absorb a grown table/clustering snapshot (live ingest).

        ``clusters`` must extend the snapshot this index currently
        holds: existing cluster ids keep their seed rows, new ids are
        appended.  The per-token lookup cache is invalidated only when
        *new centroids* appeared -- growing an existing cluster cannot
        change any token's centroid hit list, so pure-growth refreshes
        keep every cached lookup.

        Returns ``(new_cluster_ids, grown_cluster_ids)``.
        """
        old = self._clusters
        old_n = old.num_clusters
        if clusters.num_clusters < old_n or not np.array_equal(
            clusters.seed_rows[:old_n], old.seed_rows
        ):
            raise ValueError(
                "refresh() requires a snapshot extending the current one "
                "(same seed rows for existing clusters)"
            )
        new_ids = [int(c) for c in range(old_n, clusters.num_clusters)]
        grown_ids = [
            int(c) for c in np.nonzero(clusters.sizes[:old_n] != old.sizes)[0]
        ]
        self._rebuild(table, clusters)
        if new_ids:
            # a new centroid may belong to any token's top-K hit list
            self._lookup_cache.clear()
        self._dirty.update(new_ids)
        self._dirty.update(grown_ids)
        return new_ids, grown_ids

    @property
    def num_clusters(self) -> int:
        return self._clusters.num_clusters

    def cluster(self, cluster_id: int) -> ClusterEntry:
        members = self._members[cluster_id]
        return ClusterEntry(
            cluster_id=cluster_id,
            centroid_row=int(self._clusters.seed_rows[cluster_id]),
            centroid_class=int(self._centroid_class[cluster_id]),
            top_k=(),
            size=int(len(members)),
            first_time_s=float(self._first_time[cluster_id]),
            last_time_s=float(self._last_time[cluster_id]),
        )

    def members(self, cluster_id: int) -> np.ndarray:
        return self._members[cluster_id]

    def frames(self, cluster_id: int) -> np.ndarray:
        frames = self._frames_cache.get(cluster_id)
        if frames is None:
            frames = self._table.frame_idx[self._members[cluster_id]]
            self._frames_cache[cluster_id] = frames
        return frames

    def lookup(
        self,
        class_token: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[int]:
        """Cluster ids whose centroid top-K contains ``class_token``."""
        if kx is not None:
            if kx < 1:
                raise ValueError("kx must be >= 1")
            if kx > self.k:
                raise ValueError("kx=%d exceeds the index width K=%d" % (kx, self.k))
        limit = self.k if kx is None else kx
        cache_key = (int(class_token), limit)
        hits = self._lookup_cache.get(cache_key)
        if hits is None:
            member = self._model.topk_membership(self._centroid_table, class_token, limit)
            hits = self._centroid_cluster_ids[member]
            self._lookup_cache[cache_key] = hits
        out = []
        for cid in hits:
            if time_range is not None:
                start, end = time_range
                if self._last_time[cid] < start or self._first_time[cid] >= end:
                    continue
            out.append(int(cid))
        return out

    def _materialize_entries(self, cluster_ids) -> List[ClusterEntry]:
        """Explicit entries (top-K lists included) for many clusters.

        The rank/slot draws for all requested centroids run as one
        vectorized batch -- materialization and checkpoints call this
        instead of a per-cluster scalar path."""
        cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
        if not len(cluster_ids):
            return []
        obs_seeds = self._centroid_seeds()
        pos = self._pos_of_cid[cluster_ids]
        top_ks = self._model.topk_lists(
            obs_seeds[pos],
            self._centroid_table.class_id[pos],
            self._centroid_table.difficulty[pos],
            self.k,
        )
        return [
            ClusterEntry(
                cluster_id=int(cid),
                centroid_row=int(self._clusters.seed_rows[cid]),
                centroid_class=int(self._centroid_class[cid]),
                top_k=tuple(top_ks[i]),
                size=int(len(self._members[cid])),
                first_time_s=float(self._first_time[cid]),
                last_time_s=float(self._last_time[cid]),
            )
            for i, cid in enumerate(cluster_ids)
        ]

    def _materialize_entry(self, cluster_id: int) -> ClusterEntry:
        """One cluster's explicit entry, top-K list included."""
        return self._materialize_entries([cluster_id])[0]

    def materialize(self) -> "TopKIndex":
        """Write out an explicit :class:`TopKIndex` (e.g. for persistence)."""
        explicit = TopKIndex(stream=self.stream, model_name=self.model_name, k=self.k)
        explicit._epoch = self._epoch  # same lineage: one index, two views
        entries = self._materialize_entries(np.arange(self.num_clusters))
        for cid, entry in enumerate(entries):
            explicit.add_cluster(entry, self._members[cid], self.frames(cid))
        return explicit

    @property
    def dirty_clusters(self) -> Set[int]:
        """Cluster ids mutated since the last docstore write (read-only)."""
        return set(self._dirty)

    def adopt_lineage(self, epoch: str, clean: bool = True) -> None:
        """Adopt a persisted snapshot's lineage token (crash recovery).

        Mirrors :meth:`TopKIndex.adopt_lineage`: a lazy index rebuilt
        over a committed checkpoint's clustering state shares that
        snapshot's lineage, so its later incremental checkpoints merge
        as deltas instead of falling back to a wholesale rewrite.
        """
        self._epoch = epoch
        if clean:
            self._dirty.clear()

    def mark_dirty(self, cluster_ids: Iterable[int]) -> None:
        """Re-flag clusters as unpersisted (see
        :meth:`TopKIndex.mark_dirty`)."""
        self._dirty.update(int(c) for c in cluster_ids)

    def to_docstore(self, store: DocumentStore, incremental: bool = False) -> None:
        """Persist by materializing entries (full snapshot or dirty delta).

        The incremental path mirrors :meth:`TopKIndex.to_docstore`:
        only clusters added or grown since the last write are upserted.
        """
        if not incremental:
            self.materialize().to_docstore(store)
            self._dirty.clear()
            return
        entries = {
            entry.cluster_id: entry
            for entry in self._materialize_entries(sorted(self._dirty))
        }
        _upsert_cluster_delta(
            store,
            self.stream,
            self.model_name,
            self.k,
            self._epoch,
            self.num_clusters,
            self._dirty,
            lambda cid: _cluster_doc(
                entries[cid], self._members[cid], self.frames(cid)
            ),
            lambda: self.to_docstore(store),
        )


def stored_streams(store: DocumentStore) -> List[str]:
    """Streams with a persisted index in ``store``."""
    return sorted({doc["stream"] for doc in store.collection("index-meta").find()})


def stored_index_epoch(store: DocumentStore, stream: str) -> Optional[str]:
    """The lineage token of a stream's persisted index, if any."""
    meta = store.collection("index-meta").find_one({"stream": stream})
    return meta.get("epoch") if meta else None
