"""The query pipeline (Figure 4, QT1-QT4).

A query for class X looks up the top-K index for clusters matching X
(QT2), classifies only their *centroids* with the GT-CNN (QT3), and
returns all frames of the clusters whose centroid the GT-CNN confirmed
as X (QT4).  For classes outside a specialized model's head, the lookup
goes through the OTHER bucket (Section 4.3).  A smaller dynamic Kx can
shrink the candidate set at query time (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.cnn.specialize import SpecializedClassifier
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.index import IndexReader
from repro.video.synthesis import ObservationTable


@dataclass
class QueryResult:
    """Outcome of one class query."""

    class_id: int
    token: int
    candidate_clusters: List[int]
    matched_clusters: List[int]
    returned_rows: np.ndarray
    returned_frames: np.ndarray
    gt_inferences: int
    gpu_seconds: float

    def latency_seconds(self, num_gpus: int = 1) -> float:
        """Wall-clock latency on a cluster of ``num_gpus`` GPUs.

        GPU time is the only latency component the paper measures
        (Section 6.1); query work parallelizes across idle workers
        (Section 5).
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        return self.gpu_seconds / num_gpus


class QueryEngine:
    """Serves class queries against an ingest result."""

    def __init__(
        self,
        index: IndexReader,
        table: ObservationTable,
        ingest_model: Optional[ClassifierModel],
        gt_model: ClassifierModel,
        ledger: Optional[GPULedger] = None,
        query_token_fn: Optional[Callable[[int], int]] = None,
    ):
        """``ingest_model`` may be None for an engine restored from a
        persisted index, in which case ``query_token_fn`` supplies the
        class -> index-token mapping (identity for generic models, the
        head/OTHER mapping for specialized ones)."""
        if not gt_model.is_ground_truth:
            raise ValueError("gt_model must be a ground-truth model (dispersion 0)")
        if ingest_model is None and query_token_fn is None:
            raise ValueError("an engine without an ingest_model needs query_token_fn")
        self.index = index
        self.table = table
        self.ingest_model = ingest_model
        self.gt_model = gt_model
        self.ledger = ledger or GPULedger()
        self._query_token_fn = query_token_fn

    def _token_for(self, class_id: int) -> int:
        if self._query_token_fn is not None:
            return self._query_token_fn(class_id)
        if isinstance(self.ingest_model, SpecializedClassifier):
            return self.ingest_model.query_token(class_id)
        return class_id

    # -- staged pipeline ---------------------------------------------------
    # query() = plan() -> verify() -> collect().  The serve layer calls
    # the stages separately so a batch scheduler can interleave the
    # verification of many concurrent queries (dedup + cache + GPU
    # batching) between plan and collect.

    def plan(
        self,
        class_id: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> Tuple[int, List[int]]:
        """QT2: index lookup. Returns (token, candidate cluster ids)."""
        token = self._token_for(class_id)
        return token, self.index.lookup(token, kx=kx, time_range=time_range)

    def verify_centroid(self, cluster_id: int, class_id: int) -> bool:
        """QT3 verdict for one centroid, *without* ledger accounting.

        The simulated GT model has dispersion 0, so its answer is the
        true class of the centroid observation; whoever calls this is
        responsible for recording the GT-CNN cost.
        """
        return self.index.cluster(cluster_id).centroid_class == class_id

    def collect(
        self,
        matched: List[int],
        time_range: Optional[Tuple[float, float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """QT4: expand matched clusters into (rows, unique frame ids)."""
        if not matched:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        rows = np.concatenate([self.index.members(cid) for cid in matched])
        if time_range is not None:
            start, end = time_range
            times = self.table.time_s[rows]
            rows = rows[(times >= start) & (times < end)]
        frames = np.unique(self.table.frame_idx[rows])
        return rows, frames

    def query(
        self,
        class_id: int,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryResult:
        """Find all frames containing objects of ``class_id``.

        Args:
            class_id: the queried object class.
            kx: optional dynamic K (<= index K) to trade recall for
                latency at query time.
            time_range: optional [start, end) seconds restriction.
        """
        token, candidates = self.plan(class_id, kx=kx, time_range=time_range)

        # QT3: GT-CNN verifies each candidate centroid.
        matched = [cid for cid in candidates if self.verify_centroid(cid, class_id)]
        entry = self.ledger.record(
            CostCategory.QUERY_GT,
            self.gt_model,
            len(candidates),
            note="query class=%d stream=%s" % (class_id, self.index.stream),
        )

        rows, frames = self.collect(matched, time_range=time_range)
        return QueryResult(
            class_id=class_id,
            token=token,
            candidate_clusters=candidates,
            matched_clusters=matched,
            returned_rows=rows,
            returned_frames=frames,
            gt_inferences=len(candidates),
            gpu_seconds=entry.gpu_seconds,
        )

    def query_incremental(
        self, class_id: int, batches: List[int]
    ) -> List[QueryResult]:
        """Progressive retrieval with growing Kx (Section 5).

        Serves "give me some results fast, more if needed": each batch
        re-queries with the next larger Kx; candidates already verified
        are not re-classified (their GT cost is deducted).
        """
        results: List[QueryResult] = []
        seen: set = set()
        for kx in batches:
            result = self.query(class_id, kx=kx)
            fresh = [c for c in result.candidate_clusters if c not in seen]
            refund = len(result.candidate_clusters) - len(fresh)
            if refund:
                # query() charged every candidate; deduct the duplicates
                # so the ledger matches the centroids actually classified
                self.ledger.refund(
                    CostCategory.QUERY_GT, self.gt_model, refund,
                    note="dedup refund (%d centroids)" % refund,
                )
                result.gt_inferences = len(fresh)
                result.gpu_seconds = self.gt_model.cost_seconds(len(fresh), self.ledger.gpu)
            seen.update(result.candidate_clusters)
            results.append(result)
        return results
