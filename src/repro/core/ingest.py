"""The ingest pipeline (Figure 4, IT1-IT4).

For each detected moving object: run the cheap ingest CNN (IT1) --
unless pixel differencing shows it nearly identical to an object in the
previous frame (Section 4.2) -- cluster by feature vector (IT2), and
index each cluster's centroid under its top-K classes (IT3-IT4).  Only
the cheap-CNN invocations cost GPU time; clustering and indexing run on
the ingest machine's CPUs, fully pipelined with the GPU (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cnn.calibration import INGEST
from repro.cnn.hashing import combine, hash_uniform, stable_salt
from repro.cnn.model import ClassifierModel
from repro.core.clustering import ClusterSummary, cluster_table
from repro.core.config import FocusConfig
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.index import IndexReader, LazyTopKIndex, TopKIndex
from repro.video.synthesis import ObservationTable

_PIXELDIFF_SALT = stable_salt("pixel-diff")


def simulate_pixel_diff(
    table: ObservationTable,
    max_suppression: Optional[float] = None,
) -> np.ndarray:
    """Which observations pixel differencing suppresses (no CNN run).

    A non-first observation of a track is suppressed when the object's
    pixels barely changed since the previous frame.  At 30 fps adjacent
    observations are 33 ms apart and frequently near-identical; at lower
    frame rates the gap grows and suppression opportunities shrink
    proportionally.  Deterministic per observation.
    """
    if max_suppression is None:
        max_suppression = INGEST.pixel_diff_max_suppression
    if not 0.0 <= max_suppression < 1.0:
        raise ValueError("max_suppression must be in [0, 1)")
    p = max_suppression * min(table.fps / 30.0, 1.0)
    u = hash_uniform(combine(table.observation_seeds(), np.uint64(_PIXELDIFF_SALT)))
    return (table.obs_in_track > 0) & (u < p)


@dataclass
class IngestResult:
    """Everything ingest produces for one stream window."""

    table: ObservationTable
    config: FocusConfig
    clusters: ClusterSummary
    index: IndexReader  # TopKIndex or LazyTopKIndex behind one protocol
    suppressed: np.ndarray
    cnn_inferences: int
    ingest_gpu_seconds: float

    @property
    def suppression_ratio(self) -> float:
        n = len(self.table)
        return float(self.suppressed.sum()) / n if n else 0.0


class IngestPipeline:
    """Runs ingest for one stream window under one configuration."""

    def __init__(
        self,
        config: FocusConfig,
        ledger: Optional[GPULedger] = None,
        max_live_clusters: int = 512,
        index_mode: str = "lazy",
    ):
        if index_mode not in ("lazy", "materialized"):
            raise ValueError("index_mode must be 'lazy' or 'materialized'")
        self.config = config
        self.ledger = ledger or GPULedger()
        self.max_live_clusters = max_live_clusters
        self.index_mode = index_mode

    def run(self, table: ObservationTable) -> IngestResult:
        """Ingest all observations of ``table``."""
        config = self.config
        if config.pixel_diff:
            suppressed = simulate_pixel_diff(table)
        else:
            suppressed = np.zeros(len(table), dtype=bool)

        clusters = cluster_table(
            table,
            config.model,
            threshold=config.cluster_threshold,
            max_live_clusters=self.max_live_clusters,
            suppressed=suppressed,
        )
        if self.index_mode == "materialized":
            index = TopKIndex.build(table, config.model, config.k, clusters)
        else:
            index = LazyTopKIndex(table, config.model, config.k, clusters)

        inferences = int(len(table) - suppressed.sum())
        entry = self.ledger.record(
            CostCategory.INGEST_CNN,
            config.model,
            inferences,
            note="stream=%s" % table.stream,
        )
        return IngestResult(
            table=table,
            config=config,
            clusters=clusters,
            index=index,
            suppressed=suppressed,
            cnn_inferences=inferences,
            ingest_gpu_seconds=entry.gpu_seconds,
        )
