"""Continuous, queryable-while-ingesting stream sessions.

Focus targets *live* video (Sections 3, 6.3): ingest runs continuously
on every camera feed while queries arrive at any time.  This module
replaces the one-shot ``IngestPipeline.run(table)`` contract with a
stateful :class:`StreamIngestor`: observation chunks arrive through
:meth:`StreamIngestor.push`, the incremental clusterer carries its
centroids and per-track shortcuts across chunks, and the stream's top-K
index is updated in place -- so a query issued between two pushes sees
every observation up to the current watermark, with answers identical
to a one-shot ingest of the same window.

Per push the ingest-CNN work is (optionally) dispatched onto the shared
GPU cluster's work queues, making ingest and query traffic contend for
the same devices the way the paper's deployment does (Section 6.3).

Durability (``docs/DURABILITY.md``): an ingestor opened with a
write-ahead :class:`~repro.storage.journal.IngestJournal` journals every
chunk *before* applying it, checkpoints through the atomic epoch-tagged
protocol (index delta + resumable ingest state + stream metadata, all
swapped in as one commit), and :meth:`StreamIngestor.recover` rebuilds
a session killed at *any* point by restoring the last committed
checkpoint and replaying the journal's suffix -- bit-identical to
uninterrupted ingest, in both index modes, because every ingest stage
is per-row deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cnn.zoo import model_by_name
from repro.core.clustering import (
    ClusterSummary,
    IncrementalClusterer,
    extract_and_cluster_chunk,
    group_rows_by_cluster,
)
from repro.core.config import FocusConfig
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.index import (
    ClusterEntry,
    IndexReader,
    LazyTopKIndex,
    TopKIndex,
    stored_index_epoch,
)
from repro.core.ingest import IngestResult, simulate_pixel_diff
from repro.sched.cluster import DispatchReport, IngestDispatcher
from repro.storage.docstore import DocumentStore
from repro.storage.journal import (
    CHUNK_COLUMNS,
    CheckpointWriter,
    IngestJournal,
    JournalError,
    backing_store,
    chunk_from_payload,
    committed_checkpoint,
    load_ingest_state,
)
from repro.video.synthesis import ObservationTable


def empty_observation_table(stream: str, fps: float) -> ObservationTable:
    """A zero-row observation table (the state of a just-opened stream)."""
    empty_i = np.zeros(0, dtype=np.int64)
    empty_f = np.zeros(0, dtype=np.float64)
    return ObservationTable(
        stream, fps, 0.0, empty_i, empty_i, empty_f, empty_i, empty_f,
        empty_i, empty_i,
    )


#: the per-row columns accumulated across pushes, in constructor order
_COLUMNS = (
    "track_id",
    "class_id",
    "time_s",
    "frame_idx",
    "difficulty",
    "appearance_seed",
    "obs_in_track",
)


class _GrowingColumns:
    """Amortized-doubling buffers for the accumulated table columns.

    Appending a chunk copies only that chunk's rows (amortized), and a
    table over the current rows is a set of O(1) views -- so a stream
    that grows forever never re-copies its history on push.  Views stay
    valid across later appends: rows before the watermark are never
    overwritten, and a reallocation leaves old views on the old buffer.
    """

    def __init__(self):
        self._buffers = None
        self._suppressed = np.zeros(0, dtype=bool)
        self.rows = 0

    def _reserve(self, extra: int) -> None:
        needed = self.rows + extra
        capacity = len(self._suppressed)
        if needed <= capacity:
            return
        capacity = max(1024, capacity)
        while capacity < needed:
            capacity *= 2
        for name, buf in self._buffers.items():
            grown = np.empty(capacity, dtype=buf.dtype)
            grown[: self.rows] = buf[: self.rows]
            self._buffers[name] = grown
        grown = np.zeros(capacity, dtype=bool)
        grown[: self.rows] = self._suppressed[: self.rows]
        self._suppressed = grown

    def append(self, chunk: ObservationTable, suppressed: np.ndarray) -> None:
        if self._buffers is None:
            self._buffers = {
                name: np.empty(0, dtype=getattr(chunk, name).dtype)
                for name in _COLUMNS
            }
        self._reserve(len(chunk))
        stop = self.rows + len(chunk)
        for name, buf in self._buffers.items():
            buf[self.rows : stop] = getattr(chunk, name)
        self._suppressed[self.rows : stop] = suppressed
        self.rows = stop

    def table(self, stream: str, fps: float, duration_s: float) -> ObservationTable:
        if self._buffers is None:
            return empty_observation_table(stream, fps)
        return ObservationTable(
            stream,
            fps,
            duration_s,
            *(self._buffers[name][: self.rows] for name in _COLUMNS)
        )

    def suppressed(self) -> np.ndarray:
        return self._suppressed[: self.rows]

    def restore(self, columns: Dict[str, np.ndarray], suppressed: np.ndarray) -> None:
        """Reload accumulated rows from a checkpoint's state payload."""
        rows = len(suppressed)
        if not rows:
            return
        self._buffers = {
            name: np.empty(0, dtype=columns[name].dtype) for name in _COLUMNS
        }
        self._reserve(rows)
        for name, buf in self._buffers.items():
            buf[:rows] = columns[name]
        self._suppressed[:rows] = suppressed
        self.rows = rows


@dataclass(frozen=True)
class ChunkReport:
    """What one ``push`` did to the stream's state."""

    chunk_rows: int
    total_rows: int
    watermark_s: float
    suppressed: int
    cnn_inferences: int
    gpu_seconds: float
    new_clusters: List[int]
    grown_clusters: List[int]
    #: placement of this chunk's CNN batches on the shared GPU cluster
    #: (None when the ingestor runs without a dispatcher)
    dispatch: Optional[DispatchReport]

    @property
    def suppression_ratio(self) -> float:
        return self.suppressed / self.chunk_rows if self.chunk_rows else 0.0


class StreamIngestor:
    """Stateful ingest for one live stream, queryable between pushes.

    The streaming counterpart of :class:`~repro.core.ingest.IngestPipeline`:
    the same IT1-IT4 stages run per chunk, but clustering state, the
    accumulated observation table, and the top-K index persist across
    :meth:`push` calls.  Because pixel differencing, feature extraction,
    and the clusterer's row walk are all per-row deterministic, the
    state after pushing chunks ``c1..cn`` is identical to one-shot
    ingest of their concatenation -- which is what makes mid-ingest
    query answers trustworthy.

    Per-push cost: table accumulation copies only the chunk (amortized
    doubling buffers), and in ``materialized`` mode the index applies
    just the chunk's delta, so a forever-growing stream pays O(chunk)
    per push.  ``lazy`` mode trades that for skipping all top-K
    materialization at ingest: its :meth:`LazyTopKIndex.refresh`
    rebuilds per-cluster arrays over the accumulated window, an O(rows
    so far) step per push.
    """

    def __init__(
        self,
        config: FocusConfig,
        stream: str,
        fps: float = 30.0,
        ledger: Optional[GPULedger] = None,
        max_live_clusters: int = 512,
        index_mode: str = "lazy",
        dispatcher: Optional[IngestDispatcher] = None,
        journal: Optional[IngestJournal] = None,
    ):
        if index_mode not in ("lazy", "materialized"):
            raise ValueError("index_mode must be 'lazy' or 'materialized'")
        self.config = config
        self.stream = stream
        self.fps = float(fps)
        self.ledger = ledger or GPULedger()
        self.index_mode = index_mode
        self.dispatcher = dispatcher
        self._clusterer = IncrementalClusterer(
            threshold=config.cluster_threshold,
            dim=config.model.feature_dim,
            max_live_clusters=max_live_clusters,
        )
        self._extractor = config.model.feature_extractor()
        self._columns = _GrowingColumns()
        self._table = empty_observation_table(stream, fps)
        self._snapshot = self._clusterer.snapshot()
        self._watermark = 0.0
        self._last_time = float("-inf")
        self.cnn_inferences = 0
        self.ingest_gpu_seconds = 0.0
        self.chunks_pushed = 0
        #: committed durable-checkpoint epoch (0: none); advances only
        #: when a checkpoint's atomic commit succeeds
        self.committed_epoch = 0
        self._last_journal_seq = -1
        self.journal = None
        if index_mode == "materialized":
            self._index: IndexReader = TopKIndex(
                stream=stream, model_name=config.model.name, k=config.k
            )
        else:
            self._index = LazyTopKIndex(
                self._table, config.model, config.k, self._snapshot
            )
        if journal is not None:
            self._attach_fresh_journal(journal, max_live_clusters)

    def _attach_fresh_journal(
        self, journal: IngestJournal, max_live_clusters: int
    ) -> None:
        """Start write-ahead journaling for a brand-new session.

        A fresh session restarts cluster ids at 0, so its journal must
        be a new lineage: mixing it with a predecessor's records or a
        committed checkpoint would be corruption by construction.  Use
        :meth:`recover` to resume an existing lineage, or
        :func:`repro.storage.journal.reset_stream` to wipe it.
        """
        if journal.stream != self.stream:
            raise ValueError(
                "journal belongs to stream %r, ingestor is %r"
                % (journal.stream, self.stream)
            )
        if journal.last_seq() >= 0 or committed_checkpoint(journal.store, self.stream):
            raise JournalError(
                "stream %r already has durable state in this store; recover "
                "it with StreamIngestor.recover / FocusSystem.recover, or "
                "wipe it with repro.storage.journal.reset_stream" % self.stream
            )
        self._last_journal_seq = journal.append("open", self._descriptor(max_live_clusters))
        self.journal = journal

    def _descriptor(self, max_live_clusters: Optional[int] = None) -> Dict:
        """The session parameters recovery rebuilds a config from."""
        config = self.config
        return {
            "stream": self.stream,
            "fps": self.fps,
            "index_mode": self.index_mode,
            "max_live_clusters": int(
                self._clusterer.max_live
                if max_live_clusters is None
                else max_live_clusters
            ),
            "model": config.model.name,
            "k": int(config.k),
            "cluster_threshold": float(config.cluster_threshold),
            "pixel_diff": bool(config.pixel_diff),
        }

    # -- current state -----------------------------------------------------
    @property
    def table(self) -> ObservationTable:
        """Every observation ingested so far, in stream order."""
        return self._table

    @property
    def index(self) -> IndexReader:
        """The live index; the same object across pushes (updated in place)."""
        return self._index

    @property
    def clusters(self) -> ClusterSummary:
        return self._snapshot

    @property
    def watermark_s(self) -> float:
        """The stream time up to which queries are answerable."""
        return self._watermark

    @property
    def num_rows(self) -> int:
        return len(self._table)

    @property
    def result(self) -> IngestResult:
        """The current watermark's state as a one-shot-compatible result."""
        return IngestResult(
            table=self._table,
            config=self.config,
            clusters=self._snapshot,
            index=self._index,
            suppressed=self._columns.suppressed(),
            cnn_inferences=self.cnn_inferences,
            ingest_gpu_seconds=self.ingest_gpu_seconds,
        )

    # -- ingest ------------------------------------------------------------
    def _validate_chunk(self, chunk: ObservationTable) -> None:
        if chunk.stream != self.stream:
            raise ValueError(
                "chunk belongs to stream %r, ingestor is %r"
                % (chunk.stream, self.stream)
            )
        if float(chunk.fps) != self.fps:
            raise ValueError(
                "chunk fps %.3f differs from the stream's %.3f"
                % (chunk.fps, self.fps)
            )
        if len(chunk) and float(chunk.time_s.min()) < self._last_time:
            raise ValueError(
                "chunks must arrive in stream order: chunk starts at "
                "%.3fs but %.3fs was already ingested"
                % (float(chunk.time_s.min()), self._last_time)
            )

    def push(
        self, chunk: ObservationTable, watermark_s: Optional[float] = None
    ) -> ChunkReport:
        """Ingest one chunk of observations; the index is queryable after.

        Args:
            chunk: observations in stream order, starting no earlier
                than the last pushed observation.
            watermark_s: stream time the chunk covers up to; defaults to
                the chunk's last observation time, and can only extend
                past it (an observation-free interval advances the
                watermark explicitly; ingested video is never unseen).

        With a journal attached the chunk is journaled *first* (the
        write-ahead step): once ``push`` returns, the chunk's rows
        survive any crash -- :meth:`recover` replays them.  The append
        is a single atomic record, so a crash mid-push loses at most
        the unacknowledged chunk, which the producer re-pushes.
        """
        self._validate_chunk(chunk)
        if self.journal is not None:
            self._last_journal_seq = self.journal.append_chunk(chunk, watermark_s)
        return self._apply_chunk(chunk, watermark_s, dispatch=True)

    def _apply_chunk(
        self,
        chunk: ObservationTable,
        watermark_s: Optional[float],
        dispatch: bool,
    ) -> ChunkReport:
        """Apply one (already journaled) chunk to the in-memory state.

        Shared by the live path (``push``) and journal replay during
        :meth:`recover`; replay skips GPU-cluster dispatch -- that work
        happened before the crash -- but keeps cost accounting so the
        recovered counters match an uninterrupted session.
        """
        config = self.config
        offset = len(self._table)

        # IT1 + pixel differencing (per-row deterministic, so chunking
        # cannot change which observations are suppressed)
        if config.pixel_diff:
            suppressed = simulate_pixel_diff(chunk)
        else:
            suppressed = np.zeros(len(chunk), dtype=bool)

        # IT2: feature extraction + incremental clustering; the
        # clusterer keeps its centroids and track shortcuts across
        # calls, and suppressed rows skip feature synthesis entirely
        assignments = extract_and_cluster_chunk(
            self._clusterer, self._extractor, chunk, suppressed
        )
        previous = self._snapshot
        snapshot = self._clusterer.snapshot()

        # accumulate the table (stream order is preserved, so row ids,
        # cluster ids, and index member rows match a one-shot ingest;
        # only the chunk's rows are copied -- no history rebuild)
        self._columns.append(chunk, suppressed)
        if len(chunk):
            self._last_time = max(self._last_time, float(chunk.time_s.max()))
        # the watermark never trails an ingested observation: an explicit
        # watermark_s can only extend past the chunk's last observation
        # (an observation-free tail), not declare ingested video unseen
        watermark = self._watermark
        if len(chunk):
            watermark = max(watermark, float(chunk.time_s.max()))
        if watermark_s is not None:
            watermark = max(watermark, float(watermark_s))
        self._table = self._columns.table(self.stream, self.fps, watermark)
        self._watermark = watermark

        # IT3-IT4: apply the cluster delta to the live index
        if self.index_mode == "materialized":
            new_ids, grown_ids = self._apply_delta(
                previous, snapshot, assignments, offset, chunk
            )
        else:
            new_ids, grown_ids = self._index.refresh(self._table, snapshot)
        self._snapshot = snapshot

        # cost accounting + (optional) contention with query traffic on
        # the shared GPU cluster
        inferences = int(len(chunk) - suppressed.sum())
        gpu_seconds = 0.0
        if len(chunk):
            entry = self.ledger.record(
                CostCategory.INGEST_CNN,
                config.model,
                inferences,
                note="stream=%s chunk=%d" % (self.stream, self.chunks_pushed),
            )
            gpu_seconds = entry.gpu_seconds
        dispatch_report = None
        if dispatch and self.dispatcher is not None and inferences:
            dispatch_report = self.dispatcher.dispatch(
                config.model, inferences, stream=self.stream
            )
        self.cnn_inferences += inferences
        self.ingest_gpu_seconds += gpu_seconds
        self.chunks_pushed += 1

        return ChunkReport(
            chunk_rows=len(chunk),
            total_rows=len(self._table),
            watermark_s=self._watermark,
            suppressed=int(suppressed.sum()),
            cnn_inferences=inferences,
            gpu_seconds=gpu_seconds,
            new_clusters=new_ids,
            grown_clusters=grown_ids,
            dispatch=dispatch_report,
        )

    def _apply_delta(
        self,
        previous: ClusterSummary,
        snapshot: ClusterSummary,
        assignments: np.ndarray,
        offset: int,
        chunk: ObservationTable,
    ) -> "tuple[List[int], List[int]]":
        """Extend/add materialized index entries for one chunk's rows."""
        index = self._index
        model = self.config.model
        old_n = previous.num_clusters
        new_ids: List[int] = []
        grown_ids: List[int] = []
        if not len(assignments):
            return new_ids, grown_ids
        # group the chunk's rows by cluster id (ascending, so new
        # clusters are added in id order exactly like TopKIndex.build)
        touched = int(assignments.min())
        groups = group_rows_by_cluster(
            assignments - touched, int(assignments.max()) - touched + 1
        )
        obs_seeds = chunk.observation_seeds()
        # one batched rank/slot draw for every cluster the chunk opened:
        # the per-cluster scalar path used to dominate live ingest
        fresh = [
            cid_offset + touched
            for cid_offset, group in enumerate(groups)
            if len(group) and cid_offset + touched >= old_n
        ]
        seed_locals = np.asarray(
            [int(snapshot.seed_rows[cid]) - offset for cid in fresh],
            dtype=np.int64,
        )
        top_ks = {}
        if fresh:
            lists = model.topk_lists(
                obs_seeds[seed_locals],
                chunk.class_id[seed_locals],
                chunk.difficulty[seed_locals],
                self.config.k,
            )
            top_ks = dict(zip(fresh, lists))
        for cid_offset, group in enumerate(groups):
            if not len(group):
                continue
            cid = cid_offset + touched
            global_rows = group + offset
            frames = chunk.frame_idx[group]
            times = chunk.time_s[group]
            if cid < old_n:
                index.extend_cluster(cid, global_rows, frames, times)
                grown_ids.append(cid)
            else:
                seed_local = int(snapshot.seed_rows[cid]) - offset
                entry = ClusterEntry(
                    cluster_id=cid,
                    centroid_row=int(snapshot.seed_rows[cid]),
                    centroid_class=int(chunk.class_id[seed_local]),
                    top_k=tuple(top_ks[cid]),
                    size=int(len(group)),
                    first_time_s=float(times.min()),
                    last_time_s=float(times.max()),
                )
                index.add_cluster(entry, global_rows, frames)
                new_ids.append(cid)
        return new_ids, grown_ids

    # -- persistence -------------------------------------------------------
    def checkpoint(
        self,
        store,
        stream_meta: Optional[Dict] = None,
        compact: bool = True,
    ) -> Optional[int]:
        """Persist the session's progress to ``store``.

        Without a journal this is the legacy query-only checkpoint: the
        index's cluster delta is upserted in place (unchanged cluster
        documents are never rewritten) and ``None`` is returned.

        With a journal attached the checkpoint is *durable and atomic*:
        the index delta, the resumable ingest state (clusterer +
        accumulated rows), optional ``stream_meta``, and the commit
        marker all land in staged collections and become visible in one
        epoch-tagged swap.  A crash at any earlier point leaves the
        previous committed checkpoint intact; a zombie session whose
        epoch lost the compare-and-swap gets
        :class:`~repro.storage.journal.StaleEpochError`.  On success the
        journal is compacted up to the committed sequence number (unless
        ``compact=False``) and the new epoch is returned.

        Compaction runs *after* the commit: a failure inside it leaves
        the new epoch fully committed (``committed_epoch`` already
        advanced) with some stale journal records behind -- harmless,
        since replay filters records at or below the committed cursor.
        Callers observing an exception should consult
        ``committed_epoch`` (or the store's marker) before concluding
        the round failed; ``QueryService.checkpoint_streams`` does.
        """
        if self.journal is None:
            self._index.to_docstore(store, incremental=True)
            return None
        if backing_store(store) is not backing_store(self.journal.store):
            # a durable checkpoint compacts the WAL after committing; a
            # checkpoint landing in a *different* store would destroy
            # journal records whose covering checkpoint lives elsewhere
            # -- acknowledged chunks would become unrecoverable
            raise JournalError(
                "stream %r: durable checkpoint target must be the journal's "
                "store (checkpoint commit and WAL compaction are one "
                "protocol); to snapshot into a separate store use "
                "FocusSystem.save_indexes" % self.stream
            )
        writer = CheckpointWriter(
            store,
            self.stream,
            expected_epoch=self.committed_epoch,
            journal_seq=self._last_journal_seq,
        )
        # no abort on failure: a crash leaves staged garbage exactly as
        # a real machine would; recovery discards it.  The live
        # collections are untouched until writer.commit().  The dirty
        # set is restored on failure because staging the delta clears it
        # -- if the session survives the error (chaos mode, retries),
        # the next checkpoint must not skip these clusters and commit
        # stale documents.
        dirty_before = self._index.dirty_clusters
        try:
            self._index.to_docstore(writer, incremental=True)
            writer.write_state(self._state_payload())
            if stream_meta is not None:
                meta = writer.collection("stream-meta")
                meta.delete_many({"stream": self.stream})
                meta.insert_one(dict(stream_meta))
            epoch = writer.commit(
                extra={"rows": self.num_rows, "watermark_s": float(self._watermark)}
            )
        except BaseException:
            self._index.mark_dirty(dirty_before)
            raise
        self.committed_epoch = epoch
        if compact:
            self.journal.truncate_through(writer.journal_seq)
        return epoch

    def _state_payload(self) -> Dict:
        """Everything :meth:`recover` needs to resume this session
        exactly: session descriptor, watermark cursors, accumulated
        columns, and the clusterer's bit-exact state."""
        columns = self._columns
        payload = {
            "descriptor": self._descriptor(),
            "rows": int(columns.rows),
            "watermark_s": float(self._watermark),
            "last_time_s": (
                None if self._last_time == float("-inf") else float(self._last_time)
            ),
            "cnn_inferences": int(self.cnn_inferences),
            "ingest_gpu_seconds": float(self.ingest_gpu_seconds),
            "chunks_pushed": int(self.chunks_pushed),
            "clusterer": self._clusterer.state_dict(),
            "suppressed": [int(v) for v in columns.suppressed()],
            "columns": {
                name: np.asarray(getattr(self._table, name), dtype=dtype).tolist()
                for name, dtype in CHUNK_COLUMNS
            },
        }
        return payload

    @classmethod
    def recover(
        cls,
        store: DocumentStore,
        stream: str,
        config: Optional[FocusConfig] = None,
        ledger: Optional[GPULedger] = None,
        dispatcher: Optional[IngestDispatcher] = None,
    ) -> "StreamIngestor":
        """Resume a journaled session killed at any point.

        Restores the last committed checkpoint's ingest state (or a
        blank session when none ever committed), then replays every
        journal record past the committed sequence number through the
        normal ingest stages.  Ingest is per-row deterministic and the
        checkpoint state is bit-exact, so the recovered session --
        table, clustering, index, watermark, counters -- is
        bit-identical to one that never crashed, in both index modes.
        The journal's checksums and sequence numbers are verified on
        the way; torn, truncated, or gapped journals raise
        :class:`~repro.storage.journal.JournalCorruption` rather than
        resurrecting a wrong state.

        Args:
            config: the session's ingest configuration.  When omitted
                it is rebuilt from the journaled descriptor (zoo models
                only); a specialized model must be passed explicitly.
        """
        store.discard_staged()  # a crashed checkpoint's staging is garbage
        journal = IngestJournal(store, stream)
        state_doc = load_ingest_state(store, stream)
        descriptor = None
        if state_doc is not None:
            descriptor = state_doc["payload"]["descriptor"]
        else:
            for record in journal.records():
                if record.kind == "open":
                    descriptor = record.payload
                    break
            if descriptor is None:
                raise KeyError(
                    "stream %r has no durable state (no committed checkpoint "
                    "and no journaled session) in this store" % stream
                )
        if config is None:
            config = FocusConfig(
                model=model_by_name(descriptor["model"]),
                k=descriptor["k"],
                cluster_threshold=descriptor["cluster_threshold"],
                pixel_diff=descriptor["pixel_diff"],
            )
        else:
            mismatches = [
                field
                for field, value in (
                    ("model", config.model.name),
                    ("k", config.k),
                    ("cluster_threshold", config.cluster_threshold),
                    ("pixel_diff", config.pixel_diff),
                )
                if descriptor[field] != value
            ]
            if mismatches:
                raise ValueError(
                    "stream %r: supplied config disagrees with the journaled "
                    "session on: %s" % (stream, ", ".join(mismatches))
                )
        self = cls(
            config,
            stream,
            fps=descriptor["fps"],
            ledger=ledger,
            max_live_clusters=descriptor["max_live_clusters"],
            index_mode=descriptor["index_mode"],
            dispatcher=None,
        )
        replay_after = -1
        if state_doc is not None:
            self._restore_state(store, state_doc)
            replay_after = int(state_doc["journal_seq"])
        for record in journal.records(after=replay_after):
            if record.kind != "chunk":
                continue
            chunk = chunk_from_payload(record.payload)
            self._validate_chunk(chunk)
            self._apply_chunk(chunk, record.payload.get("watermark_s"), dispatch=False)
        # journaling resumes where the lineage stands -- the max of the
        # committed cursor and any surviving records (compaction can
        # leave the journal empty); dispatch resumes live
        self.journal = journal
        self._last_journal_seq = max(journal.last_seq(), replay_after)
        self.dispatcher = dispatcher
        return self

    def _restore_state(self, store: DocumentStore, state_doc: Dict) -> None:
        """Load a committed checkpoint's ingest state into this session."""
        payload = state_doc["payload"]
        self._clusterer = IncrementalClusterer.from_state_dict(payload["clusterer"])
        columns = {
            name: np.asarray(payload["columns"][name], dtype=dtype)
            for name, dtype in CHUNK_COLUMNS
        }
        suppressed = np.asarray(payload["suppressed"], dtype=bool)
        self._columns.restore(columns, suppressed)
        self._watermark = float(payload["watermark_s"])
        last = payload["last_time_s"]
        self._last_time = float("-inf") if last is None else float(last)
        self.cnn_inferences = int(payload["cnn_inferences"])
        self.ingest_gpu_seconds = float(payload["ingest_gpu_seconds"])
        self.chunks_pushed = int(payload["chunks_pushed"])
        self._snapshot = self._clusterer.snapshot()
        self._table = self._columns.table(self.stream, self.fps, self._watermark)
        if self.index_mode == "materialized":
            # the committed snapshot *is* the index; adopt it wholesale
            self._index = TopKIndex.from_docstore(store, self.stream)
        else:
            self._index = LazyTopKIndex(
                self._table, self.config.model, self.config.k, self._snapshot
            )
            epoch = stored_index_epoch(store, self.stream)
            if epoch:
                # same lineage as the committed snapshot: later deltas
                # merge instead of triggering a wholesale rewrite, and
                # the committed clusters are already persisted (clean)
                self._index.adopt_lineage(epoch, clean=True)
        self.committed_epoch = int(state_doc["epoch"])
