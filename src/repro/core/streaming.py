"""Continuous, queryable-while-ingesting stream sessions.

Focus targets *live* video (Sections 3, 6.3): ingest runs continuously
on every camera feed while queries arrive at any time.  This module
replaces the one-shot ``IngestPipeline.run(table)`` contract with a
stateful :class:`StreamIngestor`: observation chunks arrive through
:meth:`StreamIngestor.push`, the incremental clusterer carries its
centroids and per-track shortcuts across chunks, and the stream's top-K
index is updated in place -- so a query issued between two pushes sees
every observation up to the current watermark, with answers identical
to a one-shot ingest of the same window.

Per push the ingest-CNN work is (optionally) dispatched onto the shared
GPU cluster's work queues, making ingest and query traffic contend for
the same devices the way the paper's deployment does (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.clustering import (
    ClusterSummary,
    IncrementalClusterer,
    extract_and_cluster_chunk,
    group_rows_by_cluster,
)
from repro.core.config import FocusConfig
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.index import ClusterEntry, IndexReader, LazyTopKIndex, TopKIndex
from repro.core.ingest import IngestResult, simulate_pixel_diff
from repro.sched.cluster import DispatchReport, IngestDispatcher
from repro.video.synthesis import ObservationTable


def empty_observation_table(stream: str, fps: float) -> ObservationTable:
    """A zero-row observation table (the state of a just-opened stream)."""
    empty_i = np.zeros(0, dtype=np.int64)
    empty_f = np.zeros(0, dtype=np.float64)
    return ObservationTable(
        stream, fps, 0.0, empty_i, empty_i, empty_f, empty_i, empty_f,
        empty_i, empty_i,
    )


#: the per-row columns accumulated across pushes, in constructor order
_COLUMNS = (
    "track_id",
    "class_id",
    "time_s",
    "frame_idx",
    "difficulty",
    "appearance_seed",
    "obs_in_track",
)


class _GrowingColumns:
    """Amortized-doubling buffers for the accumulated table columns.

    Appending a chunk copies only that chunk's rows (amortized), and a
    table over the current rows is a set of O(1) views -- so a stream
    that grows forever never re-copies its history on push.  Views stay
    valid across later appends: rows before the watermark are never
    overwritten, and a reallocation leaves old views on the old buffer.
    """

    def __init__(self):
        self._buffers = None
        self._suppressed = np.zeros(0, dtype=bool)
        self.rows = 0

    def _reserve(self, extra: int) -> None:
        needed = self.rows + extra
        capacity = len(self._suppressed)
        if needed <= capacity:
            return
        capacity = max(1024, capacity)
        while capacity < needed:
            capacity *= 2
        for name, buf in self._buffers.items():
            grown = np.empty(capacity, dtype=buf.dtype)
            grown[: self.rows] = buf[: self.rows]
            self._buffers[name] = grown
        grown = np.zeros(capacity, dtype=bool)
        grown[: self.rows] = self._suppressed[: self.rows]
        self._suppressed = grown

    def append(self, chunk: ObservationTable, suppressed: np.ndarray) -> None:
        if self._buffers is None:
            self._buffers = {
                name: np.empty(0, dtype=getattr(chunk, name).dtype)
                for name in _COLUMNS
            }
        self._reserve(len(chunk))
        stop = self.rows + len(chunk)
        for name, buf in self._buffers.items():
            buf[self.rows : stop] = getattr(chunk, name)
        self._suppressed[self.rows : stop] = suppressed
        self.rows = stop

    def table(self, stream: str, fps: float, duration_s: float) -> ObservationTable:
        if self._buffers is None:
            return empty_observation_table(stream, fps)
        return ObservationTable(
            stream,
            fps,
            duration_s,
            *(self._buffers[name][: self.rows] for name in _COLUMNS)
        )

    def suppressed(self) -> np.ndarray:
        return self._suppressed[: self.rows]


@dataclass(frozen=True)
class ChunkReport:
    """What one ``push`` did to the stream's state."""

    chunk_rows: int
    total_rows: int
    watermark_s: float
    suppressed: int
    cnn_inferences: int
    gpu_seconds: float
    new_clusters: List[int]
    grown_clusters: List[int]
    #: placement of this chunk's CNN batches on the shared GPU cluster
    #: (None when the ingestor runs without a dispatcher)
    dispatch: Optional[DispatchReport]

    @property
    def suppression_ratio(self) -> float:
        return self.suppressed / self.chunk_rows if self.chunk_rows else 0.0


class StreamIngestor:
    """Stateful ingest for one live stream, queryable between pushes.

    The streaming counterpart of :class:`~repro.core.ingest.IngestPipeline`:
    the same IT1-IT4 stages run per chunk, but clustering state, the
    accumulated observation table, and the top-K index persist across
    :meth:`push` calls.  Because pixel differencing, feature extraction,
    and the clusterer's row walk are all per-row deterministic, the
    state after pushing chunks ``c1..cn`` is identical to one-shot
    ingest of their concatenation -- which is what makes mid-ingest
    query answers trustworthy.

    Per-push cost: table accumulation copies only the chunk (amortized
    doubling buffers), and in ``materialized`` mode the index applies
    just the chunk's delta, so a forever-growing stream pays O(chunk)
    per push.  ``lazy`` mode trades that for skipping all top-K
    materialization at ingest: its :meth:`LazyTopKIndex.refresh`
    rebuilds per-cluster arrays over the accumulated window, an O(rows
    so far) step per push.
    """

    def __init__(
        self,
        config: FocusConfig,
        stream: str,
        fps: float = 30.0,
        ledger: Optional[GPULedger] = None,
        max_live_clusters: int = 512,
        index_mode: str = "lazy",
        dispatcher: Optional[IngestDispatcher] = None,
    ):
        if index_mode not in ("lazy", "materialized"):
            raise ValueError("index_mode must be 'lazy' or 'materialized'")
        self.config = config
        self.stream = stream
        self.fps = float(fps)
        self.ledger = ledger or GPULedger()
        self.index_mode = index_mode
        self.dispatcher = dispatcher
        self._clusterer = IncrementalClusterer(
            threshold=config.cluster_threshold,
            dim=config.model.feature_dim,
            max_live_clusters=max_live_clusters,
        )
        self._extractor = config.model.feature_extractor()
        self._columns = _GrowingColumns()
        self._table = empty_observation_table(stream, fps)
        self._snapshot = self._clusterer.snapshot()
        self._watermark = 0.0
        self._last_time = float("-inf")
        self.cnn_inferences = 0
        self.ingest_gpu_seconds = 0.0
        self.chunks_pushed = 0
        if index_mode == "materialized":
            self._index: IndexReader = TopKIndex(
                stream=stream, model_name=config.model.name, k=config.k
            )
        else:
            self._index = LazyTopKIndex(
                self._table, config.model, config.k, self._snapshot
            )

    # -- current state -----------------------------------------------------
    @property
    def table(self) -> ObservationTable:
        """Every observation ingested so far, in stream order."""
        return self._table

    @property
    def index(self) -> IndexReader:
        """The live index; the same object across pushes (updated in place)."""
        return self._index

    @property
    def clusters(self) -> ClusterSummary:
        return self._snapshot

    @property
    def watermark_s(self) -> float:
        """The stream time up to which queries are answerable."""
        return self._watermark

    @property
    def num_rows(self) -> int:
        return len(self._table)

    @property
    def result(self) -> IngestResult:
        """The current watermark's state as a one-shot-compatible result."""
        return IngestResult(
            table=self._table,
            config=self.config,
            clusters=self._snapshot,
            index=self._index,
            suppressed=self._columns.suppressed(),
            cnn_inferences=self.cnn_inferences,
            ingest_gpu_seconds=self.ingest_gpu_seconds,
        )

    # -- ingest ------------------------------------------------------------
    def _validate_chunk(self, chunk: ObservationTable) -> None:
        if chunk.stream != self.stream:
            raise ValueError(
                "chunk belongs to stream %r, ingestor is %r"
                % (chunk.stream, self.stream)
            )
        if float(chunk.fps) != self.fps:
            raise ValueError(
                "chunk fps %.3f differs from the stream's %.3f"
                % (chunk.fps, self.fps)
            )
        if len(chunk) and float(chunk.time_s.min()) < self._last_time:
            raise ValueError(
                "chunks must arrive in stream order: chunk starts at "
                "%.3fs but %.3fs was already ingested"
                % (float(chunk.time_s.min()), self._last_time)
            )

    def push(
        self, chunk: ObservationTable, watermark_s: Optional[float] = None
    ) -> ChunkReport:
        """Ingest one chunk of observations; the index is queryable after.

        Args:
            chunk: observations in stream order, starting no earlier
                than the last pushed observation.
            watermark_s: stream time the chunk covers up to; defaults to
                the chunk's last observation time, and can only extend
                past it (an observation-free interval advances the
                watermark explicitly; ingested video is never unseen).
        """
        self._validate_chunk(chunk)
        config = self.config
        offset = len(self._table)

        # IT1 + pixel differencing (per-row deterministic, so chunking
        # cannot change which observations are suppressed)
        if config.pixel_diff:
            suppressed = simulate_pixel_diff(chunk)
        else:
            suppressed = np.zeros(len(chunk), dtype=bool)

        # IT2: feature extraction + incremental clustering; the
        # clusterer keeps its centroids and track shortcuts across
        # calls, and suppressed rows skip feature synthesis entirely
        assignments = extract_and_cluster_chunk(
            self._clusterer, self._extractor, chunk, suppressed
        )
        previous = self._snapshot
        snapshot = self._clusterer.snapshot()

        # accumulate the table (stream order is preserved, so row ids,
        # cluster ids, and index member rows match a one-shot ingest;
        # only the chunk's rows are copied -- no history rebuild)
        self._columns.append(chunk, suppressed)
        if len(chunk):
            self._last_time = max(self._last_time, float(chunk.time_s.max()))
        # the watermark never trails an ingested observation: an explicit
        # watermark_s can only extend past the chunk's last observation
        # (an observation-free tail), not declare ingested video unseen
        watermark = self._watermark
        if len(chunk):
            watermark = max(watermark, float(chunk.time_s.max()))
        if watermark_s is not None:
            watermark = max(watermark, float(watermark_s))
        self._table = self._columns.table(self.stream, self.fps, watermark)
        self._watermark = watermark

        # IT3-IT4: apply the cluster delta to the live index
        if self.index_mode == "materialized":
            new_ids, grown_ids = self._apply_delta(
                previous, snapshot, assignments, offset, chunk
            )
        else:
            new_ids, grown_ids = self._index.refresh(self._table, snapshot)
        self._snapshot = snapshot

        # cost accounting + (optional) contention with query traffic on
        # the shared GPU cluster
        inferences = int(len(chunk) - suppressed.sum())
        gpu_seconds = 0.0
        if len(chunk):
            entry = self.ledger.record(
                CostCategory.INGEST_CNN,
                config.model,
                inferences,
                note="stream=%s chunk=%d" % (self.stream, self.chunks_pushed),
            )
            gpu_seconds = entry.gpu_seconds
        dispatch = None
        if self.dispatcher is not None and inferences:
            dispatch = self.dispatcher.dispatch(
                config.model, inferences, stream=self.stream
            )
        self.cnn_inferences += inferences
        self.ingest_gpu_seconds += gpu_seconds
        self.chunks_pushed += 1

        return ChunkReport(
            chunk_rows=len(chunk),
            total_rows=len(self._table),
            watermark_s=self._watermark,
            suppressed=int(suppressed.sum()),
            cnn_inferences=inferences,
            gpu_seconds=gpu_seconds,
            new_clusters=new_ids,
            grown_clusters=grown_ids,
            dispatch=dispatch,
        )

    def _apply_delta(
        self,
        previous: ClusterSummary,
        snapshot: ClusterSummary,
        assignments: np.ndarray,
        offset: int,
        chunk: ObservationTable,
    ) -> "tuple[List[int], List[int]]":
        """Extend/add materialized index entries for one chunk's rows."""
        index = self._index
        model = self.config.model
        old_n = previous.num_clusters
        new_ids: List[int] = []
        grown_ids: List[int] = []
        if not len(assignments):
            return new_ids, grown_ids
        # group the chunk's rows by cluster id (ascending, so new
        # clusters are added in id order exactly like TopKIndex.build)
        touched = int(assignments.min())
        groups = group_rows_by_cluster(
            assignments - touched, int(assignments.max()) - touched + 1
        )
        obs_seeds = chunk.observation_seeds()
        # one batched rank/slot draw for every cluster the chunk opened:
        # the per-cluster scalar path used to dominate live ingest
        fresh = [
            cid_offset + touched
            for cid_offset, group in enumerate(groups)
            if len(group) and cid_offset + touched >= old_n
        ]
        seed_locals = np.asarray(
            [int(snapshot.seed_rows[cid]) - offset for cid in fresh],
            dtype=np.int64,
        )
        top_ks = {}
        if fresh:
            lists = model.topk_lists(
                obs_seeds[seed_locals],
                chunk.class_id[seed_locals],
                chunk.difficulty[seed_locals],
                self.config.k,
            )
            top_ks = dict(zip(fresh, lists))
        for cid_offset, group in enumerate(groups):
            if not len(group):
                continue
            cid = cid_offset + touched
            global_rows = group + offset
            frames = chunk.frame_idx[group]
            times = chunk.time_s[group]
            if cid < old_n:
                index.extend_cluster(cid, global_rows, frames, times)
                grown_ids.append(cid)
            else:
                seed_local = int(snapshot.seed_rows[cid]) - offset
                entry = ClusterEntry(
                    cluster_id=cid,
                    centroid_row=int(snapshot.seed_rows[cid]),
                    centroid_class=int(chunk.class_id[seed_local]),
                    top_k=tuple(top_ks[cid]),
                    size=int(len(group)),
                    first_time_s=float(times.min()),
                    last_time_s=float(times.max()),
                )
                index.add_cluster(entry, global_rows, frames)
                new_ids.append(cid)
        return new_ids, grown_ids

    # -- persistence -------------------------------------------------------
    def checkpoint(self, store) -> None:
        """Write the cluster delta since the last checkpoint to ``store``.

        Incremental: unchanged cluster documents are never rewritten, so
        a long-lived session checkpoints in time proportional to what
        actually changed since the last cursor position.
        """
        self._index.to_docstore(store, incremental=True)
