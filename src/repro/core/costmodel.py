"""GPU-time accounting.

The paper's two metrics -- ingest cost and query latency -- are defined
purely as GPU time spent classifying images, excluding CPU work such as
video decoding, motion detection, clustering and index I/O (Section
6.1, Metrics).  ``GPULedger`` records every simulated inference batch
under a category so experiments can report exactly those two numbers
and their baseline ratios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cnn.costs import GPUSpec, DEFAULT_GPU
from repro.cnn.model import ClassifierModel
from repro.obs.metrics import register_counters


class CostCategory(enum.Enum):
    """Where GPU time is spent."""

    INGEST_CNN = "ingest-cnn"          # cheap CNN on detected objects
    QUERY_GT = "query-gt"              # GT-CNN on cluster centroids at query time
    RETRAIN_GT = "retrain-gt"          # GT-CNN labelling samples for specialization
    BASELINE_INGEST = "baseline-ingest"  # Ingest-all's GT-CNN work
    BASELINE_QUERY = "baseline-query"    # Query-all's GT-CNN work


#: every ledger category is a summable fleet counter (they ride
#: ``cost_summary`` across the wire and the router sums them per key)
LEDGER_COUNTER_KEYS = register_counters(
    "sum", *(category.value for category in CostCategory)
)


@dataclass(frozen=True)
class LedgerEntry:
    category: CostCategory
    model_name: str
    inferences: int
    gpu_seconds: float
    note: str = ""


class GPULedger:
    """Accumulates GPU-seconds per cost category."""

    def __init__(self, gpu: GPUSpec = DEFAULT_GPU):
        self.gpu = gpu
        self._entries: List[LedgerEntry] = []

    def record(
        self,
        category: CostCategory,
        model: ClassifierModel,
        inferences: int,
        note: str = "",
    ) -> LedgerEntry:
        """Record ``inferences`` classifications with ``model``."""
        if inferences < 0:
            raise ValueError("inferences must be non-negative")
        entry = LedgerEntry(
            category=category,
            model_name=model.name,
            inferences=inferences,
            gpu_seconds=model.cost_seconds(inferences, self.gpu),
            note=note,
        )
        self._entries.append(entry)
        return entry

    def refund(
        self,
        category: CostCategory,
        model: ClassifierModel,
        inferences: int,
        note: str = "",
    ) -> LedgerEntry:
        """Deduct ``inferences`` previously-recorded classifications.

        Appends a negative entry so ``seconds()``/``inferences()``/
        ``summary()`` totals genuinely shrink; the category's running
        total may not go below zero.
        """
        if inferences < 0:
            raise ValueError("inferences must be non-negative")
        if inferences > self.inferences(category):
            raise ValueError(
                "refund of %d inferences exceeds the %s total"
                % (inferences, category.value)
            )
        entry = LedgerEntry(
            category=category,
            model_name=model.name,
            inferences=-inferences,
            gpu_seconds=-model.cost_seconds(inferences, self.gpu),
            note=note,
        )
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> List[LedgerEntry]:
        return list(self._entries)

    def seconds(self, category: Optional[CostCategory] = None) -> float:
        """Total GPU-seconds, optionally restricted to one category."""
        return sum(
            e.gpu_seconds for e in self._entries if category is None or e.category == category
        )

    def inferences(self, category: Optional[CostCategory] = None) -> int:
        return sum(
            e.inferences for e in self._entries if category is None or e.category == category
        )

    @property
    def ingest_seconds(self) -> float:
        return self.seconds(CostCategory.INGEST_CNN)

    @property
    def query_seconds(self) -> float:
        return self.seconds(CostCategory.QUERY_GT)

    def merge(self, other: "GPULedger") -> None:
        """Fold another ledger's entries into this one."""
        self._entries.extend(other._entries)

    def summary(self) -> Dict[str, float]:
        """GPU-seconds per category name."""
        out: Dict[str, float] = {}
        for entry in self._entries:
            key = entry.category.value
            out[key] = out.get(key, 0.0) + entry.gpu_seconds
        return out

    def clear(self) -> None:
        self._entries.clear()
