"""FocusSystem: the end-to-end public facade.

Ties the substrates together the way a deployment would (Section 5):
point it at streams, let it tune parameters on a GT-labelled sample,
ingest the video into per-stream top-K indexes, then serve class
queries with GT-CNN verification -- while a GPU ledger accounts every
classification so costs and latencies can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.cnn.zoo import resnet152
from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.ingest import IngestPipeline, IngestResult
from repro.core.metrics import (
    SegmentMetrics,
    gt_segments,
    result_segments,
    segment_metrics,
)
from repro.core.query import QueryEngine, QueryResult
from repro.core.tuning import ParameterTuner, TuningResult
from repro.sched.cluster import GPUCluster, QueryCoordinator
from repro.storage.docstore import DocumentStore
from repro.video.classes import class_id as class_id_of, class_name
from repro.video.profiles import get_profile
from repro.video.synthesis import ObservationTable, generate_observations


@dataclass
class QueryAnswer:
    """A user-facing query answer with accuracy and latency attached."""

    stream: str
    class_id: int
    class_name: str
    frames: np.ndarray
    latency_seconds: float
    gt_inferences: int
    metrics: SegmentMetrics
    result: QueryResult

    @property
    def precision(self) -> float:
        return self.metrics.precision

    @property
    def recall(self) -> float:
        return self.metrics.recall


@dataclass
class StreamHandle:
    """One ingested stream: its table, tuning outcome, and index."""

    stream: str
    table: ObservationTable
    tuning: TuningResult
    config: FocusConfig
    ingest: IngestResult
    engine: QueryEngine

    @property
    def ingest_gpu_seconds(self) -> float:
        return self.ingest.ingest_gpu_seconds


class FocusSystem:
    """End-to-end Focus deployment over one or more video streams."""

    def __init__(
        self,
        gt_model: Optional[ClassifierModel] = None,
        target: AccuracyTarget = AccuracyTarget(),
        policy: Policy = Policy.BALANCE,
        tuner_settings: TunerSettings = TunerSettings(),
        num_query_gpus: int = 10,
    ):
        self.gt_model = gt_model or resnet152()
        self.target = target
        self.policy = policy
        self.tuner_settings = tuner_settings
        self.ledger = GPULedger()
        self.cluster = GPUCluster(num_query_gpus)
        self.coordinator = QueryCoordinator(self.cluster)
        self._streams: Dict[str, StreamHandle] = {}

    # -- ingest ------------------------------------------------------------
    def ingest_stream(
        self,
        stream: Union[str, ObservationTable],
        duration_s: float = 600.0,
        fps: float = 30.0,
        config: Optional[FocusConfig] = None,
    ) -> StreamHandle:
        """Tune (unless ``config`` is given) and ingest one stream.

        Args:
            stream: a stream name from Table 1, or a pre-generated
                observation table.
            duration_s / fps: synthesis window when a name is given.
            config: skip tuning and use this configuration.
        """
        if isinstance(stream, ObservationTable):
            table = stream
        else:
            get_profile(stream)  # validate the name early
            table = generate_observations(stream, duration_s, fps)
        name = table.stream

        sample = self._sample_slice(table)
        # GT-CNN labels the sample for tuning/specialization
        # (Section 4.3, Model Retraining); periodic and amortized.
        self.ledger.record(
            CostCategory.RETRAIN_GT, self.gt_model, len(sample), note="tuning sample"
        )
        tuner = ParameterTuner(self.gt_model, self.target, self.tuner_settings)
        tuning = tuner.tune(sample, name)
        if config is None:
            config = tuning.choose(self.policy).config

        pipeline = IngestPipeline(config, ledger=self.ledger)
        ingest = pipeline.run(table)
        engine = QueryEngine(
            ingest.index, table, config.model, self.gt_model, ledger=self.ledger
        )
        handle = StreamHandle(
            stream=name,
            table=table,
            tuning=tuning,
            config=config,
            ingest=ingest,
            engine=engine,
        )
        self._streams[name] = handle
        return handle

    def _sample_slice(self, table: ObservationTable) -> ObservationTable:
        settings = self.tuner_settings
        window = min(
            settings.max_sample_seconds, table.duration_s * settings.sample_fraction
        )
        window = max(window, min(table.duration_s, 30.0))
        return table.scattered_sample(window)

    # -- query -------------------------------------------------------------
    def streams(self) -> List[str]:
        return sorted(self._streams)

    def handle(self, stream: str) -> StreamHandle:
        try:
            return self._streams[stream]
        except KeyError:
            raise KeyError("stream %r has not been ingested" % stream)

    def query(
        self,
        stream: str,
        clazz: Union[int, str],
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryAnswer:
        """Query one stream for all frames containing a class.

        ``clazz`` may be a class id or a class name (e.g. ``"car"``).
        """
        handle = self.handle(stream)
        cid = class_id_of(clazz) if isinstance(clazz, str) else int(clazz)
        result = handle.engine.query(cid, kx=kx, time_range=time_range)
        if time_range is None:
            metrics = segment_metrics(handle.table, cid, result.returned_rows)
        else:
            # restrict ground truth and results to the queried interval
            start, end = time_range
            truth = {
                s for s in gt_segments(handle.table, cid) if start <= s < end
            }
            reported = result_segments(handle.table, result.returned_rows)
            metrics = SegmentMetrics(
                class_id=cid,
                true_segments=len(truth),
                returned_segments=len(reported),
                correct_segments=len(truth & reported),
            )
        latency = self.coordinator.latency(self.gt_model, result.gt_inferences)
        return QueryAnswer(
            stream=stream,
            class_id=cid,
            class_name=class_name(cid) if cid >= 0 else "OTHER",
            frames=result.returned_frames,
            latency_seconds=latency,
            gt_inferences=result.gt_inferences,
            metrics=metrics,
            result=result,
        )

    # -- reporting -----------------------------------------------------------
    def cost_summary(self) -> Dict[str, float]:
        return self.ledger.summary()

    def save_indexes(self, store: DocumentStore) -> None:
        """Persist all stream indexes into a document store."""
        for handle in self._streams.values():
            handle.ingest.index.to_docstore(store)
