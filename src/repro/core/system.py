"""FocusSystem: the end-to-end public facade.

Ties the substrates together the way a deployment would (Section 5):
point it at streams, let it tune parameters on a GT-labelled sample,
ingest the video into per-stream top-K indexes, then serve class
queries -- single-stream or fanned out across every camera through the
``repro.serve`` query service -- with GT-CNN verification, while a GPU
ledger accounts every classification so costs and latencies can be
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.cnn.specialize import OTHER_CLASS, SpecializedClassifier
from repro.cnn.zoo import resnet152
from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.index import TopKIndex, stored_streams
from repro.core.ingest import IngestPipeline, IngestResult
from repro.core.metrics import SegmentMetrics, segment_metrics_in_range
from repro.core.query import QueryEngine, QueryResult
from repro.core.streaming import ChunkReport, StreamIngestor
from repro.core.tuning import ParameterTuner, TuningResult
from repro.obs.metrics import MetricsRegistry
from repro.sched.cluster import GPUCluster, IngestDispatcher, QueryCoordinator
from repro.serve.planner import QueryRequest
from repro.serve.service import MultiStreamAnswer, QueryService
from repro.storage.docstore import DocumentStore
from repro.storage.journal import IngestJournal, journaled_streams, reset_stream
from repro.video.classes import class_id as class_id_of, class_name
from repro.video.profiles import get_profile
from repro.video.synthesis import ObservationTable, generate_observations


@dataclass
class QueryAnswer:
    """A user-facing query answer with accuracy and latency attached."""

    stream: str
    class_id: int
    class_name: str
    frames: np.ndarray
    latency_seconds: float
    gt_inferences: int
    metrics: SegmentMetrics
    result: QueryResult

    @property
    def precision(self) -> float:
        return self.metrics.precision

    @property
    def recall(self) -> float:
        return self.metrics.recall


@dataclass
class StreamHandle:
    """One queryable stream: its table, tuning outcome, and index.

    ``tuning``/``config``/``ingest`` are None for streams restored from
    a persisted index (``FocusSystem.load_indexes``): such streams are
    fully queryable but carry no ingest-time state.

    A *live* handle (``FocusSystem.open_stream``) additionally carries
    the :class:`StreamIngestor` accepting chunks; its ``table`` and
    ``ingest`` snapshot advance with every ``FocusSystem.append``.
    """

    stream: str
    table: ObservationTable
    tuning: Optional[TuningResult]
    config: Optional[FocusConfig]
    ingest: Optional[IngestResult]
    engine: QueryEngine
    #: head classes of a restored specialized index (None for generic);
    #: kept so re-saving a restored handle preserves the token mapping
    head_classes: Optional[List[int]] = None
    #: the live ingest session (None for one-shot or restored streams)
    ingestor: Optional[StreamIngestor] = None

    @property
    def index(self):
        return self.engine.index

    @property
    def restored(self) -> bool:
        return self.ingest is None

    @property
    def live(self) -> bool:
        return self.ingestor is not None

    @property
    def watermark_s(self) -> float:
        """Stream time queries are currently answerable up to."""
        if self.ingestor is not None:
            return self.ingestor.watermark_s
        return self.table.duration_s

    @property
    def ingest_gpu_seconds(self) -> float:
        return self.ingest.ingest_gpu_seconds if self.ingest else 0.0


def _table_checksum(table: ObservationTable) -> int:
    """Cheap content fingerprint of an observation table.

    Persisted with an index so ``load_indexes`` can detect that the
    table it reconstructed is not the one the index was built over
    (index member rows would point at the wrong observations).
    """
    seeds = table.observation_seeds()
    if not len(seeds):
        return 0
    # mix in position so permutations don't collide
    mixed = seeds ^ np.arange(len(seeds), dtype=np.uint64)
    return int(np.bitwise_xor.reduce(mixed))


class FocusSystem:
    """End-to-end Focus deployment over one or more video streams."""

    def __init__(
        self,
        gt_model: Optional[ClassifierModel] = None,
        target: AccuracyTarget = AccuracyTarget(),
        policy: Policy = Policy.BALANCE,
        tuner_settings: TunerSettings = TunerSettings(),
        num_query_gpus: int = 10,
        verification_cache_size: int = 4096,
    ):
        self.gt_model = gt_model or resnet152()
        self.target = target
        self.policy = policy
        self.tuner_settings = tuner_settings
        self.ledger = GPULedger()
        self.cluster = GPUCluster(num_query_gpus)
        self.coordinator = QueryCoordinator(self.cluster)
        self._streams: Dict[str, StreamHandle] = {}
        #: the system-wide metrics registry: scheduler dispatch, journal
        #: append, and checkpoint-commit latency histograms all record
        #: here (``repro.obs.metrics``; surfaced per shard through
        #: ``ShardNode.metrics_snapshot`` and the router's fleet merge)
        self.metrics = MetricsRegistry()
        self.service = QueryService(
            engines=self._live_engines,
            gt_model=self.gt_model,
            coordinator=self.coordinator,
            ledger=self.ledger,
            cache_capacity=verification_cache_size,
            metrics=self.metrics,
        )

    def _live_engines(self) -> Mapping[str, QueryEngine]:
        return {name: handle.engine for name, handle in self._streams.items()}

    # -- ingest ------------------------------------------------------------
    def ingest_stream(
        self,
        stream: Union[str, ObservationTable],
        duration_s: float = 600.0,
        fps: float = 30.0,
        config: Optional[FocusConfig] = None,
    ) -> StreamHandle:
        """Tune (unless ``config`` is given) and ingest one stream.

        Args:
            stream: a stream name from Table 1, or a pre-generated
                observation table.
            duration_s / fps: synthesis window when a name is given.
            config: skip tuning and use this configuration.
        """
        if isinstance(stream, ObservationTable):
            table = stream
        else:
            get_profile(stream)  # validate the name early
            table = generate_observations(stream, duration_s, fps)
        name = table.stream

        sample = self._sample_slice(table)
        # GT-CNN labels the sample for tuning/specialization
        # (Section 4.3, Model Retraining); periodic and amortized.
        self.ledger.record(
            CostCategory.RETRAIN_GT, self.gt_model, len(sample), note="tuning sample"
        )
        tuner = ParameterTuner(self.gt_model, self.target, self.tuner_settings)
        tuning = tuner.tune(sample, name)
        if config is None:
            config = tuning.choose(self.policy).config

        pipeline = IngestPipeline(config, ledger=self.ledger)
        ingest = pipeline.run(table)
        engine = QueryEngine(
            ingest.index, table, config.model, self.gt_model, ledger=self.ledger
        )
        handle = StreamHandle(
            stream=name,
            table=table,
            tuning=tuning,
            config=config,
            ingest=ingest,
            engine=engine,
        )
        self._streams[name] = handle
        # a re-ingested stream gets fresh cluster ids; stale verdicts
        # must not serve its queries
        self.service.cache.invalidate_stream(name)
        return handle

    # -- live ingest ---------------------------------------------------------
    def open_stream(
        self,
        stream: str,
        fps: float = 30.0,
        config: Optional[FocusConfig] = None,
        tune_on: Optional[ObservationTable] = None,
        index_mode: str = "lazy",
        max_live_clusters: int = 512,
        wal_store: Optional[DocumentStore] = None,
        wal_reset: bool = False,
    ) -> StreamHandle:
        """Open a continuous ingest session; queries work at any watermark.

        The live counterpart of :meth:`ingest_stream`: no observations
        are consumed yet -- feed chunks with :meth:`append` as the
        camera produces them, and run :meth:`query`/:meth:`query_all`
        at any point in between.

        Args:
            stream: the stream's name (chunks must carry the same name).
            fps: the feed's frame rate (chunks must match).
            config: ingest configuration; when None, ``tune_on`` must
                provide a GT-labelled warmup window to tune on (a live
                camera has no full table to sample, Section 4.3).
            index_mode: "lazy" (default) or "materialized", as in
                :class:`~repro.core.ingest.IngestPipeline`.
            wal_store: a document store to write-ahead journal into.
                Every appended chunk is journaled before it is applied,
                :meth:`checkpoint` commits atomic epoch-tagged
                snapshots, and :meth:`recover` resumes the session
                after a crash with state bit-identical to uninterrupted
                ingest (``docs/DURABILITY.md``).
            wal_reset: wipe the stream's previous durable state in
                ``wal_store`` first (a fresh session is a new lineage;
                without this flag, leftover state raises instead of
                being silently mixed).
        """
        if config is None:
            if tune_on is None:
                raise ValueError(
                    "open_stream needs config= or a tune_on= warmup window "
                    "(a live stream has no archive to sample)"
                )
            self.ledger.record(
                CostCategory.RETRAIN_GT,
                self.gt_model,
                len(tune_on),
                note="tuning sample",
            )
            tuner = ParameterTuner(self.gt_model, self.target, self.tuner_settings)
            tuning = tuner.tune(tune_on, stream)
            config = tuning.choose(self.policy).config
        else:
            tuning = None

        journal = None
        if wal_store is not None:
            if wal_reset:
                reset_stream(wal_store, stream)
            journal = IngestJournal(wal_store, stream, metrics=self.metrics)
        ingestor = StreamIngestor(
            config,
            stream,
            fps=fps,
            ledger=self.ledger,
            max_live_clusters=max_live_clusters,
            index_mode=index_mode,
            dispatcher=IngestDispatcher(self.cluster),
            journal=journal,
        )
        engine = QueryEngine(
            ingestor.index, ingestor.table, config.model, self.gt_model,
            ledger=self.ledger,
        )
        handle = StreamHandle(
            stream=stream,
            table=ingestor.table,
            tuning=tuning,
            config=config,
            ingest=ingestor.result,
            engine=engine,
            ingestor=ingestor,
        )
        self._streams[stream] = handle
        # a fresh session restarts cluster ids at 0; verdicts of any
        # earlier session under this name must not serve its queries
        self.service.cache.invalidate_stream(stream)
        return handle

    def append(
        self,
        stream: str,
        chunk: ObservationTable,
        watermark_s: Optional[float] = None,
    ) -> ChunkReport:
        """Push one chunk into a live session opened by :meth:`open_stream`.

        After this returns, queries against ``stream`` (including
        ``query_all`` fan-outs) answer at the new watermark.  Cached GT
        verdicts survive: growing a cluster never moves its centroid,
        so only clusters whose id is new this chunk are invalidated.
        """
        handle = self.handle(stream)
        if handle.ingestor is None:
            raise ValueError(
                "stream %r is not a live session; open it with open_stream"
                % stream
            )
        report = handle.ingestor.push(chunk, watermark_s=watermark_s)
        handle.table = handle.ingestor.table
        handle.engine.table = handle.table
        handle.ingest = handle.ingestor.result
        if report.new_clusters:
            self.service.cache.invalidate_clusters(stream, report.new_clusters)
        return report

    def recover(
        self,
        store: DocumentStore,
        streams: Optional[Sequence[str]] = None,
        configs: Optional[Mapping[str, FocusConfig]] = None,
    ) -> List[str]:
        """Resume journaled live sessions after a crash.

        For every stream with durable state in ``store`` (or the
        requested subset), the last committed checkpoint is restored and
        the journal's suffix replayed
        (:meth:`StreamIngestor.recover`), yielding live, appendable,
        queryable sessions whose state is bit-identical to uninterrupted
        ingest.  Configurations are rebuilt from the journaled session
        descriptor; streams ingested with a specialized (non-zoo) model
        need their config supplied via ``configs``.

        Returns the recovered stream names.
        """
        available = journaled_streams(store)
        wanted = available if streams is None else list(streams)
        missing = [s for s in wanted if s not in available]
        if missing:
            raise KeyError(
                "no durable stream state for: %s" % ", ".join(sorted(missing))
            )
        recovered: List[str] = []
        for name in wanted:
            config = configs.get(name) if configs else None
            ingestor = StreamIngestor.recover(
                store,
                name,
                config=config,
                ledger=self.ledger,
                dispatcher=IngestDispatcher(self.cluster),
            )
            engine = QueryEngine(
                ingestor.index, ingestor.table, ingestor.config.model,
                self.gt_model, ledger=self.ledger,
            )
            self._streams[name] = StreamHandle(
                stream=name,
                table=ingestor.table,
                tuning=None,
                config=ingestor.config,
                ingest=ingestor.result,
                engine=engine,
                ingestor=ingestor,
            )
            # cached verdicts may predate the crash; cluster ids are
            # stable across recovery, but a conservative flush keeps
            # recovery free of any cache-coherence proof burden
            self.service.cache.invalidate_stream(name)
            recovered.append(name)
        return recovered

    def _sample_slice(self, table: ObservationTable) -> ObservationTable:
        settings = self.tuner_settings
        window = min(
            settings.max_sample_seconds, table.duration_s * settings.sample_fraction
        )
        window = max(window, min(table.duration_s, 30.0))
        return table.scattered_sample(window)

    # -- query -------------------------------------------------------------
    def streams(self) -> List[str]:
        return sorted(self._streams)

    def handle(self, stream: str) -> StreamHandle:
        try:
            return self._streams[stream]
        except KeyError:
            raise KeyError("stream %r has not been ingested" % stream)

    def close_stream(self, stream: str) -> StreamHandle:
        """Detach a stream from this system and return its handle.

        The stream stops being served (queries and ``query_all``
        fan-outs no longer see it) and its cached GT verdicts are
        dropped.  Nothing durable is touched: the stream's journal,
        checkpoints, and index stay in whatever store holds them.  Live
        stream migration (``repro.fabric``) uses this to release the
        source shard's in-memory session after its state has been
        copied and fenced.
        """
        handle = self.handle(stream)
        del self._streams[stream]
        self.service.cache.invalidate_stream(stream)
        return handle

    def query(
        self,
        stream: str,
        clazz: Union[int, str],
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryAnswer:
        """Query one stream for all frames containing a class.

        ``clazz`` may be a class id or a class name (e.g. ``"car"``).
        """
        handle = self.handle(stream)
        cid = class_id_of(clazz) if isinstance(clazz, str) else int(clazz)
        result = handle.engine.query(cid, kx=kx, time_range=time_range)
        metrics = segment_metrics_in_range(
            handle.table, cid, result.returned_rows, time_range=time_range
        )
        latency = self.coordinator.latency(self.gt_model, result.gt_inferences)
        return QueryAnswer(
            stream=stream,
            class_id=cid,
            class_name=class_name(cid) if cid >= 0 else "OTHER",
            frames=result.returned_frames,
            latency_seconds=latency,
            gt_inferences=result.gt_inferences,
            metrics=metrics,
            result=result,
        )

    # -- cross-stream serving ----------------------------------------------
    def query_all(
        self,
        clazz: Union[int, str],
        streams: Optional[Sequence[str]] = None,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> MultiStreamAnswer:
        """Query a class across many streams in one verification round.

        Candidate centroids from every shard are deduplicated, checked
        against the verification cache, and batch-dispatched onto the
        GPU cluster's work queues; repeated or overlapping queries skip
        already-verified centroids entirely.
        """
        return self.service.query_all(
            clazz, streams=streams, kx=kx, time_range=time_range
        )

    def query_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[MultiStreamAnswer]:
        """Serve concurrent queries, coalescing their GT-CNN work."""
        return self.service.query_batch(requests)

    # -- reporting -----------------------------------------------------------
    def cost_summary(self) -> Dict[str, float]:
        """GPU-seconds per ledger category plus serving counters."""
        out = self.ledger.summary()
        out.update(self.service.counters())
        return out

    # -- persistence ---------------------------------------------------------
    def _stream_meta_doc(self, handle: StreamHandle) -> Dict:
        """The stream metadata document ``load_indexes`` cold-starts from."""
        model = handle.config.model if handle.config else None
        if isinstance(model, SpecializedClassifier):
            head = [int(c) for c in model.head_classes]
        else:
            head = handle.head_classes
        return {
            "stream": handle.stream,
            "duration_s": float(handle.table.duration_s),
            "fps": float(handle.table.fps),
            "head_classes": head,
            "num_rows": len(handle.table),
            "checksum": _table_checksum(handle.table),
            "live": handle.live,
            "watermark_s": float(handle.watermark_s),
        }

    def _write_stream_meta(self, store: DocumentStore, handle: StreamHandle) -> None:
        """Upsert the stream metadata ``load_indexes`` cold-starts from."""
        meta = store.collection("stream-meta")
        meta.delete_many({"stream": handle.stream})
        meta.insert_one(self._stream_meta_doc(handle))

    def save_indexes(self, store: DocumentStore) -> None:
        """Persist every stream's index plus the stream metadata a
        service needs to cold-start (``load_indexes``)."""
        for handle in self._streams.values():
            handle.index.to_docstore(store)
            self._write_stream_meta(store, handle)

    def checkpoint(
        self,
        store: DocumentStore,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List[str]:
        """Incrementally persist streams: append cluster deltas only.

        The live-session counterpart of :meth:`save_indexes`, routed
        through :meth:`QueryService.checkpoint_streams` so every stream
        commits under its *own* epoch: a crash while checkpointing one
        stream can never corrupt a sibling's committed snapshot.

        For plain sessions each stream's index writes just the clusters
        added or grown since its last checkpoint (unchanged cluster
        documents are not rewritten) plus the stream metadata cursor;
        :meth:`load_indexes` later restores query-only access, and
        ingest cannot be resumed (clusterer state is not persisted).
        Sessions opened with ``wal_store=store`` instead commit the full
        atomic durable checkpoint -- index delta, resumable ingest
        state, stream metadata, and the epoch marker land as one staged
        swap -- which both :meth:`load_indexes` (query-only) and
        :meth:`recover` (full resumption) can restore from.

        ``strict=False`` continues past a failing stream (chaos-drill
        mode) -- only the names that committed are returned.
        """
        outcomes = self.checkpoint_outcomes(store, streams=streams, strict=strict)
        return [o.stream for o in outcomes if o.committed]

    def checkpoint_outcomes(
        self,
        store: DocumentStore,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List["StreamCheckpoint"]:
        """:meth:`checkpoint` returning the full per-stream outcomes.

        Same protocol, but the caller gets every stream's
        :class:`~repro.serve.service.StreamCheckpoint` (committed epoch,
        durability, non-strict errors) instead of just the committed
        names -- what a multi-shard fabric needs to aggregate rounds.
        Unknown streams are rejected up front with one ``KeyError``
        naming *all* of them, before any stream checkpoints.
        """
        wanted = self.streams() if streams is None else list(streams)
        missing = sorted({name for name in wanted if name not in self._streams})
        if missing:
            raise KeyError("streams not ingested: %s" % ", ".join(missing))
        handles = {name: self.handle(name) for name in wanted}
        meta_docs = {
            name: self._stream_meta_doc(handle) for name, handle in handles.items()
        }
        return self.service.checkpoint_streams(
            store, handles, streams=wanted, meta_docs=meta_docs, strict=strict
        )

    def load_indexes(
        self,
        store: DocumentStore,
        streams: Optional[Sequence[str]] = None,
        tables: Optional[Mapping[str, ObservationTable]] = None,
    ) -> List[str]:
        """Cold-start: restore stream handles from persisted indexes.

        The counterpart of :meth:`save_indexes`: no tuning, no ingest
        CNN work -- the top-K index is read back from the store and a
        query engine is rebuilt over it, so queries (including
        ``query_all``) run immediately at pure query-time cost.

        The observation table (standing in for the archived video) is
        taken from ``tables`` when provided, otherwise regenerated
        deterministically from the stream's profile and the recorded
        synthesis window; a persisted checksum guards against restoring
        an index over the wrong table.

        Works for full :meth:`save_indexes` snapshots and for
        mid-ingest :meth:`checkpoint` cursors alike -- a live session's
        checkpoint restores *query-only* access to everything ingested
        up to the recorded watermark (clusterer state is not persisted,
        so continuing ingest requires a fresh :meth:`open_stream`
        session).  For a live checkpoint, pass the session's
        accumulated table via ``tables`` (a truncated window
        regenerated from the profile would cut tracks that crossed the
        watermark differently than the live feed did; the checksum
        guard catches the mismatch).

        Note: persisted indexes are materialized, so a restored engine
        may verify slightly *more* candidates than the live (lazy)
        index it was saved from -- the two index variants sample
        spurious top-K membership differently.  Returned frames are
        unaffected (GT verification rejects the extra candidates).

        Returns the names of the restored streams.
        """
        available = stored_streams(store)
        wanted = available if streams is None else list(streams)
        missing = [s for s in wanted if s not in available]
        if missing:
            raise KeyError("no persisted index for: %s" % ", ".join(sorted(missing)))

        meta = store.collection("stream-meta")
        restored: List[str] = []
        for name in wanted:
            index = TopKIndex.from_docstore(store, name)
            doc = meta.find_one({"stream": name})
            if tables is not None and name in tables:
                table = tables[name]
            elif doc is not None:
                table = generate_observations(name, doc["duration_s"], doc["fps"])
            else:
                raise KeyError(
                    "stream %r has an index but no stream-meta; pass its "
                    "table via tables=" % name
                )
            if doc is not None and "checksum" in doc:
                if (
                    len(table) != doc["num_rows"]
                    or _table_checksum(table) != doc["checksum"]
                ):
                    raise ValueError(
                        "stream %r: the reconstructed observation table does "
                        "not match the one this index was built over (e.g. a "
                        "non-default seed_salt or a transformed table); pass "
                        "the original table via tables=" % name
                    )
            head = set(doc["head_classes"]) if doc and doc["head_classes"] else None
            if head is None and doc is None and OTHER_CLASS in index.classes():
                # a specialized index without stream-meta: the head/OTHER
                # token mapping is unrecoverable, and an identity mapping
                # would silently answer tail-class queries with nothing
                raise ValueError(
                    "stream %r: index was built by a specialized model but "
                    "the store has no stream-meta to reconstruct its "
                    "head/OTHER token mapping; re-save with "
                    "FocusSystem.save_indexes" % name
                )
            if head is not None:
                token_fn = lambda cid, _head=head: (
                    cid if cid in _head else OTHER_CLASS
                )
            else:
                token_fn = lambda cid: cid
            engine = QueryEngine(
                index,
                table,
                ingest_model=None,
                gt_model=self.gt_model,
                ledger=self.ledger,
                query_token_fn=token_fn,
            )
            self._streams[name] = StreamHandle(
                stream=name,
                table=table,
                tuning=None,
                config=None,
                ingest=None,
                engine=engine,
                head_classes=sorted(head) if head is not None else None,
            )
            self.service.cache.invalidate_stream(name)
            restored.append(name)
        return restored
