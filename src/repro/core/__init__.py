"""The paper's primary contribution: the Focus ingest/query system.

Ingest-time (Figure 4, IT1-IT4): classify detected objects with a cheap
per-stream CNN, cluster them by feature vector, and index each cluster
under the top-K classes of its centroid.  Query-time (QT1-QT4): look up
the clusters matching the queried class, verify only their centroids
with the expensive GT-CNN, and return the frames of verified clusters.
A tuner picks the cheap CNN, K, Ls and the clustering threshold T per
stream to meet precision/recall targets while trading ingest cost
against query latency (Section 4.4).
"""

from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.clustering import ClusterSummary, IncrementalClusterer, cluster_table
from repro.core.index import IndexReader, LazyTopKIndex, TopKIndex
from repro.core.ingest import IngestPipeline, IngestResult, simulate_pixel_diff
from repro.core.query import QueryEngine, QueryResult
from repro.core.streaming import ChunkReport, StreamIngestor
from repro.core.metrics import (
    SegmentMetrics,
    gt_segments,
    result_segments,
    segment_metrics,
    evaluate_query,
)
from repro.core.tuning import CandidateConfig, ParameterTuner, TuningResult, pareto_front
from repro.core.system import FocusSystem, StreamHandle, QueryAnswer

__all__ = [
    "AccuracyTarget",
    "FocusConfig",
    "Policy",
    "TunerSettings",
    "CostCategory",
    "GPULedger",
    "ClusterSummary",
    "IncrementalClusterer",
    "cluster_table",
    "IndexReader",
    "TopKIndex",
    "LazyTopKIndex",
    "IngestPipeline",
    "IngestResult",
    "simulate_pixel_diff",
    "ChunkReport",
    "StreamIngestor",
    "QueryEngine",
    "QueryResult",
    "SegmentMetrics",
    "gt_segments",
    "result_segments",
    "segment_metrics",
    "evaluate_query",
    "CandidateConfig",
    "ParameterTuner",
    "TuningResult",
    "pareto_front",
    "FocusSystem",
    "StreamHandle",
    "QueryAnswer",
]
