"""Accuracy metrics on one-second segments.

The paper's ground-truth criterion (Section 6.1): a class is *present*
in a one-second segment if the GT-CNN reports it in at least 50% of the
frames of that segment -- smoothing out frame-level flicker.  Precision
and recall are computed between the query's returned segments and the
ground-truth segments under the same criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.video.synthesis import ObservationTable


@dataclass(frozen=True)
class SegmentMetrics:
    """Precision/recall over one-second segments for one class query."""

    class_id: int
    true_segments: int
    returned_segments: int
    correct_segments: int

    @property
    def precision(self) -> float:
        if self.returned_segments == 0:
            return 1.0
        return self.correct_segments / self.returned_segments

    @property
    def recall(self) -> float:
        if self.true_segments == 0:
            return 1.0
        return self.correct_segments / self.true_segments

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def _segments_from_rows(
    table: ObservationTable, rows: np.ndarray, threshold_frames: float
) -> Set[int]:
    """Seconds in which the rows cover >= threshold_frames distinct frames."""
    if len(rows) == 0:
        return set()
    seconds = np.floor(table.time_s[rows]).astype(np.int64)
    frames = table.frame_idx[rows]
    pairs = np.unique(np.stack([seconds, frames], axis=1), axis=0)
    secs, counts = np.unique(pairs[:, 0], return_counts=True)
    return {int(s) for s, c in zip(secs, counts) if c >= threshold_frames}


def gt_segments(table: ObservationTable, class_id: int) -> Set[int]:
    """Ground-truth segments for a class (the paper's 50%-of-frames rule)."""
    rows = np.nonzero(table.class_id == class_id)[0]
    return _segments_from_rows(table, rows, threshold_frames=0.5 * table.fps)


def result_segments(table: ObservationTable, returned_rows: np.ndarray) -> Set[int]:
    """Segments asserted by a query result, under the same 50% rule.

    ``returned_rows`` are the observation rows of all returned cluster
    members -- the objects Focus claims belong to the queried class.
    """
    return _segments_from_rows(
        table, np.asarray(returned_rows, dtype=np.int64), threshold_frames=0.5 * table.fps
    )


def segment_metrics(
    table: ObservationTable, class_id: int, returned_rows: np.ndarray
) -> SegmentMetrics:
    """Compare a query's returned rows against ground truth."""
    truth = gt_segments(table, class_id)
    reported = result_segments(table, returned_rows)
    return SegmentMetrics(
        class_id=class_id,
        true_segments=len(truth),
        returned_segments=len(reported),
        correct_segments=len(truth & reported),
    )


def segment_metrics_in_range(
    table: ObservationTable,
    class_id: int,
    returned_rows: np.ndarray,
    time_range: Optional[tuple] = None,
) -> SegmentMetrics:
    """Like :func:`segment_metrics`, with ground truth restricted to a
    [start, end) window when ``time_range`` is given.

    The returned rows are expected to already be window-filtered (the
    query engine drops out-of-range rows in QT4).
    """
    if time_range is None:
        return segment_metrics(table, class_id, returned_rows)
    start, end = time_range
    truth = {s for s in gt_segments(table, class_id) if start <= s < end}
    reported = result_segments(table, returned_rows)
    return SegmentMetrics(
        class_id=class_id,
        true_segments=len(truth),
        returned_segments=len(reported),
        correct_segments=len(truth & reported),
    )


def evaluate_query(
    table: ObservationTable, class_id: int, returned_rows: np.ndarray
) -> SegmentMetrics:
    """Alias of :func:`segment_metrics` with the query-centric name."""
    return segment_metrics(table, class_id, returned_rows)


@dataclass(frozen=True)
class StreamAccuracy:
    """Accuracy aggregated over a stream's dominant classes.

    The paper evaluates "all dominant object classes" per stream and
    averages (Section 6.1).  We weight by ground-truth segment counts so
    rare-but-dominant classes do not swamp the average.
    """

    per_class: Dict[int, SegmentMetrics]

    @property
    def precision(self) -> float:
        return self._weighted(lambda m: m.precision, lambda m: max(m.returned_segments, 1))

    @property
    def recall(self) -> float:
        return self._weighted(lambda m: m.recall, lambda m: max(m.true_segments, 1))

    def _weighted(self, value_fn, weight_fn) -> float:
        metrics = list(self.per_class.values())
        if not metrics:
            return 1.0
        weights = [weight_fn(m) for m in metrics]
        total = sum(weights)
        return sum(value_fn(m) * w for m, w in zip(metrics, weights)) / total

    @property
    def min_precision(self) -> float:
        if not self.per_class:
            return 1.0
        return min(m.precision for m in self.per_class.values())

    @property
    def min_recall(self) -> float:
        if not self.per_class:
            return 1.0
        return min(m.recall for m in self.per_class.values())
