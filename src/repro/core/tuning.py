"""Parameter selection: balancing accuracy, ingest cost, query latency.

Section 4.4 of the paper: Focus samples a representative slice of each
stream, labels it with the GT-CNN, and evaluates the expected precision
and recall of every parameter combination -- ingest model (generic
compressed or per-stream specialized), top-K width K, specialization
class count Ls, clustering threshold T.  A two-step search keeps the
sweep tractable: (1) the model, Ls and K are chosen against the recall
target alone; (2) T is swept and only values meeting the precision
target are kept.  Among viable configurations, the Pareto boundary over
(ingest cost, query latency) is computed, and a policy picks the
operating point: Opt-Ingest, Balance (minimum summed GPU cost), or
Opt-Query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.cnn.specialize import SpecializedClassifier, specialization_ladder
from repro.cnn.zoo import cheap_cnn, generic_candidates
from repro.core.clustering import ClusterSummary, cluster_table
from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.ingest import simulate_pixel_diff
from repro.core.metrics import StreamAccuracy, SegmentMetrics, gt_segments, result_segments
from repro.video.synthesis import ObservationTable


@dataclass(frozen=True)
class CandidateConfig:
    """One evaluated parameter combination."""

    config: FocusConfig
    precision: float
    recall: float
    ingest_cost_norm: float    # GPU cost vs Ingest-all on the same sample
    query_latency_norm: float  # GPU cost vs Query-all, avg over dominant classes
    viable: bool

    @property
    def total_norm(self) -> float:
        return self.ingest_cost_norm + self.query_latency_norm


@dataclass
class TuningResult:
    """Outcome of a tuning pass over one stream sample."""

    stream: str
    candidates: List[CandidateConfig]
    dominant_classes: List[int]
    target: AccuracyTarget

    @property
    def viable(self) -> List[CandidateConfig]:
        return [c for c in self.candidates if c.viable]

    @property
    def pareto(self) -> List[CandidateConfig]:
        return pareto_front(self.viable)

    def choose(self, policy: Policy) -> CandidateConfig:
        """Pick the operating point for a policy (Section 4.4)."""
        front = self.pareto
        if not front:
            raise RuntimeError(
                "no viable configuration met the accuracy target %r for stream %s"
                % (self.target, self.stream)
            )
        if policy is Policy.OPT_INGEST:
            return min(front, key=lambda c: (c.ingest_cost_norm, c.query_latency_norm))
        if policy is Policy.OPT_QUERY:
            return min(front, key=lambda c: (c.query_latency_norm, c.ingest_cost_norm))
        return min(front, key=lambda c: c.total_norm)


def pareto_front(candidates: Sequence[CandidateConfig]) -> List[CandidateConfig]:
    """Configurations not dominated in (ingest cost, query latency)."""
    front: List[CandidateConfig] = []
    for c in candidates:
        dominated = any(
            (o.ingest_cost_norm <= c.ingest_cost_norm
             and o.query_latency_norm <= c.query_latency_norm
             and (o.ingest_cost_norm < c.ingest_cost_norm
                  or o.query_latency_norm < c.query_latency_norm))
            for o in candidates
        )
        if not dominated:
            front.append(c)
    front.sort(key=lambda c: c.ingest_cost_norm)
    return front


class ParameterTuner:
    """Sweeps the Focus parameter space on a GT-labelled sample."""

    def __init__(
        self,
        gt_model: ClassifierModel,
        target: AccuracyTarget = AccuracyTarget(),
        settings: TunerSettings = TunerSettings(),
        sources: Optional[Sequence[ClassifierModel]] = None,
    ):
        if not gt_model.is_ground_truth:
            raise ValueError("gt_model must have dispersion 0")
        self.gt_model = gt_model
        self.target = target
        self.settings = settings
        self.sources = (
            list(sources) if sources is not None else [cheap_cnn(1), cheap_cnn(2)]
        )

    # -- candidate model space ------------------------------------------------
    def candidate_models(
        self, histogram: Dict[int, int], stream: str
    ) -> List[ClassifierModel]:
        """Generic compressed models plus the specialization ladder."""
        models: List[ClassifierModel] = []
        if self.settings.include_generic:
            models.extend(generic_candidates())
        models.extend(
            specialization_ladder(
                self.sources,
                histogram,
                stream,
                ls_values=self.settings.ls_values,
                cost_divisors=self.settings.specialization_divisors,
            )
        )
        return models

    # -- step 1: recall-only (model, K) filter ---------------------------------
    def _viable_ks(
        self,
        model: ClassifierModel,
        sample: ObservationTable,
        dominant: Sequence[int],
    ) -> List[int]:
        """Smallest K values whose raw index recall meets the target."""
        grid = (
            self.settings.k_grid_specialized
            if isinstance(model, SpecializedClassifier)
            else self.settings.k_grid_generic
        )
        ranks = model.ranks(sample)
        ks: List[int] = []
        for k in sorted(grid):
            recalls = []
            weights = []
            for cls in dominant:
                mask = sample.class_id == cls
                count = int(mask.sum())
                if count == 0:
                    continue
                recalls.append(float((ranks[mask] <= k).mean()))
                weights.append(count)
            if not recalls:
                continue
            weighted = float(np.average(recalls, weights=weights))
            # Clustering can only lose a little more recall; demand the
            # raw index clear the target before paying for a T sweep.
            if weighted >= self.target.recall:
                ks.append(k)
            if len(ks) >= self.settings.max_candidates_per_model:
                break
        return ks

    # -- step 2: T sweep with full-pipeline measurement -------------------------
    def _measure(
        self,
        model: ClassifierModel,
        k: int,
        threshold: float,
        sample: ObservationTable,
        clusters: ClusterSummary,
        suppressed: np.ndarray,
        dominant: Sequence[int],
    ) -> CandidateConfig:
        """Simulate the full pipeline for one (model, K, T) on the sample."""
        seed_mask = np.zeros(len(sample), dtype=bool)
        seed_mask[clusters.seed_rows] = True
        centroid_sub = sample.select(seed_mask)
        centroid_classes = sample.class_id[clusters.seed_rows]
        members = clusters.members_by_cluster()

        per_class: Dict[int, SegmentMetrics] = {}
        candidate_counts: List[int] = []
        for cls in dominant:
            token = (
                model.query_token(cls)
                if isinstance(model, SpecializedClassifier)
                else cls
            )
            member_mask = model.topk_membership(centroid_sub, token, k)
            candidate_counts.append(int(member_mask.sum()))
            matched = member_mask & (centroid_classes == cls)
            if matched.any():
                rows = np.concatenate([members[c] for c in np.nonzero(matched)[0]])
            else:
                rows = np.zeros(0, dtype=np.int64)
            truth = gt_segments(sample, cls)
            reported = result_segments(sample, rows)
            per_class[cls] = SegmentMetrics(
                class_id=cls,
                true_segments=len(truth),
                returned_segments=len(reported),
                correct_segments=len(truth & reported),
            )

        accuracy = StreamAccuracy(per_class=per_class)
        n_obs = len(sample)
        ingest_inferences = n_obs - int(suppressed.sum())
        ingest_norm = (ingest_inferences * model.gflops) / (n_obs * self.gt_model.gflops)
        query_norm = float(np.mean(candidate_counts)) / n_obs if n_obs else 0.0

        # Viability demands the sample estimate clear the target with a
        # safety margin, absorbing sample-vs-full-video drift.
        margin = self.settings.accuracy_margin
        viable = (
            accuracy.precision >= min(self.target.precision + margin, 1.0)
            and accuracy.recall >= min(self.target.recall + margin, 1.0)
        )
        config = FocusConfig(model=model, k=k, cluster_threshold=threshold)
        return CandidateConfig(
            config=config,
            precision=accuracy.precision,
            recall=accuracy.recall,
            ingest_cost_norm=ingest_norm,
            query_latency_norm=query_norm,
            viable=viable,
        )

    def tune(self, sample: ObservationTable, stream: Optional[str] = None) -> TuningResult:
        """Run the two-step sweep on a GT-labelled sample slice."""
        stream = stream or sample.stream
        if len(sample) == 0:
            raise ValueError("sample is empty; widen the sample window")
        histogram = sample.class_histogram()
        dominant = sample.dominant_classes(self.settings.dominant_coverage)

        candidates: List[CandidateConfig] = []
        suppressed = simulate_pixel_diff(sample)
        for model in self.candidate_models(histogram, stream):
            ks = self._viable_ks(model, sample, dominant)
            if not ks:
                continue
            for threshold in self.settings.t_grid:
                clusters = cluster_table(
                    sample, model, threshold=threshold, suppressed=suppressed
                )
                for k in ks:
                    candidates.append(
                        self._measure(
                            model, k, threshold, sample, clusters, suppressed, dominant
                        )
                    )
        return TuningResult(
            stream=stream,
            candidates=candidates,
            dominant_classes=list(dominant),
            target=self.target,
        )
