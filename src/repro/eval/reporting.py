"""Formatting experiment outputs as the paper's tables/series."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: List[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render dict rows as a fixed-width text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    widths = {
        c: max(len(c), max(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 100:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.1f" % value
        return "%.3f" % value
    return str(value)


def factor(value: float) -> str:
    """Render an improvement factor the way the paper does (e.g. 58x)."""
    return "%.0fx" % value


def paper_vs_measured(
    label: str, paper_value: str, measured_value: str
) -> str:
    return "%-46s paper: %-14s measured: %s" % (label, paper_value, measured_value)
