"""End-to-end experiment runner with in-process caching.

One ``run_stream`` call = one full experiment on one stream: synthesize
video, tune parameters, ingest with Focus, run the dominant-class query
workload, and run both baselines -- returning every number the paper's
figures need (ingest-cheaper-by, query-faster-by, accuracy, and the
Opt-Ingest / Balance / Opt-Query trade-off points).

Runs are memoized on their full parameter set because several figures
slice the same underlying experiment differently (e.g. Figure 7's
per-stream factors and Figure 9's policy trade-offs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.ingest_all import IngestAllBaseline
from repro.baselines.query_all import QueryAllBaseline
from repro.cnn.zoo import resnet152
from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.system import FocusSystem
from repro.core.tuning import CandidateConfig
from repro.eval.workloads import dominant_class_workload
from repro.video.sampling import resample_fps
from repro.video.synthesis import generate_observations

#: Default experiment window.  The paper uses 12-hour videos; the
#: simulated substrate reproduces per-stream *rates* and *ratios*, which
#: are duration-invariant, so a few minutes per stream suffices and
#: keeps the full table/figure suite runnable in CI.
EXPERIMENT_DURATION_S = 240.0
EXPERIMENT_FPS = 30.0


@dataclass(frozen=True)
class PolicyPoint:
    """One point in the ingest-cost/query-latency trade-off space."""

    policy: str
    ingest_cheaper_by: float
    query_faster_by: float


@dataclass
class StreamRunResult:
    """Everything measured for one stream experiment."""

    stream: str
    duration_s: float
    fps: float
    policy: Policy
    config: FocusConfig
    config_description: str
    model_name: str
    k: int
    cluster_threshold: float
    num_observations: int
    num_clusters: int
    dominant_classes: List[int]
    precision: float
    recall: float
    ingest_gpu_seconds: float
    ingest_all_gpu_seconds: float
    query_gpu_seconds_avg: float
    query_all_gpu_seconds_avg: float
    per_class_query_seconds: Dict[int, float]
    policy_points: Dict[str, PolicyPoint]
    suppression_ratio: float

    @property
    def ingest_cheaper_by(self) -> float:
        if self.ingest_gpu_seconds == 0:
            return float("inf")
        return self.ingest_all_gpu_seconds / self.ingest_gpu_seconds

    @property
    def query_faster_by(self) -> float:
        if self.query_gpu_seconds_avg == 0:
            return float("inf")
        return self.query_all_gpu_seconds_avg / self.query_gpu_seconds_avg


_CACHE: Dict[tuple, StreamRunResult] = {}


def clear_cache() -> None:
    """Drop all memoized experiment runs."""
    _CACHE.clear()


def _policy_point(candidate: CandidateConfig, name: str) -> PolicyPoint:
    return PolicyPoint(
        policy=name,
        ingest_cheaper_by=1.0 / max(candidate.ingest_cost_norm, 1e-12),
        query_faster_by=1.0 / max(candidate.query_latency_norm, 1e-12),
    )


def run_stream(
    stream: str,
    duration_s: float = EXPERIMENT_DURATION_S,
    fps: float = EXPERIMENT_FPS,
    policy: Policy = Policy.BALANCE,
    target: AccuracyTarget = AccuracyTarget(),
    settings: Optional[TunerSettings] = None,
    use_cache: bool = True,
    config: Optional[FocusConfig] = None,
) -> StreamRunResult:
    """Run the full Focus-vs-baselines experiment on one stream.

    ``config`` pins the Focus configuration (skipping the tuner's
    choice) -- used e.g. by the frame-rate sweep, which tunes once at
    the native rate and applies the same pipeline to sampled streams.
    """
    settings = settings or TunerSettings()
    key = (
        stream,
        float(duration_s),
        float(fps),
        policy,
        target,
        settings,
        config.describe() if config is not None else None,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]

    gt = resnet152()
    system = FocusSystem(
        gt_model=gt, target=target, policy=policy, tuner_settings=settings
    )
    if fps == EXPERIMENT_FPS:
        table = generate_observations(stream, duration_s, fps)
    else:
        # decode at the native rate, then sample down -- what a real
        # deployment does (Section 6.6)
        native = generate_observations(stream, duration_s, EXPERIMENT_FPS)
        table = resample_fps(native, fps)
    handle = system.ingest_stream(table, config=config)

    ingest_all = IngestAllBaseline(gt)
    query_all = QueryAllBaseline(gt)
    ia = ingest_all.ingest(table)
    query_all.ingest(table)

    workload = dominant_class_workload(table)
    per_class: Dict[int, float] = {}
    qall: List[float] = []
    precisions: List[float] = []
    recalls: List[float] = []
    for cls in workload.class_ids:
        answer = system.query(stream, int(cls))
        baseline = query_all.query(stream, int(cls))
        per_class[int(cls)] = answer.result.gpu_seconds
        qall.append(baseline.gpu_seconds)
        precisions.append(answer.precision)
        recalls.append(answer.recall)

    tuning = handle.tuning
    policy_points = {
        "opt-ingest": _policy_point(tuning.choose(Policy.OPT_INGEST), "opt-ingest"),
        "balance": _policy_point(tuning.choose(Policy.BALANCE), "balance"),
        "opt-query": _policy_point(tuning.choose(Policy.OPT_QUERY), "opt-query"),
    }

    result = StreamRunResult(
        stream=stream,
        duration_s=duration_s,
        fps=fps,
        policy=policy,
        config=handle.config,
        config_description=handle.config.describe(),
        model_name=handle.config.model.name,
        k=handle.config.k,
        cluster_threshold=handle.config.cluster_threshold,
        num_observations=len(table),
        num_clusters=handle.ingest.clusters.num_clusters,
        dominant_classes=list(workload.class_ids),
        precision=float(np.mean(precisions)) if precisions else 1.0,
        recall=float(np.mean(recalls)) if recalls else 1.0,
        ingest_gpu_seconds=handle.ingest.ingest_gpu_seconds,
        ingest_all_gpu_seconds=ia.ingest_gpu_seconds,
        query_gpu_seconds_avg=float(np.mean(list(per_class.values()))) if per_class else 0.0,
        query_all_gpu_seconds_avg=float(np.mean(qall)) if qall else 0.0,
        per_class_query_seconds=per_class,
        policy_points=policy_points,
        suppression_ratio=handle.ingest.suppression_ratio,
    )
    if use_cache:
        _CACHE[key] = result
    return result
