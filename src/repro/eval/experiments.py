"""One entry point per table and figure in the paper's evaluation.

Each function returns plain dict/list structures holding the same rows
or series the paper reports, so benchmarks and EXPERIMENTS.md can print
paper-vs-measured side by side.  Heavy underlying runs are shared
through :mod:`repro.eval.runner`'s cache.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cnn.zoo import cheap_cnn, resnet152, resnet18
from repro.core.config import AccuracyTarget, Policy, TunerSettings
from repro.core.tuning import ParameterTuner, pareto_front
from repro.eval.runner import (
    EXPERIMENT_DURATION_S,
    EXPERIMENT_FPS,
    StreamRunResult,
    run_stream,
)
from repro.video.profiles import REPRESENTATIVE_STREAMS, STREAMS, get_profile
from repro.video.synthesis import generate_observations

#: The six streams whose class statistics Section 2.2 characterizes.
SECTION22_STREAMS = ("auburn_c", "jacksonh", "lausanne", "sittard", "cnn", "msnbc")

ALL_STREAMS = tuple(STREAMS)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_dataset_characteristics(
    duration_s: float = EXPERIMENT_DURATION_S,
) -> List[Dict]:
    """Table 1: the thirteen streams and their measured characteristics."""
    rows = []
    for name in ALL_STREAMS:
        profile = get_profile(name)
        table = generate_observations(name, duration_s, EXPERIMENT_FPS)
        rows.append(
            {
                "type": profile.domain,
                "name": name,
                "location": profile.location,
                "description": profile.description,
                "observations": len(table),
                "tracks": table.num_tracks,
                "empty_frame_fraction": table.empty_frame_fraction(),
                "present_classes": len(table.present_classes()),
                "dominant_classes": len(table.dominant_classes()),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 1 / Figure 9: trade-off space
# ---------------------------------------------------------------------------
def fig1_tradeoff_space(
    stream: str = "auburn_c", duration_s: float = EXPERIMENT_DURATION_S
) -> Dict:
    """Figure 1: Focus's three policies vs Ingest-all and Query-all.

    Returns normalized (ingest cost, query latency) per point plus the
    (I, Q) improvement factors the paper annotates.
    """
    result = run_stream(stream, duration_s=duration_s)
    points = {
        "ingest-all": {"ingest_cost": 1.0, "query_latency": 0.0},
        "query-all": {"ingest_cost": 0.0, "query_latency": 1.0},
    }
    for name, point in result.policy_points.items():
        points["focus-%s" % name] = {
            "ingest_cost": 1.0 / point.ingest_cheaper_by,
            "query_latency": 1.0 / point.query_faster_by,
            "I": point.ingest_cheaper_by,
            "Q": point.query_faster_by,
        }
    return {"stream": stream, "points": points}


def fig9_policy_tradeoffs(
    streams: Sequence[str] = REPRESENTATIVE_STREAMS,
    duration_s: float = EXPERIMENT_DURATION_S,
) -> List[Dict]:
    """Figure 9: Opt-Ingest and Opt-Query (I, Q) factors per stream."""
    rows = []
    for stream in streams:
        result = run_stream(stream, duration_s=duration_s)
        for policy in ("opt-ingest", "opt-query"):
            point = result.policy_points[policy]
            rows.append(
                {
                    "stream": stream,
                    "policy": policy,
                    "ingest_cheaper_by": point.ingest_cheaper_by,
                    "query_faster_by": point.query_faster_by,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 3 / Section 2.2 statistics
# ---------------------------------------------------------------------------
def fig3_class_cdf(
    streams: Sequence[str] = SECTION22_STREAMS,
    duration_s: float = 43200.0,
    fps: float = 1.0,
) -> Dict:
    """Figure 3: CDF of object-class frequency per stream.

    Also reports the Section 2.2.2 statistics: fraction of the 1000
    classes present, the fraction of classes covering >= 95% of
    objects, and the mean pairwise Jaccard index of class sets.
    """
    out = {"streams": {}, "mean_jaccard": 0.0}
    class_sets = {}
    for stream in streams:
        # class presence is driven by the number of *tracks*, so a full
        # 12-hour window at a low frame rate measures it faithfully and
        # cheaply (the paper's Figure 3 is over 12-hour videos)
        table = generate_observations(stream, duration_s, fps)
        hist = table.class_histogram()
        counts = np.array(sorted(hist.values(), reverse=True), dtype=np.float64)
        cdf = np.cumsum(counts) / counts.sum()
        n95 = int(np.searchsorted(cdf, 0.95)) + 1
        class_sets[stream] = set(hist)
        out["streams"][stream] = {
            "num_classes": len(hist),
            "present_fraction": len(hist) / 1000.0,
            "cdf": cdf.tolist(),
            "classes_for_95pct": n95,
            "fraction_for_95pct": n95 / len(hist),
        }
    jaccards = []
    for a, b in itertools.combinations(streams, 2):
        sa, sb = class_sets[a], class_sets[b]
        jaccards.append(len(sa & sb) / len(sa | sb))
    out["mean_jaccard"] = float(np.mean(jaccards)) if jaccards else 0.0
    return out


def sec223_feature_nearest_neighbour(
    streams: Sequence[str] = SECTION22_STREAMS,
    duration_s: float = 60.0,
    max_objects: int = 3000,
) -> Dict[str, float]:
    """Section 2.2.3: fraction of nearest-neighbour pairs (by cheap-CNN
    feature vector) that share a class -- >99% in the paper."""
    model = resnet18()
    out = {}
    for stream in streams:
        table = generate_observations(stream, duration_s, EXPERIMENT_FPS)
        if len(table) > max_objects:
            # contiguous prefix: nearest neighbours are track-mates, as
            # in the paper's per-video analysis
            table = table.time_range(0.0, duration_s * max_objects / len(table))
        feats = model.features(table).astype(np.float64)
        # brute-force nearest neighbour (excluding self)
        d2 = (
            np.sum(feats ** 2, axis=1)[:, None]
            + np.sum(feats ** 2, axis=1)[None, :]
            - 2.0 * feats @ feats.T
        )
        np.fill_diagonal(d2, np.inf)
        nn = np.argmin(d2, axis=1)
        same = table.class_id[nn] == table.class_id
        out[stream] = float(same.mean())
    return out


# ---------------------------------------------------------------------------
# Figure 5: recall vs K for the generic cheap CNNs
# ---------------------------------------------------------------------------
def fig5_recall_vs_k(
    stream: str = "lausanne",
    ks: Sequence[int] = (10, 20, 60, 100, 200),
    duration_s: float = EXPERIMENT_DURATION_S,
) -> Dict:
    """Figure 5: recall@K of CheapCNN1/2/3 on one stream's objects."""
    table = generate_observations(stream, duration_s, EXPERIMENT_FPS)
    gt = resnet152()
    out = {"stream": stream, "ks": list(ks), "models": {}}
    for i in (1, 2, 3):
        model = cheap_cnn(i)
        ranks = model.ranks(table)
        out["models"][model.name] = {
            "cheaper_than_gt": model.cheaper_than(gt),
            "recall": [float((ranks <= k).mean()) for k in ks],
        }
    return out


# ---------------------------------------------------------------------------
# Figure 6: Pareto boundary of viable configurations
# ---------------------------------------------------------------------------
def fig6_parameter_selection(
    stream: str = "auburn_c",
    duration_s: float = EXPERIMENT_DURATION_S,
    target: AccuracyTarget = AccuracyTarget(),
) -> Dict:
    """Figure 6: viable configurations, Pareto boundary, chosen points."""
    table = generate_observations(stream, duration_s, EXPERIMENT_FPS)
    sample = table.scattered_sample(TunerSettings().max_sample_seconds)
    tuner = ParameterTuner(resnet152(), target)
    tuning = tuner.tune(sample, stream)
    viable = tuning.viable
    front = tuning.pareto
    chosen = {
        "balance": tuning.choose(Policy.BALANCE),
        "opt-ingest": tuning.choose(Policy.OPT_INGEST),
        "opt-query": tuning.choose(Policy.OPT_QUERY),
    }

    def _point(c):
        return {
            "model": c.config.model.name,
            "k": c.config.k,
            "t": c.config.cluster_threshold,
            "ingest_cost": c.ingest_cost_norm,
            "query_latency": c.query_latency_norm,
        }

    return {
        "stream": stream,
        "viable": [_point(c) for c in viable],
        "pareto": [_point(c) for c in front],
        "chosen": {name: _point(c) for name, c in chosen.items()},
    }


# ---------------------------------------------------------------------------
# Figure 7: end-to-end factors for all 13 streams
# ---------------------------------------------------------------------------
def fig7_end_to_end(
    streams: Sequence[str] = ALL_STREAMS,
    duration_s: float = EXPERIMENT_DURATION_S,
    target: AccuracyTarget = AccuracyTarget(),
) -> Dict:
    """Figure 7: ingest-cheaper-by and query-faster-by per stream."""
    rows = []
    for stream in streams:
        result = run_stream(stream, duration_s=duration_s, target=target)
        rows.append(
            {
                "stream": stream,
                "domain": get_profile(stream).domain,
                "ingest_cheaper_by": result.ingest_cheaper_by,
                "query_faster_by": result.query_faster_by,
                "precision": result.precision,
                "recall": result.recall,
                "config": result.config_description,
            }
        )
    return {
        "rows": rows,
        "avg_ingest_cheaper_by": float(np.mean([r["ingest_cheaper_by"] for r in rows])),
        "avg_query_faster_by": float(np.mean([r["query_faster_by"] for r in rows])),
    }


# ---------------------------------------------------------------------------
# Figure 8: component ablation ladder
# ---------------------------------------------------------------------------
def _ablation_settings(specialized: bool, clustering: bool) -> TunerSettings:
    base = TunerSettings()
    return TunerSettings(
        k_grid_generic=base.k_grid_generic,
        k_grid_specialized=base.k_grid_specialized,
        t_grid=base.t_grid if clustering else (0.0,),
        ls_values=base.ls_values if specialized else (),
        specialization_divisors=base.specialization_divisors,
        sample_fraction=base.sample_fraction,
        max_sample_seconds=base.max_sample_seconds,
        include_generic=True,
        max_candidates_per_model=base.max_candidates_per_model,
        dominant_coverage=base.dominant_coverage,
        accuracy_margin=base.accuracy_margin,
    )


def fig8_component_ablation(
    streams: Sequence[str] = REPRESENTATIVE_STREAMS,
    duration_s: float = EXPERIMENT_DURATION_S,
) -> List[Dict]:
    """Figure 8: compressed model / +specialization / +clustering.

    Each step adds one Focus technique; all three verify with GT-CNN at
    query time and meet the same accuracy target (Section 6.3).
    """
    ladder = [
        ("compressed", _ablation_settings(specialized=False, clustering=False)),
        ("compressed+specialized", _ablation_settings(specialized=True, clustering=False)),
        ("compressed+specialized+clustering", _ablation_settings(specialized=True, clustering=True)),
    ]
    rows = []
    for stream in streams:
        for label, settings in ladder:
            result = run_stream(stream, duration_s=duration_s, settings=settings)
            rows.append(
                {
                    "stream": stream,
                    "design": label,
                    "ingest_cheaper_by": result.ingest_cheaper_by,
                    "query_faster_by": result.query_faster_by,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 10-11: accuracy-target sensitivity
# ---------------------------------------------------------------------------
def fig10_11_accuracy_sensitivity(
    streams: Sequence[str] = REPRESENTATIVE_STREAMS,
    targets: Sequence[float] = (0.95, 0.97, 0.98, 0.99),
    duration_s: float = EXPERIMENT_DURATION_S,
) -> List[Dict]:
    """Figures 10 and 11: factors vs the accuracy target."""
    rows = []
    for stream in streams:
        for t in targets:
            target = AccuracyTarget(precision=t, recall=t)
            try:
                result = run_stream(stream, duration_s=duration_s, target=target)
            except RuntimeError:
                # no viable configuration at this target on this sample
                rows.append(
                    {
                        "stream": stream,
                        "target": t,
                        "ingest_cheaper_by": float("nan"),
                        "query_faster_by": float("nan"),
                    }
                )
                continue
            rows.append(
                {
                    "stream": stream,
                    "target": t,
                    "ingest_cheaper_by": result.ingest_cheaper_by,
                    "query_faster_by": result.query_faster_by,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 12-13: frame-rate sensitivity
# ---------------------------------------------------------------------------
def fig12_13_fps_sensitivity(
    streams: Sequence[str] = REPRESENTATIVE_STREAMS,
    fps_values: Sequence[float] = (30.0, 10.0, 5.0, 1.0),
    duration_s: float = EXPERIMENT_DURATION_S,
) -> List[Dict]:
    """Figures 12 and 13: factors vs the frame sampling rate."""
    rows = []
    for stream in streams:
        # tune once at the native rate; lower rates reuse the same
        # pipeline, as a deployment applying frame sampling would
        base = run_stream(stream, duration_s=duration_s, fps=max(fps_values))
        for fps in fps_values:
            if fps == max(fps_values):
                result = base
            else:
                result = run_stream(
                    stream, duration_s=duration_s, fps=fps, config=base.config
                )
            rows.append(
                {
                    "stream": stream,
                    "fps": fps,
                    "ingest_cheaper_by": result.ingest_cheaper_by,
                    "query_faster_by": result.query_faster_by,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Section 6.7: extreme query rates
# ---------------------------------------------------------------------------
def sec67_query_rates(
    streams: Sequence[str] = REPRESENTATIVE_STREAMS,
    duration_s: float = EXPERIMENT_DURATION_S,
) -> List[Dict]:
    """Section 6.7: Focus under the two extreme query rates.

    * everything queried: Focus's total cost (cheap ingest + one GT-CNN
      pass per distinct cluster, cached across queries) vs Ingest-all.
    * almost nothing queried: all Focus techniques deferred to query
      time -- latency = cheap CNN over the interval + GT-CNN on matching
      centroids -- vs Query-all.
    """
    gt = resnet152()
    rows = []
    for stream in streams:
        result = run_stream(stream, duration_s=duration_s)
        n = result.num_observations
        ingest_all_cost = result.ingest_all_gpu_seconds
        gt_per_obj = ingest_all_cost / max(n, 1)

        # extreme 1: all classes / all videos queried
        focus_total = result.ingest_gpu_seconds + result.num_clusters * gt_per_obj
        all_queried_cheaper = ingest_all_cost / focus_total

        # extreme 2: Focus runs entirely at query time
        cheap_per_obj = result.ingest_gpu_seconds / max(
            n * (1 - result.suppression_ratio), 1
        )
        focus_query_only = (
            n * (1 - result.suppression_ratio) * cheap_per_obj
            + result.query_gpu_seconds_avg
        )
        query_only_faster = result.query_all_gpu_seconds_avg / focus_query_only

        rows.append(
            {
                "stream": stream,
                "all_queried_cheaper_than_ingest_all": all_queried_cheaper,
                "query_time_only_faster_than_query_all": query_only_faster,
            }
        )
    return rows
