"""Experiment harness: regenerates every table and figure of the paper.

``runner`` drives end-to-end Focus + baseline runs per stream (with
in-process caching so benchmarks can share work); ``experiments`` has
one entry point per paper table/figure; ``reporting`` renders the same
rows/series the paper presents.
"""

from repro.eval.runner import (
    EXPERIMENT_DURATION_S,
    EXPERIMENT_FPS,
    StreamRunResult,
    run_stream,
    clear_cache,
)
from repro.eval.workloads import QueryWorkload, dominant_class_workload
from repro.eval import experiments, reporting

__all__ = [
    "EXPERIMENT_DURATION_S",
    "EXPERIMENT_FPS",
    "StreamRunResult",
    "run_stream",
    "clear_cache",
    "QueryWorkload",
    "dominant_class_workload",
    "experiments",
    "reporting",
]
