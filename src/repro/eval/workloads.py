"""Query-workload generation.

The paper's evaluation queries "all dominant object classes" of each
stream and averages their latencies (Section 6.1, Metrics).  A workload
here is the list of class queries to run against an ingested stream,
optionally with time ranges and query rates (Section 6.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.video.synthesis import ObservationTable


@dataclass(frozen=True)
class QueryWorkload:
    """A set of class queries against one stream."""

    stream: str
    class_ids: Tuple[int, ...]
    time_range: Optional[Tuple[float, float]] = None

    def __len__(self) -> int:
        return len(self.class_ids)


def dominant_class_workload(
    table: ObservationTable, coverage: float = 0.95
) -> QueryWorkload:
    """The paper's standard workload: every dominant class of a stream."""
    return QueryWorkload(
        stream=table.stream,
        class_ids=tuple(table.dominant_classes(coverage)),
    )


def rare_class_workload(
    table: ObservationTable, max_classes: int = 5, coverage: float = 0.95
) -> QueryWorkload:
    """Queries for non-dominant ("OTHER"-bucket) classes (Section 4.3)."""
    dominant = set(table.dominant_classes(coverage))
    histogram = table.class_histogram()
    rare = [c for c in sorted(histogram, key=histogram.get) if c not in dominant]
    return QueryWorkload(stream=table.stream, class_ids=tuple(rare[:max_classes]))
