"""Counter-based deterministic hashing for vectorized simulation.

All stochastic behaviour of the simulated CNNs must be a *pure
function* of (model, object): the same model must always produce the
same ranked output and feature vector for the same object, across
ingest, tuning and querying.  Python's ``random`` cannot provide that
in vectorized form, so we use a splitmix64-style mixer over uint64
seeds, which is stateless, fast on numpy arrays, and high-quality for
simulation purposes.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def mix64(x: np.ndarray, copy: bool = True) -> np.ndarray:
    """splitmix64 finalizer: maps uint64 -> well-mixed uint64.

    ``copy=False`` mixes in place -- only for arrays the caller owns
    (fresh temporaries); it saves one full pass over wide hash grids.
    """
    with np.errstate(over="ignore"):
        z = np.asarray(x)
        if copy or z.dtype != np.uint64:
            z = z.astype(np.uint64, copy=True)
        z += _GOLDEN
        z ^= z >> np.uint64(30)
        z *= _MIX1
        z ^= z >> np.uint64(27)
        z *= _MIX2
        z ^= z >> np.uint64(31)
    return z


def combine(*parts) -> np.ndarray:
    """Combine seeds / salts into one mixed uint64 array.

    Accepts any mix of scalars and arrays (broadcast together).
    Position-dependent: ``combine(a, b) != combine(b, a)``, so swapped
    seed/salt pairs cannot collide.
    """
    acc = None
    with np.errstate(over="ignore"):
        for position, part in enumerate(parts):
            arr = np.asarray(part, dtype=np.uint64)
            # the sum/xor results are fresh arrays: mix them in place
            mixed = mix64(arr + np.uint64(position + 1) * _GOLDEN, copy=False)
            acc = mixed if acc is None else mix64(acc ^ mixed, copy=False)
    if acc is None:
        raise ValueError("combine() requires at least one seed part")
    return acc


def hash_uniform(seeds: np.ndarray) -> np.ndarray:
    """Deterministic uniforms in [0, 1) from uint64 seeds."""
    z = mix64(np.asarray(seeds, dtype=np.uint64))
    # use the top 53 bits for a full-precision double in [0, 1)
    return (z >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


def hash_normal(seeds: np.ndarray) -> np.ndarray:
    """Deterministic standard normals from uint64 seeds (inverse CDF)."""
    u = hash_uniform(seeds)
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    return ndtri(u)


def hash_randint(seeds: np.ndarray, n: int) -> np.ndarray:
    """Deterministic integers in [0, n) from uint64 seeds."""
    if n <= 0:
        raise ValueError("n must be positive")
    z = mix64(np.asarray(seeds, dtype=np.uint64))
    return (z % np.uint64(n)).astype(np.int64)


def hash_normal_matrix(seeds: np.ndarray, dim: int, salt: int = 0) -> np.ndarray:
    """Deterministic [len(seeds), dim] standard-normal matrix.

    Row i depends only on ``seeds[i]``; column j mixes in ``j`` so the
    coordinates are independent.
    """
    s = np.asarray(seeds, dtype=np.uint64).reshape(-1, 1)
    cols = (np.arange(dim, dtype=np.uint64) + np.uint64(salt + 1)).reshape(1, -1)
    grid = mix64(s ^ (cols * _GOLDEN), copy=False)  # xor result is fresh
    u = (grid >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    return ndtri(u)


def stable_salt(text: str) -> int:
    """Stable uint64 salt from a string (model names, query classes)."""
    acc = np.uint64(1469598103934665603)  # FNV-1a offset basis
    with np.errstate(over="ignore"):
        for byte in text.encode("utf-8"):
            acc = np.uint64(acc ^ np.uint64(byte)) * np.uint64(1099511628211)
    return int(acc)
