"""Centralized calibration constants for the simulated CNN substrate.

Every knob that was fit against a number published in the paper lives
here, with a pointer to the paper statistic it reproduces.  Ablation
benchmarks import and sweep these.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FeatureCalibration:
    """Feature-vector synthesis knobs (Sections 2.2.3 and 4.2).

    The geometry is tiered so the clustering threshold T produces the
    paper's trade-off (Section 4.4): consecutive observations of one
    track are ~noise_scale apart (clusters follow tracks); appearance
    drift fragments long tracks into many clusters; distinct same-class
    tracks are ~sqrt(2)*appearance_weight apart (mid-T merges them);
    confusable classes share a pool anchor, and each track carries a
    random amount of "confuser" pull toward a neighbouring class -- so
    large T merges across classes and costs precision.

    Attributes:
        dim: feature dimensionality.  State-of-the-art classifiers
            produce 512-4096; we default lower for simulation speed --
            only relative distances matter to clustering.
        class_weight: weight of the class-prototype component.  Keeping
            it dominant reproduces the >99% nearest-neighbour same-class
            fraction of Section 2.2.3.
        pool_weight / unique_weight: a class prototype is
            ``pool_weight * pool_anchor + unique_weight * unique(class)``
            (normalized), so confusable classes (car/taxi/pickup) sit
            close together, as real embeddings do.
        appearance_weight: weight of the persistent per-track component;
            separates distinct object instances of the same class.
        confuser_max: each track is pulled toward one confusable
            neighbour class by a per-track uniform weight in
            [0, confuser_max]; boundary tracks are what make loose
            clusters impure (the T-precision coupling of Section 4.4).
        drift_angle: radians of appearance rotation per 10 seconds in
            view (pose/viewing-angle change).  Controls how many
            clusters a long track fragments into -- the main lever on
            clustering's query-latency saving (Figures 8b and 13).
        noise_scale: per-observation jitter for a high-quality model;
            scaled up for cheaper models.
        hard_example_fraction: probability that a (track, 6-frame
            bucket) episode is "hard" (motion blur, partial occlusion,
            bad crops) -- its features land far from every manifold and
            seed a stray cluster at any reasonable T.  This is why real
            deployments verify many more centroids per query than clean
            geometry would predict; without it, simulated query
            latencies come out several times better than the paper's.
    """

    dim: int = 128
    class_weight: float = 1.0
    pool_weight: float = 0.93
    unique_weight: float = 0.15
    appearance_weight: float = 0.45
    confuser_max: float = 0.70
    drift_angle: float = 14.0
    noise_scale: float = 0.03
    hard_example_fraction: float = 0.16


@dataclass(frozen=True)
class NoiseCalibration:
    """Rank-dispersion and confusion knobs (Figures 5, Section 4.1).

    Attributes:
        pool_confusion_mass: probability mass a model's spurious top-K
            entries place on classes from the true class's domain pool
            (visually-confusable classes); the rest is uniform over all
            classes the model knows.
        specialized_confusion_mass: same for specialized models, within
            their Ls+1-class output space.
    """

    pool_confusion_mass: float = 0.05
    specialized_confusion_mass: float = 0.90


@dataclass(frozen=True)
class IngestCalibration:
    """Ingest-side knobs (Sections 4.2, 6.3).

    Attributes:
        pixel_diff_max_suppression: fraction of observations suppressed
            by pixel differencing at 30 fps (near-duplicate objects in
            adjacent frames).  Scales down at lower frame rates.
        specialization_cost_divisor: how much cheaper a specialized
            model is than its generic compressed source (the paper
            reports ~10x, Section 4.3).
    """

    pixel_diff_max_suppression: float = 0.30
    specialization_cost_divisor: float = 10.0


FEATURES = FeatureCalibration()
NOISE = NoiseCalibration()
INGEST = IngestCalibration()
