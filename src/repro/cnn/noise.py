"""Rank-dispersion and class-confusion noise model.

A cheap CNN's key failure mode, as the paper characterizes it, is that
the *true* class slides down its ranked output: "the top-most result of
the expensive CNN falls within the top-K results of the cheap CNN"
(Section 1), with recall rising steadily in K (Figure 5).  We model the
true class's rank as ``1 + floor(Exponential(dispersion * difficulty))``
-- giving ``recall@K = 1 - exp(-K / (dispersion * difficulty))``, the
saturating curves of Figure 5 -- where *dispersion* is a per-model
constant that grows as the model gets cheaper and *difficulty* is a
per-object hardness factor.

The remaining top-K slots are spurious entries drawn from a confusion
distribution: mostly classes visually confusable with the true class
(its domain pool), with a uniform tail.  These spurious entries are
what cap the top-K index's precision at ~1/K (Section 4.1) and inflate
query-time work.

Everything is a pure function of (model salt, observation seed), so
repeated evaluation anywhere in the pipeline agrees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cnn.calibration import NOISE, NoiseCalibration
from repro.cnn.hashing import combine, hash_uniform, mix64, stable_salt
from repro.video.classes import NUM_CLASSES, confusable_pool

_RANK_SALT = stable_salt("rank")
_SLOT_SALT = stable_salt("slot")
_POOL_SALT = stable_salt("pool-choice")


def true_class_ranks(
    model_salt: int,
    obs_seeds: np.ndarray,
    difficulty: np.ndarray,
    dispersion: float,
    num_classes: int = NUM_CLASSES,
) -> np.ndarray:
    """Rank (1-based) of the true class in the model's output.

    ``dispersion == 0`` models the ground-truth CNN: always rank 1.
    """
    if dispersion < 0:
        raise ValueError("dispersion must be non-negative")
    n = len(obs_seeds)
    if dispersion == 0:
        return np.ones(n, dtype=np.int64)
    u = hash_uniform(combine(obs_seeds, np.uint64(model_salt), np.uint64(_RANK_SALT)))
    scale = dispersion * np.asarray(difficulty, dtype=np.float64)
    ranks = 1 + np.floor(-scale * np.log1p(-u)).astype(np.int64)
    return np.minimum(ranks, num_classes)


class ConfusionModel:
    """Distribution of a model's spurious top-K entries.

    With probability ``pool_mass`` a spurious slot is a class from the
    true class's confusable pool; otherwise it is uniform over the
    model's class space.
    """

    def __init__(
        self,
        pool_mass: float = NOISE.pool_confusion_mass,
        num_classes: int = NUM_CLASSES,
    ):
        if not 0.0 <= pool_mass <= 1.0:
            raise ValueError("pool_mass must be in [0, 1]")
        self.pool_mass = pool_mass
        self.num_classes = num_classes
        self._pools = self._build_pools(num_classes)
        self._pool_size = np.array([len(self._pools[c]) for c in range(num_classes)])
        # membership matrix is sparse; store per-class sets for prob lookup
        self._pool_sets = [frozenset(p) for p in self._pools]
        self._pool_arrays = [np.asarray(p, dtype=np.int64) for p in self._pools]

    @staticmethod
    def _build_pools(num_classes: int) -> List[List[int]]:
        return [confusable_pool(cid) for cid in range(num_classes)]

    def slot_probability(self, true_classes: np.ndarray, query_class: int) -> np.ndarray:
        """P(one spurious slot == query_class) per observation."""
        true_classes = np.asarray(true_classes)
        base = (1.0 - self.pool_mass) / self.num_classes
        probs = np.full(len(true_classes), base, dtype=np.float64)
        in_pool = np.fromiter(
            (query_class in self._pool_sets[int(c)] for c in true_classes),
            dtype=bool,
            count=len(true_classes),
        )
        if in_pool.any():
            sizes = self._pool_size[true_classes[in_pool]]
            probs[in_pool] += self.pool_mass / sizes
        return probs

    def spurious_membership(
        self,
        model_salt: int,
        obs_seeds: np.ndarray,
        true_classes: np.ndarray,
        query_class: int,
        k: int,
    ) -> np.ndarray:
        """Whether ``query_class`` appears among the K-1 spurious slots.

        Deterministic per (model, observation, query class): computed by
        thresholding a hashed uniform at the analytic membership
        probability ``1 - (1 - p_slot)^(k-1)``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if k == 1:
            return np.zeros(len(obs_seeds), dtype=bool)
        p_slot = self.slot_probability(true_classes, query_class)
        p_member = 1.0 - np.power(1.0 - p_slot, k - 1)
        u = hash_uniform(
            combine(
                obs_seeds,
                np.uint64(model_salt),
                np.uint64(stable_salt("member:%d" % query_class)),
            )
        )
        return u < p_member

    def sample_slots(
        self, model_salt: int, obs_seed: int, true_class: int, count: int
    ) -> List[int]:
        """Materialize ``count`` spurious slot classes for one object.

        Used when the top-K index is written out explicitly; duplicates
        and the true class are removed, backfilling from the uniform
        tail so the returned list has exactly ``count`` distinct classes
        (or the whole class space, if smaller).
        """
        return self.sample_slots_batch(
            model_salt,
            np.asarray([obs_seed], dtype=np.uint64),
            np.asarray([true_class], dtype=np.int64),
            np.asarray([count], dtype=np.int64),
        )[0]

    def _candidate_grid(
        self,
        model_salt: int,
        obs_seeds: np.ndarray,
        true_classes: np.ndarray,
        attempts: np.ndarray,
    ) -> np.ndarray:
        """Candidate class per (observation, attempt) -- vectorized over
        the whole grid, bit-identical to the per-attempt scalar draw."""
        seeds = obs_seeds.astype(np.uint64)[:, np.newaxis]
        att = attempts.astype(np.uint64)[np.newaxis, :]
        u = hash_uniform(
            combine(seeds, np.uint64(model_salt), np.uint64(_SLOT_SALT), att)
        )
        z = mix64(
            combine(seeds, np.uint64(model_salt), np.uint64(_POOL_SALT), att)
        )
        uniform_pick = (z % np.uint64(self.num_classes)).astype(np.int64)
        candidates = uniform_pick
        pool_sizes = self._pool_size[true_classes]
        use_pool = (u < self.pool_mass) & (pool_sizes > 0)[:, np.newaxis]
        if use_pool.any():
            pool_pick = np.empty_like(uniform_pick)
            for cls in np.unique(true_classes):
                pool = self._pool_arrays[int(cls)]
                rows = np.nonzero(true_classes == cls)[0]
                if len(pool):
                    pool_pick[rows] = pool[
                        (z[rows] % np.uint64(len(pool))).astype(np.int64)
                    ]
            candidates = np.where(use_pool, pool_pick, uniform_pick)
        return candidates

    def sample_slots_batch(
        self,
        model_salt: int,
        obs_seeds: np.ndarray,
        true_classes: np.ndarray,
        counts: np.ndarray,
    ) -> List[List[int]]:
        """:meth:`sample_slots` for many observations at once.

        The hashed candidate draws are generated as one vectorized
        grid (in blocks of attempts, since nearly every observation
        finishes within ``count + a few`` draws); only the tiny
        dedup walk per observation stays in Python.  Bit-identical to
        calling :meth:`sample_slots` per observation.
        """
        n = len(obs_seeds)
        obs_seeds = np.asarray(obs_seeds, dtype=np.uint64)
        true_classes = np.asarray(true_classes, dtype=np.int64)
        limits = np.minimum(np.asarray(counts, dtype=np.int64),
                            self.num_classes - 1)
        out: List[List[int]] = [[] for _ in range(n)]
        seen = [{int(true_classes[i])} for i in range(n)]
        active = [i for i in range(n) if limits[i] > 0]
        attempt_base = 0
        max_attempts = int(20 * limits.max() + 50) if n else 0
        block = int(limits.max()) + 8 if n else 0
        while active and attempt_base < max_attempts:
            stop = min(attempt_base + block, max_attempts)
            idx = np.asarray(active, dtype=np.int64)
            grid = self._candidate_grid(
                model_salt, obs_seeds[idx], true_classes[idx],
                np.arange(attempt_base, stop, dtype=np.int64),
            ).tolist()
            still = []
            for row, i in enumerate(idx.tolist()):
                chosen = out[i]
                seen_i = seen[i]
                limit = int(limits[i])
                cap = 20 * limit + 50  # per-row attempt budget (matches
                #                        the one-observation loop)
                for attempt, candidate in enumerate(grid[row],
                                                    start=attempt_base):
                    if attempt >= cap:
                        break
                    if candidate not in seen_i:
                        chosen.append(candidate)
                        seen_i.add(candidate)
                        if len(chosen) >= limit:
                            break
                if len(chosen) < limit and stop < cap:
                    still.append(i)
            active = still
            attempt_base = stop
            block *= 2
        for i in active:
            # deterministic backfill if rejection sampling stalled
            chosen, seen_i, limit = out[i], seen[i], limits[i]
            next_cid = 0
            while len(chosen) < limit:
                if next_cid not in seen_i:
                    chosen.append(next_cid)
                    seen_i.add(next_cid)
                next_cid += 1
        return out


_DEFAULT_CONFUSION: Optional[ConfusionModel] = None


def default_confusion() -> ConfusionModel:
    """Shared default confusion model (pools are static)."""
    global _DEFAULT_CONFUSION
    if _DEFAULT_CONFUSION is None:
        _DEFAULT_CONFUSION = ConfusionModel()
    return _DEFAULT_CONFUSION
