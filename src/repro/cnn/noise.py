"""Rank-dispersion and class-confusion noise model.

A cheap CNN's key failure mode, as the paper characterizes it, is that
the *true* class slides down its ranked output: "the top-most result of
the expensive CNN falls within the top-K results of the cheap CNN"
(Section 1), with recall rising steadily in K (Figure 5).  We model the
true class's rank as ``1 + floor(Exponential(dispersion * difficulty))``
-- giving ``recall@K = 1 - exp(-K / (dispersion * difficulty))``, the
saturating curves of Figure 5 -- where *dispersion* is a per-model
constant that grows as the model gets cheaper and *difficulty* is a
per-object hardness factor.

The remaining top-K slots are spurious entries drawn from a confusion
distribution: mostly classes visually confusable with the true class
(its domain pool), with a uniform tail.  These spurious entries are
what cap the top-K index's precision at ~1/K (Section 4.1) and inflate
query-time work.

Everything is a pure function of (model salt, observation seed), so
repeated evaluation anywhere in the pipeline agrees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cnn.calibration import NOISE, NoiseCalibration
from repro.cnn.hashing import combine, hash_uniform, mix64, stable_salt
from repro.video.classes import NUM_CLASSES, confusable_pool

_RANK_SALT = stable_salt("rank")
_SLOT_SALT = stable_salt("slot")
_POOL_SALT = stable_salt("pool-choice")


def true_class_ranks(
    model_salt: int,
    obs_seeds: np.ndarray,
    difficulty: np.ndarray,
    dispersion: float,
    num_classes: int = NUM_CLASSES,
) -> np.ndarray:
    """Rank (1-based) of the true class in the model's output.

    ``dispersion == 0`` models the ground-truth CNN: always rank 1.
    """
    if dispersion < 0:
        raise ValueError("dispersion must be non-negative")
    n = len(obs_seeds)
    if dispersion == 0:
        return np.ones(n, dtype=np.int64)
    u = hash_uniform(combine(obs_seeds, np.uint64(model_salt), np.uint64(_RANK_SALT)))
    scale = dispersion * np.asarray(difficulty, dtype=np.float64)
    ranks = 1 + np.floor(-scale * np.log1p(-u)).astype(np.int64)
    return np.minimum(ranks, num_classes)


class ConfusionModel:
    """Distribution of a model's spurious top-K entries.

    With probability ``pool_mass`` a spurious slot is a class from the
    true class's confusable pool; otherwise it is uniform over the
    model's class space.
    """

    def __init__(
        self,
        pool_mass: float = NOISE.pool_confusion_mass,
        num_classes: int = NUM_CLASSES,
    ):
        if not 0.0 <= pool_mass <= 1.0:
            raise ValueError("pool_mass must be in [0, 1]")
        self.pool_mass = pool_mass
        self.num_classes = num_classes
        self._pools = self._build_pools(num_classes)
        self._pool_size = np.array([len(self._pools[c]) for c in range(num_classes)])
        # membership matrix is sparse; store per-class sets for prob lookup
        self._pool_sets = [frozenset(p) for p in self._pools]
        self._pool_arrays = [np.asarray(p, dtype=np.int64) for p in self._pools]

    @staticmethod
    def _build_pools(num_classes: int) -> List[List[int]]:
        return [confusable_pool(cid) for cid in range(num_classes)]

    def slot_probability(self, true_classes: np.ndarray, query_class: int) -> np.ndarray:
        """P(one spurious slot == query_class) per observation."""
        true_classes = np.asarray(true_classes)
        base = (1.0 - self.pool_mass) / self.num_classes
        probs = np.full(len(true_classes), base, dtype=np.float64)
        in_pool = np.fromiter(
            (query_class in self._pool_sets[int(c)] for c in true_classes),
            dtype=bool,
            count=len(true_classes),
        )
        if in_pool.any():
            sizes = self._pool_size[true_classes[in_pool]]
            probs[in_pool] += self.pool_mass / sizes
        return probs

    def spurious_membership(
        self,
        model_salt: int,
        obs_seeds: np.ndarray,
        true_classes: np.ndarray,
        query_class: int,
        k: int,
    ) -> np.ndarray:
        """Whether ``query_class`` appears among the K-1 spurious slots.

        Deterministic per (model, observation, query class): computed by
        thresholding a hashed uniform at the analytic membership
        probability ``1 - (1 - p_slot)^(k-1)``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if k == 1:
            return np.zeros(len(obs_seeds), dtype=bool)
        p_slot = self.slot_probability(true_classes, query_class)
        p_member = 1.0 - np.power(1.0 - p_slot, k - 1)
        u = hash_uniform(
            combine(
                obs_seeds,
                np.uint64(model_salt),
                np.uint64(stable_salt("member:%d" % query_class)),
            )
        )
        return u < p_member

    def sample_slots(
        self, model_salt: int, obs_seed: int, true_class: int, count: int
    ) -> List[int]:
        """Materialize ``count`` spurious slot classes for one object.

        Used when the top-K index is written out explicitly; duplicates
        and the true class are removed, backfilling from the uniform
        tail so the returned list has exactly ``count`` distinct classes
        (or the whole class space, if smaller).
        """
        if count <= 0:
            return []
        pool = self._pool_arrays[true_class]
        chosen: List[int] = []
        seen = {true_class}
        attempt = 0
        limit = min(count, self.num_classes - 1)
        while len(chosen) < limit and attempt < 20 * limit + 50:
            seeds = combine(
                np.uint64(obs_seed),
                np.uint64(model_salt),
                np.uint64(_SLOT_SALT),
                np.uint64(attempt),
            )
            u = float(hash_uniform(seeds))
            pick_seed = combine(
                np.uint64(obs_seed), np.uint64(model_salt), np.uint64(_POOL_SALT), np.uint64(attempt)
            )
            z = int(mix64(pick_seed))
            if u < self.pool_mass and len(pool) > 0:
                candidate = int(pool[z % len(pool)])
            else:
                candidate = z % self.num_classes
            if candidate not in seen:
                chosen.append(candidate)
                seen.add(candidate)
            attempt += 1
        # deterministic backfill if rejection sampling stalled
        next_cid = 0
        while len(chosen) < limit:
            if next_cid not in seen:
                chosen.append(next_cid)
                seen.add(next_cid)
            next_cid += 1
        return chosen


_DEFAULT_CONFUSION: Optional[ConfusionModel] = None


def default_confusion() -> ConfusionModel:
    """Shared default confusion model (pools are static)."""
    global _DEFAULT_CONFUSION
    if _DEFAULT_CONFUSION is None:
        _DEFAULT_CONFUSION = ConfusionModel()
    return _DEFAULT_CONFUSION
