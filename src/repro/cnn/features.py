"""Feature-vector synthesis (the CNN's penultimate layer).

Section 2.2.3 of the paper establishes the properties Focus relies on:
images with nearby feature vectors are visually similar; the nearest
neighbour of an object's vector (even from cheap ResNet18) is the same
class >99% of the time; and the same physical object across consecutive
frames has nearly identical features, drifting slowly with pose.

We synthesize a tiered geometry (see
:class:`~repro.cnn.calibration.FeatureCalibration`):

    v = normalize( w_c * prototype(class)
                 + w_x * prototype(confusable neighbour)   # per-track pull
                 + w_a * appearance(track, t)              # rotating drift
                 + noise )

* ``prototype(class)`` mixes a shared *pool anchor* with a unique
  direction, so visually-confusable classes (car/taxi/pickup) sit close
  while unrelated classes are nearly orthogonal.
* the *confuser* pull gives each track a random proximity to one
  neighbouring class; loose clustering thresholds therefore absorb
  boundary objects of the wrong class and lose precision -- the paper's
  T trade-off (Section 4.4).
* ``appearance`` rotates with time in view, fragmenting long tracks
  into multiple clusters; consecutive observations stay ~noise apart.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cnn.calibration import FEATURES, FeatureCalibration
from repro.cnn.hashing import combine, hash_normal_matrix, hash_uniform, mix64, stable_salt
from repro.video.classes import confusable_pool, confusable_pool_key
from repro.video.synthesis import ObservationTable

_POOL_SALT = stable_salt("pool-anchor")
_UNIQUE_SALT = stable_salt("class-unique")
_APP0_SALT = stable_salt("appearance-0")
_APP1_SALT = stable_salt("appearance-1")
_NOISE_SALT = stable_salt("feature-noise")
_CONFUSER_PICK_SALT = stable_salt("confuser-pick")
_CONFUSER_WEIGHT_SALT = stable_salt("confuser-weight")
_APP_SCALE_SALT = stable_salt("appearance-scale")
_DRIFT_SCALE_SALT = stable_salt("drift-scale")
_HARD_MASK_SALT = stable_salt("hard-example")
_HARD_DIR_SALT = stable_salt("hard-direction")

#: Length of a hard episode in frames (at the native frame rate).
_HARD_EPISODE_FRAMES = 6

#: Per-track spread of the appearance magnitude and drift rate.  Tracks
#: with a small appearance component sit close to their class manifold
#: and are absorbed by coarse clusters at moderate T, while
#: strong-appearance tracks resist merging -- smearing the cluster-
#: collapse threshold into the gradual precision-vs-T trade-off the
#: paper's tuner navigates (Section 4.4).
_APP_SCALE_RANGE = (0.35, 1.40)
_DRIFT_SCALE_RANGE = (0.50, 1.50)


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class FeatureExtractor:
    """Synthesizes penultimate-layer feature vectors for observations.

    One extractor per classifier model: cheaper models add more
    per-observation noise (``noise_multiplier``) but share the global
    class geometry, mirroring how different CNNs learn comparable but
    differently-sharp embeddings.
    """

    #: rows per internal extraction block.  The pipeline makes ~25
    #: elementwise passes over [n, dim] intermediates; blocking keeps
    #: them cache-resident, which is worth ~3x on 100k-row windows.
    BLOCK_ROWS = 8192

    #: per-track cache cap; the cache is cleared wholesale beyond this
    #: (a live stream only ever has a few hundred concurrent tracks)
    TRACK_CACHE_MAX = 16384

    def __init__(
        self,
        model_salt: int,
        noise_multiplier: float = 1.0,
        calibration: FeatureCalibration = FEATURES,
    ):
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.model_salt = model_salt
        self.noise_multiplier = noise_multiplier
        self.calibration = calibration
        #: dense class -> prototype row matrix (grown on demand), so
        #: the per-block prototype lookup is a single fancy gather
        self._proto_matrix = None
        self._proto_known = np.zeros(0, dtype=bool)
        #: class id -> ndarray of confusable neighbours (excluding self)
        self._neighbour_cache: dict = {}
        #: track seed -> (app0, app1, app_scale, drift_scale,
        #:               confuser_class, confuser_w); all of these are
        #: pure functions of the track, recomputed per chunk before --
        #: live ingest pushes the same tracks every chunk
        self._track_cache: dict = {}

    @property
    def dim(self) -> int:
        return self.calibration.dim

    # -- class geometry ------------------------------------------------------
    def class_prototype(self, class_id: int) -> np.ndarray:
        """Unit prototype for a class: pool anchor + unique direction."""
        return self._prototypes_for(np.asarray([class_id]))[0]

    def _prototypes_for(self, class_ids: np.ndarray) -> np.ndarray:
        class_ids = np.asarray(class_ids, dtype=np.int64)
        matrix = self._proto_matrix
        if matrix is None or (len(class_ids) and
                              class_ids.max() >= len(self._proto_known)):
            self._grow_proto_matrix(int(class_ids.max()) + 1 if len(class_ids)
                                    else 1)
            matrix = self._proto_matrix
        if len(class_ids):
            unknown = ~self._proto_known[class_ids]
            if unknown.any():
                self._compute_prototypes(np.unique(class_ids[unknown]))
        # one dense gather instead of a per-unique stack + inverse index
        return matrix[class_ids]

    def _grow_proto_matrix(self, min_classes: int) -> None:
        # geometric headroom: growing one id at a time must stay
        # amortized O(1) per class, not a full realloc per call
        size = max(min_classes, 2 * len(self._proto_known), 64)
        matrix = np.zeros((size, self.dim), dtype=np.float64)
        known = np.zeros(size, dtype=bool)
        if self._proto_matrix is not None:
            matrix[: len(self._proto_known)] = self._proto_matrix
            known[: len(self._proto_known)] = self._proto_known
        self._proto_matrix = matrix
        self._proto_known = known

    def _compute_prototypes(self, miss: np.ndarray) -> None:
        calib = self.calibration
        miss = np.asarray(miss, dtype=np.int64)
        pool_keys = np.asarray(
            [confusable_pool_key(int(c)) for c in miss], dtype=np.uint64
        )
        anchors = _unit_rows(
            hash_normal_matrix(combine(pool_keys, np.uint64(_POOL_SALT)), self.dim)
        )
        uniques = _unit_rows(
            hash_normal_matrix(
                combine(miss.astype(np.uint64), np.uint64(_UNIQUE_SALT)), self.dim
            )
        )
        protos = _unit_rows(calib.pool_weight * anchors + calib.unique_weight * uniques)
        self._proto_matrix[miss] = protos
        self._proto_known[miss] = True

    def _confuser_classes(self, class_ids: np.ndarray, track_seeds: np.ndarray) -> np.ndarray:
        """Per track, one deterministic confusable neighbour class.

        Grouped by class (cached neighbour arrays) rather than a
        per-row Python loop: picks are vectorized per class group.
        """
        out = np.empty(len(class_ids), dtype=np.int64)
        picks = mix64(combine(track_seeds, np.uint64(_CONFUSER_PICK_SALT)))
        for cid in np.unique(class_ids):
            cid = int(cid)
            neighbours = self._neighbour_cache.get(cid)
            if neighbours is None:
                neighbours = np.asarray(
                    [c for c in confusable_pool(cid) if c != cid],
                    dtype=np.int64,
                )
                self._neighbour_cache[cid] = neighbours
            rows = np.nonzero(class_ids == cid)[0]
            if not len(neighbours):
                out[rows] = cid
            else:
                out[rows] = neighbours[
                    (picks[rows] % np.uint64(len(neighbours))).astype(np.int64)
                ]
        return out

    # -- per-track state (cached across chunks) ----------------------------
    def _track_profiles(self, unique_tracks: np.ndarray,
                        track_classes: np.ndarray):
        """Appearance/confuser data per unique track, cached across calls.

        Everything here is a pure function of the track, yet the live
        ingest path used to rehash it for every pushed chunk; the cache
        makes repeat tracks (every chunk of a live stream) free.
        """
        cache = self._track_cache
        if len(cache) > self.TRACK_CACHE_MAX:
            cache.clear()
        u = len(unique_tracks)
        app0 = np.empty((u, self.dim), dtype=np.float64)
        app1 = np.empty((u, self.dim), dtype=np.float64)
        app_scale = np.empty(u, dtype=np.float64)
        drift_scale = np.empty(u, dtype=np.float64)
        confuser_w = np.empty(u, dtype=np.float64)
        confusers = np.empty(u, dtype=np.int64)
        track_list = unique_tracks.tolist()
        missing = [i for i, t in enumerate(track_list) if t not in cache]
        if missing:
            calib = self.calibration
            m = np.asarray(missing, dtype=np.int64)
            mt = unique_tracks[m]
            m_app0 = _unit_rows(
                hash_normal_matrix(combine(mt, np.uint64(_APP0_SALT)), self.dim)
            )
            m_app1 = _unit_rows(
                hash_normal_matrix(combine(mt, np.uint64(_APP1_SALT)), self.dim)
            )
            lo, hi = _APP_SCALE_RANGE
            m_ascale = lo + (hi - lo) * hash_uniform(
                combine(mt, np.uint64(_APP_SCALE_SALT))
            )
            dlo, dhi = _DRIFT_SCALE_RANGE
            m_dscale = dlo + (dhi - dlo) * hash_uniform(
                combine(mt, np.uint64(_DRIFT_SCALE_SALT))
            )
            m_conf = self._confuser_classes(track_classes[m], mt)
            m_w = calib.confuser_max * hash_uniform(
                combine(mt, np.uint64(_CONFUSER_WEIGHT_SALT))
            )
            for j, i in enumerate(missing):
                cache[track_list[i]] = (
                    m_app0[j], m_app1[j], float(m_ascale[j]),
                    float(m_dscale[j]), int(m_conf[j]), float(m_w[j]),
                )
        for i, track in enumerate(track_list):
            a0, a1, ascale, dscale, conf_cls, conf_w = cache[track]
            app0[i] = a0
            app1[i] = a1
            app_scale[i] = ascale
            drift_scale[i] = dscale
            confusers[i] = conf_cls
            confuser_w[i] = conf_w
        return app0, app1, app_scale, drift_scale, confusers, confuser_w

    # -- extraction --------------------------------------------------------
    def extract(self, table: ObservationTable) -> np.ndarray:
        """Feature matrix [n, dim] (float32) for all rows of ``table``.

        Internally processed in :attr:`BLOCK_ROWS` blocks: every row's
        vector is a pure function of that row, so blocking cannot change
        any output bit, but it keeps the ~25 elementwise intermediate
        arrays cache-resident on large windows.
        """
        n = len(table)
        if n <= self.BLOCK_ROWS:
            return self._extract_block(table)
        out = np.empty((n, self.dim), dtype=np.float32)
        for start in range(0, n, self.BLOCK_ROWS):
            stop = min(start + self.BLOCK_ROWS, n)
            out[start:stop] = self._extract_block(table.slice(start, stop))
        return out

    def _extract_block(self, table: ObservationTable) -> np.ndarray:
        n = len(table)
        if n == 0:
            return np.zeros((0, self.dim), dtype=np.float32)
        calib = self.calibration

        proto = self._prototypes_for(table.class_id)

        track_seeds = table.appearance_seed.astype(np.uint64)
        unique_tracks, first_row_of_track, track_inverse = np.unique(
            track_seeds, return_index=True, return_inverse=True
        )
        track_classes = table.class_id[first_row_of_track]
        (app0, app1, app_scale, drift_scale, confusers,
         confuser_w) = self._track_profiles(unique_tracks, track_classes)
        app_scale = app_scale[:, np.newaxis]
        confuser_w = confuser_w[:, np.newaxis]
        confuser_protos = self._prototypes_for(confusers)

        # appearance rotates drift_angle radians per 10 seconds in view
        time_in_track = table.obs_in_track / max(table.fps, 1e-9)
        theta = (
            calib.drift_angle * drift_scale[track_inverse] * time_in_track / 10.0
        )[:, np.newaxis]
        # the assembly below fuses with out=/in-place ops on arrays this
        # block owns; operand order matches the plain expression term by
        # term, so every output bit is unchanged
        appearance = (app_scale * (app0 * 1.0))[track_inverse]
        np.multiply(appearance, np.cos(theta), out=appearance)
        app_sin = (app_scale * app1)[track_inverse]
        np.multiply(app_sin, np.sin(theta), out=app_sin)
        appearance += app_sin

        noise_scale = calib.noise_scale * self.noise_multiplier
        if noise_scale > 0:
            obs_seeds = combine(
                table.observation_seeds(), np.uint64(self.model_salt), np.uint64(_NOISE_SALT)
            )
            # unit-normalize so the jitter magnitude is noise_scale,
            # independent of dimensionality
            noise = _unit_rows(hash_normal_matrix(obs_seeds, self.dim))
            np.multiply(noise, noise_scale, out=noise)
        else:
            noise = None

        vectors = calib.class_weight * proto
        vectors += (confuser_w * confuser_protos)[track_inverse]
        np.multiply(appearance, calib.appearance_weight, out=appearance)
        vectors += appearance
        if noise is not None:
            vectors += noise

        # hard episodes: short runs of frames where the object is
        # blurred/occluded/badly cropped and its embedding lands far
        # from every manifold.  Episodes are per (track, frame bucket),
        # so consecutive hard observations share one degraded embedding:
        # nearest neighbours stay same-class (Section 2.2.3) while each
        # episode still seeds its own stray cluster -- the candidate-set
        # inflation real deployments see at query time.
        if calib.hard_example_fraction > 0:
            bucket = (table.obs_in_track // _HARD_EPISODE_FRAMES).astype(np.uint64)
            episode_seed = combine(
                table.appearance_seed.astype(np.uint64),
                bucket,
                np.uint64(_HARD_MASK_SALT),
            )
            hard = hash_uniform(episode_seed) < calib.hard_example_fraction
            if hard.any():
                junk = _unit_rows(
                    hash_normal_matrix(
                        combine(episode_seed[hard], np.uint64(_HARD_DIR_SALT)), self.dim
                    )
                )
                vectors[hard] = 0.80 * proto[hard] + 1.00 * junk

        return _unit_rows(vectors).astype(np.float32)

    def extract_chunked(self, table: ObservationTable, chunk_rows: int = 65536):
        """Yield ``(start, stop, features)`` chunks to bound peak memory.

        Chunks are zero-copy row slices (no per-chunk mask build or
        column copies); per-track state is cached across chunks.
        """
        n = len(table)
        for start in range(0, n, chunk_rows):
            stop = min(start + chunk_rows, n)
            yield start, stop, self.extract(table.slice(start, stop))
