"""Feature-vector synthesis (the CNN's penultimate layer).

Section 2.2.3 of the paper establishes the properties Focus relies on:
images with nearby feature vectors are visually similar; the nearest
neighbour of an object's vector (even from cheap ResNet18) is the same
class >99% of the time; and the same physical object across consecutive
frames has nearly identical features, drifting slowly with pose.

We synthesize a tiered geometry (see
:class:`~repro.cnn.calibration.FeatureCalibration`):

    v = normalize( w_c * prototype(class)
                 + w_x * prototype(confusable neighbour)   # per-track pull
                 + w_a * appearance(track, t)              # rotating drift
                 + noise )

* ``prototype(class)`` mixes a shared *pool anchor* with a unique
  direction, so visually-confusable classes (car/taxi/pickup) sit close
  while unrelated classes are nearly orthogonal.
* the *confuser* pull gives each track a random proximity to one
  neighbouring class; loose clustering thresholds therefore absorb
  boundary objects of the wrong class and lose precision -- the paper's
  T trade-off (Section 4.4).
* ``appearance`` rotates with time in view, fragmenting long tracks
  into multiple clusters; consecutive observations stay ~noise apart.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cnn.calibration import FEATURES, FeatureCalibration
from repro.cnn.hashing import combine, hash_normal_matrix, hash_uniform, mix64, stable_salt
from repro.video.classes import confusable_pool, confusable_pool_key
from repro.video.synthesis import ObservationTable

_POOL_SALT = stable_salt("pool-anchor")
_UNIQUE_SALT = stable_salt("class-unique")
_APP0_SALT = stable_salt("appearance-0")
_APP1_SALT = stable_salt("appearance-1")
_NOISE_SALT = stable_salt("feature-noise")
_CONFUSER_PICK_SALT = stable_salt("confuser-pick")
_CONFUSER_WEIGHT_SALT = stable_salt("confuser-weight")
_APP_SCALE_SALT = stable_salt("appearance-scale")
_DRIFT_SCALE_SALT = stable_salt("drift-scale")
_HARD_MASK_SALT = stable_salt("hard-example")
_HARD_DIR_SALT = stable_salt("hard-direction")

#: Length of a hard episode in frames (at the native frame rate).
_HARD_EPISODE_FRAMES = 6

#: Per-track spread of the appearance magnitude and drift rate.  Tracks
#: with a small appearance component sit close to their class manifold
#: and are absorbed by coarse clusters at moderate T, while
#: strong-appearance tracks resist merging -- smearing the cluster-
#: collapse threshold into the gradual precision-vs-T trade-off the
#: paper's tuner navigates (Section 4.4).
_APP_SCALE_RANGE = (0.35, 1.40)
_DRIFT_SCALE_RANGE = (0.50, 1.50)


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class FeatureExtractor:
    """Synthesizes penultimate-layer feature vectors for observations.

    One extractor per classifier model: cheaper models add more
    per-observation noise (``noise_multiplier``) but share the global
    class geometry, mirroring how different CNNs learn comparable but
    differently-sharp embeddings.
    """

    def __init__(
        self,
        model_salt: int,
        noise_multiplier: float = 1.0,
        calibration: FeatureCalibration = FEATURES,
    ):
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.model_salt = model_salt
        self.noise_multiplier = noise_multiplier
        self.calibration = calibration
        self._proto_cache: dict = {}

    @property
    def dim(self) -> int:
        return self.calibration.dim

    # -- class geometry ------------------------------------------------------
    def class_prototype(self, class_id: int) -> np.ndarray:
        """Unit prototype for a class: pool anchor + unique direction."""
        cached = self._proto_cache.get(class_id)
        if cached is not None:
            return cached
        proto = self._prototypes_for(np.asarray([class_id]))[0]
        return proto

    def _prototypes_for(self, class_ids: np.ndarray) -> np.ndarray:
        unique_cls, inverse = np.unique(class_ids, return_inverse=True)
        missing = [c for c in unique_cls if int(c) not in self._proto_cache]
        if missing:
            calib = self.calibration
            miss = np.asarray(missing, dtype=np.int64)
            pool_keys = np.asarray(
                [confusable_pool_key(int(c)) for c in miss], dtype=np.uint64
            )
            anchors = _unit_rows(
                hash_normal_matrix(combine(pool_keys, np.uint64(_POOL_SALT)), self.dim)
            )
            uniques = _unit_rows(
                hash_normal_matrix(
                    combine(miss.astype(np.uint64), np.uint64(_UNIQUE_SALT)), self.dim
                )
            )
            protos = _unit_rows(calib.pool_weight * anchors + calib.unique_weight * uniques)
            for i, c in enumerate(miss):
                self._proto_cache[int(c)] = protos[i]
        return np.stack([self._proto_cache[int(c)] for c in unique_cls])[inverse]

    def _confuser_classes(self, class_ids: np.ndarray, track_seeds: np.ndarray) -> np.ndarray:
        """Per track, one deterministic confusable neighbour class."""
        out = np.empty(len(class_ids), dtype=np.int64)
        picks = mix64(combine(track_seeds, np.uint64(_CONFUSER_PICK_SALT)))
        for i, cid in enumerate(class_ids):
            pool = confusable_pool(int(cid))
            neighbours = [c for c in pool if c != int(cid)]
            if not neighbours:
                out[i] = int(cid)
            else:
                out[i] = neighbours[int(picks[i] % np.uint64(len(neighbours)))]
        return out

    # -- extraction --------------------------------------------------------
    def extract(self, table: ObservationTable) -> np.ndarray:
        """Feature matrix [n, dim] (float32) for all rows of ``table``."""
        n = len(table)
        if n == 0:
            return np.zeros((0, self.dim), dtype=np.float32)
        calib = self.calibration

        proto = self._prototypes_for(table.class_id)

        track_seeds = table.appearance_seed.astype(np.uint64)
        unique_tracks, first_row_of_track, track_inverse = np.unique(
            track_seeds, return_index=True, return_inverse=True
        )

        app0 = _unit_rows(
            hash_normal_matrix(combine(unique_tracks, np.uint64(_APP0_SALT)), self.dim)
        )
        app1 = _unit_rows(
            hash_normal_matrix(combine(unique_tracks, np.uint64(_APP1_SALT)), self.dim)
        )

        # per-track confuser pull toward one neighbouring class
        track_classes = table.class_id[first_row_of_track]
        confusers = self._confuser_classes(track_classes, unique_tracks)
        confuser_protos = self._prototypes_for(confusers)
        confuser_w = (
            calib.confuser_max
            * hash_uniform(combine(unique_tracks, np.uint64(_CONFUSER_WEIGHT_SALT)))
        )[:, np.newaxis]

        # per-track heterogeneity in appearance magnitude and drift rate
        lo, hi = _APP_SCALE_RANGE
        app_scale = (
            lo + (hi - lo) * hash_uniform(combine(unique_tracks, np.uint64(_APP_SCALE_SALT)))
        )[:, np.newaxis]
        dlo, dhi = _DRIFT_SCALE_RANGE
        drift_scale = dlo + (dhi - dlo) * hash_uniform(
            combine(unique_tracks, np.uint64(_DRIFT_SCALE_SALT))
        )

        # appearance rotates drift_angle radians per 10 seconds in view
        time_in_track = table.obs_in_track / max(table.fps, 1e-9)
        theta = (
            calib.drift_angle * drift_scale[track_inverse] * time_in_track / 10.0
        )[:, np.newaxis]
        appearance = (app_scale * (app0 * 1.0))[track_inverse] * np.cos(theta) + (
            app_scale * app1
        )[track_inverse] * np.sin(theta)

        noise_scale = calib.noise_scale * self.noise_multiplier
        if noise_scale > 0:
            obs_seeds = combine(
                table.observation_seeds(), np.uint64(self.model_salt), np.uint64(_NOISE_SALT)
            )
            # unit-normalize so the jitter magnitude is noise_scale,
            # independent of dimensionality
            noise = _unit_rows(hash_normal_matrix(obs_seeds, self.dim)) * noise_scale
        else:
            noise = 0.0

        vectors = (
            calib.class_weight * proto
            + (confuser_w * confuser_protos)[track_inverse]
            + calib.appearance_weight * appearance
            + noise
        )

        # hard episodes: short runs of frames where the object is
        # blurred/occluded/badly cropped and its embedding lands far
        # from every manifold.  Episodes are per (track, frame bucket),
        # so consecutive hard observations share one degraded embedding:
        # nearest neighbours stay same-class (Section 2.2.3) while each
        # episode still seeds its own stray cluster -- the candidate-set
        # inflation real deployments see at query time.
        if calib.hard_example_fraction > 0:
            bucket = (table.obs_in_track // _HARD_EPISODE_FRAMES).astype(np.uint64)
            episode_seed = combine(
                table.appearance_seed.astype(np.uint64),
                bucket,
                np.uint64(_HARD_MASK_SALT),
            )
            hard = hash_uniform(episode_seed) < calib.hard_example_fraction
            if hard.any():
                junk = _unit_rows(
                    hash_normal_matrix(
                        combine(episode_seed[hard], np.uint64(_HARD_DIR_SALT)), self.dim
                    )
                )
                vectors[hard] = 0.80 * proto[hard] + 1.00 * junk

        return _unit_rows(vectors).astype(np.float32)

    def extract_chunked(self, table: ObservationTable, chunk_rows: int = 65536):
        """Yield ``(start, stop, features)`` chunks to bound peak memory."""
        n = len(table)
        for start in range(0, n, chunk_rows):
            stop = min(start + chunk_rows, n)
            mask = np.zeros(n, dtype=bool)
            mask[start:stop] = True
            yield start, stop, self.extract(table.select(mask))
