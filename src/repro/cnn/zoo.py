"""The model zoo: ground truth and the paper's named cheap CNNs.

Costs are pinned to the ratios the paper publishes: ResNet152 is the
GT-CNN at 11.4 GFLOPs (77 images/s on a K80, Section 2.1); the three
CheapCNNs of Figure 5 are 7x, 28x and 58x cheaper (ResNet18 at 224 px,
ResNet18 minus 3 layers at 112 px, ResNet18 minus 5 layers at 56 px).
Dispersions are fit to Figure 5's recall curves: 90% recall at
K >= 60 / 100 / 200 respectively.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cnn.costs import ArchSpec
from repro.cnn.model import ClassifierModel

_GT_GFLOPS = 11.4


def resnet152() -> ClassifierModel:
    """The ground-truth CNN (GT-CNN) used throughout the paper."""
    arch = ArchSpec(family="resnet", conv_layers=152, input_px=224, gflops_override=_GT_GFLOPS)
    return ClassifierModel(name="resnet152", arch=arch, dispersion=0.0, feature_noise=0.5)


def resnet18() -> ClassifierModel:
    """ResNet18: the paper's reference cheap model (~7-8x cheaper)."""
    arch = ArchSpec(
        family="resnet", conv_layers=18, input_px=224, gflops_override=_GT_GFLOPS / 7.0
    )
    return ClassifierModel(name="resnet18", arch=arch, dispersion=24.0, feature_noise=1.0)


#: (name, conv_layers, input_px, cheaper-than-GT factor, dispersion)
_CHEAP_SPECS = [
    ("cheapcnn1", 18, 224, 7.0, 24.0),
    ("cheapcnn2", 15, 112, 28.0, 41.0),
    ("cheapcnn3", 13, 56, 58.0, 81.0),
]


def cheap_cnn(i: int) -> ClassifierModel:
    """CheapCNN{i} from Figure 5 (i in 1..3)."""
    if not 1 <= i <= len(_CHEAP_SPECS):
        raise ValueError("cheap_cnn index must be in 1..%d" % len(_CHEAP_SPECS))
    name, layers, px, factor, dispersion = _CHEAP_SPECS[i - 1]
    arch = ArchSpec(
        family="resnet", conv_layers=layers, input_px=px, gflops_override=_GT_GFLOPS / factor
    )
    return ClassifierModel(
        name=name, arch=arch, dispersion=dispersion, feature_noise=1.0 + 0.25 * (i - 1)
    )


CHEAP_CNN_FAMILY = tuple(range(1, len(_CHEAP_SPECS) + 1))

GROUND_TRUTH = resnet152()


def alexnet() -> ClassifierModel:
    """AlexNet: a user-suppliable alternative architecture (Section 4.1)."""
    arch = ArchSpec(family="alexnet", conv_layers=8, input_px=224, gflops_override=0.72)
    return ClassifierModel(name="alexnet", arch=arch, dispersion=34.0, feature_noise=1.4)


def vgg16() -> ClassifierModel:
    """VGG16: accurate but expensive; anchors the costly end of the search."""
    arch = ArchSpec(family="vgg", conv_layers=16, input_px=224, gflops_override=15.5)
    return ClassifierModel(name="vgg16", arch=arch, dispersion=4.0, feature_noise=0.7)


def generic_candidates() -> List[ClassifierModel]:
    """The generic (unspecialized) cheap-CNN search space of Section 4.1."""
    return [cheap_cnn(i) for i in CHEAP_CNN_FAMILY] + [alexnet()]


def model_by_name(name: str) -> ClassifierModel:
    """Reconstruct a zoo model from its persisted name.

    Crash recovery rebuilds ingest configurations from the descriptor a
    durable checkpoint records; every generic zoo model is addressable
    by name.  Specialized models carry stream-derived head classes and
    are *not* reconstructible this way -- recovering such a stream
    requires passing its :class:`~repro.core.config.FocusConfig`
    explicitly.
    """
    registry = {
        "resnet152": resnet152,
        "resnet18": resnet18,
        "alexnet": alexnet,
        "vgg16": vgg16,
    }
    registry.update(
        {
            spec[0]: (lambda i=i: cheap_cnn(i))
            for i, spec in enumerate(_CHEAP_SPECS, start=1)
        }
    )
    try:
        return registry[name]()
    except KeyError:
        raise KeyError(
            "no zoo model named %r (specialized models must be supplied "
            "explicitly at recovery)" % name
        )
