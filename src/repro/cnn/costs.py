"""Architecture-derived inference cost model.

The paper's two performance metrics are pure GPU time (Section 6.1),
so reproducing them requires a credible mapping

    architecture (layers, input resolution) -> FLOPs -> GPU-seconds.

We model a family's FLOPs as ``coefficient * conv_layers *
(input_px / 224) ** resolution_exponent`` and calibrate the
coefficients against published model costs (ResNet152 ~11.4 GFLOPs,
ResNet18 ~1.8, AlexNet ~0.7, VGG16 ~15.5).  GPU throughput is
calibrated to the paper's anchor: ResNet152 classifies 77 images/second
on an NVIDIA K80 (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional


#: FLOPs-per-conv-layer coefficients (GFLOPs at 224 px input).
_FAMILY_COEFF: Dict[str, float] = {
    "resnet": 0.075,
    "alexnet": 0.0875,
    "vgg": 0.97,
    "specialized": 0.075,
}

#: Sub-quadratic resolution scaling: early layers dominate compressed
#: models, and their cost shrinks slower than the pixel count.
RESOLUTION_EXPONENT = 1.7

REFERENCE_INPUT_PX = 224


@dataclass(frozen=True)
class ArchSpec:
    """A classifier architecture: family, depth, and input resolution."""

    family: str
    conv_layers: int
    input_px: int = REFERENCE_INPUT_PX
    gflops_override: Optional[float] = None

    def __post_init__(self):
        if self.family not in _FAMILY_COEFF:
            raise ValueError(
                "unknown family %r; known: %s" % (self.family, sorted(_FAMILY_COEFF))
            )
        if self.conv_layers < 1:
            raise ValueError("conv_layers must be >= 1")
        if self.input_px < 8:
            raise ValueError("input_px must be >= 8")

    @property
    def gflops(self) -> float:
        """Estimated GFLOPs per inference."""
        if self.gflops_override is not None:
            return self.gflops_override
        scale = (self.input_px / REFERENCE_INPUT_PX) ** RESOLUTION_EXPONENT
        return _FAMILY_COEFF[self.family] * self.conv_layers * scale

    def with_layers_removed(self, n: int) -> "ArchSpec":
        """Compression: drop ``n`` convolutional layers (Section 2.1)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if self.conv_layers - n < 1:
            raise ValueError(
                "cannot remove %d layers from a %d-layer model" % (n, self.conv_layers)
            )
        return replace(self, conv_layers=self.conv_layers - n, gflops_override=None)

    def with_input_px(self, px: int) -> "ArchSpec":
        """Compression: rescale the input image (Section 2.1)."""
        return replace(self, input_px=px, gflops_override=None)


@dataclass(frozen=True)
class GPUSpec:
    """A GPU's effective classification throughput.

    ``effective_gflops`` is calibrated, not peak: it is chosen so the
    anchor model achieves its published images/second.
    """

    name: str
    effective_gflops: float

    def images_per_second(self, arch: ArchSpec) -> float:
        return self.effective_gflops / arch.gflops


#: ResNet152 (11.4 GFLOPs) at 77 images/s => ~878 effective GFLOPs.
K80 = GPUSpec(name="NVIDIA K80", effective_gflops=11.4 * 77.0)

#: The paper's experiment platform GPU (Section 6.1); roughly 2.2x K80.
TITAN_X = GPUSpec(name="NVIDIA GTX Titan X", effective_gflops=11.4 * 170.0)

DEFAULT_GPU = K80


def inference_seconds(arch: ArchSpec, gpu: GPUSpec = DEFAULT_GPU, batch: int = 1) -> float:
    """GPU-seconds to classify ``batch`` images with ``arch`` on ``gpu``."""
    if batch < 0:
        raise ValueError("batch must be non-negative")
    return batch * arch.gflops / gpu.effective_gflops
