"""Video-specific CNN specialization (Section 4.3).

A specialized model is retrained on the Ls most frequent classes of one
stream plus an "OTHER" bucket.  Differentiating ~tens of constrained
classes instead of 1000 generic ones makes the model both cheaper
(paper: ~10x cheaper than even the generic compressed CNN, 7-71x
cheaper than GT overall) and more accurate (K = 2-4 suffices for the
top-K index instead of 60-200).

The specialized model's output space is {head classes} + {OTHER}; a
query for a class outside the head is served through the OTHER bucket
(all OTHER-matching clusters are verified with GT-CNN at query time).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cnn.calibration import INGEST, NOISE
from repro.cnn.costs import ArchSpec
from repro.cnn.hashing import combine, hash_uniform, mix64, stable_salt
from repro.cnn.model import ClassifierModel
from repro.cnn.noise import true_class_ranks
from repro.video.synthesis import ObservationTable

#: Sentinel class id for the specialized model's OTHER bucket.
OTHER_CLASS = -1

#: Specialized models never get cheaper than this factor vs an 11.4
#: GFLOP GT-CNN -- there is a floor to how small a useful stream-specific
#: model can be.  Together with pixel differencing (~1.4x) this puts the
#: cheapest ingest configurations at ~140x, the paper's Opt-Ingest max.
_MIN_GFLOPS = 11.4 / 100.0

_SLOT_SALT = stable_salt("spec-slot")


def specialized_dispersion(source: ClassifierModel, ls: int, cost_divisor: float) -> float:
    """Dispersion of a specialized model within its Ls+1-class space.

    Fit so that typical configurations reach the paper's operating
    point: K = 2-4 meets a 95%+ recall target (Section 4.3).  More head
    classes and cheaper sources both make the task slightly harder.
    """
    base = 0.45 + 0.010 * ls
    source_penalty = (max(source.dispersion, 1.0) / 24.0) ** 0.5
    divisor_penalty = (cost_divisor / INGEST.specialization_cost_divisor) ** 0.35
    return base * source_penalty * divisor_penalty


class SpecializedClassifier(ClassifierModel):
    """A per-stream specialized classifier with an OTHER bucket."""

    def __init__(
        self,
        name: str,
        arch: ArchSpec,
        dispersion: float,
        head_classes: Sequence[int],
        source_name: str,
        feature_noise: float = 1.0,
        confusion_mass: float = NOISE.specialized_confusion_mass,
    ):
        head = [int(c) for c in head_classes]
        if len(head) != len(set(head)):
            raise ValueError("head_classes must be distinct")
        if OTHER_CLASS in head:
            raise ValueError("OTHER_CLASS cannot be a head class")
        if not head:
            raise ValueError("a specialized model needs at least one head class")
        super().__init__(
            name=name,
            arch=arch,
            dispersion=dispersion,
            feature_noise=feature_noise,
            num_classes=len(head) + 1,
        )
        self.head_classes = np.asarray(sorted(head), dtype=np.int64)
        self.head_set = frozenset(head)
        self.source_name = source_name
        self.confusion_mass = confusion_mass

    # -- class-space mapping -------------------------------------------------
    @property
    def ls(self) -> int:
        return len(self.head_classes)

    @property
    def space_size(self) -> int:
        return self.ls + 1

    def space_tokens(self) -> List[int]:
        """All output tokens: head class ids plus OTHER_CLASS."""
        return [int(c) for c in self.head_classes] + [OTHER_CLASS]

    def map_to_space(self, class_ids: np.ndarray) -> np.ndarray:
        """Map true class ids onto the model's output space."""
        class_ids = np.asarray(class_ids)
        in_head = np.isin(class_ids, self.head_classes)
        mapped = np.where(in_head, class_ids, OTHER_CLASS)
        return mapped

    def knows(self, class_id: int) -> bool:
        return class_id in self.head_set or class_id == OTHER_CLASS

    def query_token(self, class_id: int) -> int:
        """The index token used to query for a class: itself if in the
        head, otherwise OTHER (Section 4.3, '"OTHER" class')."""
        return class_id if class_id in self.head_set else OTHER_CLASS

    # -- classification ------------------------------------------------------
    def ranks(self, table: ObservationTable) -> np.ndarray:
        """Rank of the *mapped* true label within the Ls+1 space."""
        return true_class_ranks(
            self.salt,
            table.observation_seeds(),
            table.difficulty,
            self.dispersion,
            self.space_size,
        )

    def _slot_probability(self) -> float:
        """P(one spurious slot == a given other token), uniform in-space."""
        if self.space_size <= 1:
            return 0.0
        return self.confusion_mass / (self.space_size - 1)

    def topk_membership(
        self, table: ObservationTable, query_class: int, k: int
    ) -> np.ndarray:
        """Whether the query token appears in each observation's top-K.

        ``query_class`` may be a head class id or OTHER_CLASS; callers
        querying a tail class should first map through
        :meth:`query_token`.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        token = query_class
        if token != OTHER_CLASS and token not in self.head_set:
            raise ValueError(
                "class %d is not in this specialized model's space; "
                "query via query_token()" % token
            )
        mapped = self.map_to_space(table.class_id)
        ranks = self.ranks(table)
        member = (mapped == token) & (ranks <= k)
        others = mapped != token
        if others.any() and k > 1:
            p_member = 1.0 - (1.0 - self._slot_probability()) ** (k - 1)
            u = hash_uniform(
                combine(
                    table.observation_seeds(),
                    np.uint64(self.salt),
                    np.uint64(stable_salt("spec-member:%d" % token)),
                )
            )
            member |= others & (u < p_member)
        return member

    def topk_list(
        self, obs_seed: int, true_class: int, difficulty: float, k: int
    ) -> List[int]:
        """Materialized ranked top-K token list for one observation."""
        return self.topk_lists(
            np.asarray([obs_seed], dtype=np.uint64),
            np.asarray([true_class], dtype=np.int64),
            np.asarray([difficulty], dtype=np.float64),
            k,
        )[0]

    def topk_lists(
        self,
        obs_seeds: np.ndarray,
        true_classes: np.ndarray,
        difficulties: np.ndarray,
        k: int,
    ) -> List[List[int]]:
        """Batched :meth:`topk_list` over the specialized token space.

        Overrides the generic-model batch path: specialized entries are
        a deterministic per-object shuffle of the Ls+1 token space, not
        confusion-pool draws.  The shuffle keys are hashed as one grid.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        obs_seeds = np.asarray(obs_seeds, dtype=np.uint64)
        true_classes = np.asarray(true_classes, dtype=np.int64)
        mapped = self.map_to_space(true_classes)
        ranks = true_class_ranks(
            self.salt, obs_seeds, np.asarray(difficulties, dtype=np.float64),
            self.dispersion, self.space_size,
        )
        k_eff = min(k, self.space_size)
        all_tokens = self.space_tokens()
        n_other = len(all_tokens) - 1
        # deterministic shuffle of the other tokens, seeded per object
        keys = combine(
            obs_seeds, np.uint64(self.salt), np.uint64(_SLOT_SALT)
        )[:, np.newaxis]
        with np.errstate(over="ignore"):
            grid = mix64(keys + np.arange(n_other, dtype=np.uint64)[np.newaxis, :])
        orders = np.argsort(grid, axis=1)
        out: List[List[int]] = []
        for i in range(len(obs_seeds)):
            token = int(mapped[i])
            rank = int(ranks[i])
            tokens = [t for t in all_tokens if t != token]
            shuffled = [tokens[j] for j in orders[i]]
            ranked: List[int] = []
            slot_iter = iter(shuffled)
            for position in range(1, k_eff + 1):
                if position == rank:
                    ranked.append(token)
                else:
                    try:
                        ranked.append(next(slot_iter))
                    except StopIteration:
                        break
            out.append(ranked)
        return out

    def predicted_top1(self, table: ObservationTable) -> np.ndarray:
        """Top-most token per observation (in-space)."""
        mapped = self.map_to_space(table.class_id)
        ranks = self.ranks(table)
        predicted = mapped.copy()
        wrong = ranks > 1
        if wrong.any():
            idx = np.nonzero(wrong)[0]
            seeds = table.observation_seeds()[idx]
            tokens = np.asarray(self.space_tokens(), dtype=np.int64)
            picks = (mix64(combine(seeds, np.uint64(self.salt), np.uint64(_SLOT_SALT)))
                     % np.uint64(len(tokens))).astype(np.int64)
            predicted[idx] = tokens[picks]
        return predicted


def head_classes_from_histogram(histogram: Mapping[int, int], ls: int) -> List[int]:
    """The Ls most frequent classes of a sampled ground-truth histogram."""
    if ls < 1:
        raise ValueError("ls must be >= 1")
    ranked = sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
    return [cid for cid, _ in ranked[:ls]]


def specialize(
    source: ClassifierModel,
    histogram: Mapping[int, int],
    ls: int,
    stream: str,
    cost_divisor: float = None,
) -> SpecializedClassifier:
    """Build a per-stream specialized model (Section 4.3, Model Retraining).

    Args:
        source: the generic compressed model the specialization starts
            from (its architecture family and cost anchor).
        histogram: class -> count from a GT-CNN-labelled sample of the
            stream (the periodic ground-truth sampling of Section 4.3).
        ls: number of head classes to retain.
        stream: stream name (specialized models are per-stream; the
            name also seeds the model's noise so two streams' models
            behave independently).
        cost_divisor: how much cheaper than the source the specialized
            model is; defaults to the calibrated ~10x of Section 4.3.
    """
    if not histogram:
        raise ValueError("histogram is empty; sample the stream first")
    divisor = INGEST.specialization_cost_divisor if cost_divisor is None else cost_divisor
    if divisor <= 0:
        raise ValueError("cost_divisor must be positive")
    head = head_classes_from_histogram(histogram, ls)
    ls_actual = len(head)
    gflops = max(source.gflops / divisor * (1.0 + 0.004 * ls_actual), _MIN_GFLOPS)
    arch = ArchSpec(
        family="specialized",
        conv_layers=max(1, source.arch.conv_layers * 2 // 3),
        input_px=max(8, source.arch.input_px // 2),
        gflops_override=gflops,
    )
    dispersion = specialized_dispersion(source, ls_actual, divisor)
    name = "spec-%s-%s-ls%d-d%g" % (stream, source.name, ls_actual, divisor)
    return SpecializedClassifier(
        name=name,
        arch=arch,
        dispersion=dispersion,
        head_classes=head,
        source_name=source.name,
        feature_noise=source.feature_noise * 0.8,
    )


def specialization_ladder(
    sources: Sequence[ClassifierModel],
    histogram: Mapping[int, int],
    stream: str,
    ls_values: Sequence[int] = (5, 10, 20, 50),
    cost_divisors: Sequence[float] = (6.0, 10.0),
) -> List[SpecializedClassifier]:
    """The specialized-model search space added to the ingest candidates."""
    ladder = []
    available = len(histogram)
    if available == 0:
        return ladder
    seen = set()
    for source in sources:
        for ls in ls_values:
            ls_actual = min(ls, available)
            for divisor in cost_divisors:
                key = (source.name, ls_actual, divisor)
                if key in seen:
                    continue
                seen.add(key)
                ladder.append(
                    specialize(source, histogram, ls_actual, stream, cost_divisor=divisor)
                )
    return ladder
