"""Simulated CNN substrate.

The paper's pipeline uses real CNNs (ResNet152 as the ground-truth
model; compressed and specialized ResNet/AlexNet/VGG variants at ingest)
running on GPUs.  Neither GPUs nor trained models are available offline,
so this package substitutes *simulated classifiers* that expose exactly
the three things Focus consumes from a CNN:

1. a ranked list of classes per object (modelled by a seeded
   rank-dispersion noise process, calibrated to the recall-vs-K curves
   of Figure 5),
2. a feature vector from the penultimate layer (modelled as a class
   prototype plus a persistent per-track appearance component plus
   drift, reproducing the >99% nearest-neighbour same-class property of
   Section 2.2.3), and
3. a per-inference GPU-time cost (an architecture-derived FLOPs model
   calibrated so ResNet152 classifies 77 images/second on one GPU,
   Section 2.1).

Because Focus never inspects CNN internals, a substrate that reproduces
these three interfaces exercises every Focus mechanism and trade-off.
"""

from repro.cnn.costs import ArchSpec, GPUSpec, K80, TITAN_X, inference_seconds
from repro.cnn.model import ClassifierModel, ClassificationResult
from repro.cnn.zoo import (
    GROUND_TRUTH,
    resnet152,
    resnet18,
    cheap_cnn,
    CHEAP_CNN_FAMILY,
    generic_candidates,
)
from repro.cnn.compression import compress, compression_ladder
from repro.cnn.specialize import SpecializedClassifier, specialize, OTHER_CLASS
from repro.cnn.features import FeatureExtractor

__all__ = [
    "ArchSpec",
    "GPUSpec",
    "K80",
    "TITAN_X",
    "inference_seconds",
    "ClassifierModel",
    "ClassificationResult",
    "GROUND_TRUTH",
    "resnet152",
    "resnet18",
    "cheap_cnn",
    "CHEAP_CNN_FAMILY",
    "generic_candidates",
    "compress",
    "compression_ladder",
    "SpecializedClassifier",
    "specialize",
    "OTHER_CLASS",
    "FeatureExtractor",
]
