"""The simulated classifier model.

``ClassifierModel`` bundles the three interfaces Focus consumes from a
CNN -- ranked classification output, penultimate-layer features, and
per-inference GPU cost -- behind one object.  All classification
behaviour is a pure function of (model, observation), vectorized over
:class:`~repro.video.synthesis.ObservationTable` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cnn.costs import ArchSpec, GPUSpec, DEFAULT_GPU, inference_seconds
from repro.cnn.features import FeatureExtractor
from repro.cnn.hashing import combine, hash_uniform, mix64, stable_salt
from repro.cnn.noise import ConfusionModel, default_confusion, true_class_ranks
from repro.video.classes import NUM_CLASSES
from repro.video.synthesis import ObservationTable


@dataclass(frozen=True)
class ClassificationResult:
    """Ranked output of one model on one object (single-object API)."""

    model_name: str
    ranked_classes: List[int]
    true_class: int
    true_rank: int

    @property
    def top1(self) -> int:
        return self.ranked_classes[0]

    def contains(self, class_id: int, k: Optional[int] = None) -> bool:
        prefix = self.ranked_classes if k is None else self.ranked_classes[:k]
        return class_id in prefix


class ClassifierModel:
    """A simulated image classifier.

    Attributes:
        name: unique model name (also seeds its noise).
        arch: architecture (drives the GPU-cost model).
        dispersion: rank-dispersion constant; 0 means ground truth.
            ``recall@K ~= 1 - exp(-K / (dispersion * difficulty))``.
        feature_noise: multiplier on per-observation feature jitter
            (cheaper models embed less sharply).
        num_classes: size of the model's output space.
    """

    def __init__(
        self,
        name: str,
        arch: ArchSpec,
        dispersion: float,
        feature_noise: float = 1.0,
        num_classes: int = NUM_CLASSES,
        confusion: Optional[ConfusionModel] = None,
    ):
        if dispersion < 0:
            raise ValueError("dispersion must be non-negative")
        self.name = name
        self.arch = arch
        self.dispersion = dispersion
        self.feature_noise = feature_noise
        self.num_classes = num_classes
        self.confusion = confusion or default_confusion()
        self.salt = stable_salt("model:" + name)
        self._extractor = FeatureExtractor(self.salt, noise_multiplier=feature_noise)

    # -- cost --------------------------------------------------------------
    @property
    def gflops(self) -> float:
        return self.arch.gflops

    def cost_seconds(self, n_inferences: int = 1, gpu: GPUSpec = DEFAULT_GPU) -> float:
        """GPU-seconds to classify ``n_inferences`` objects."""
        return inference_seconds(self.arch, gpu, batch=n_inferences)

    def cheaper_than(self, other: "ClassifierModel") -> float:
        """Cost ratio ``other / self`` (how many times cheaper this is)."""
        return other.gflops / self.gflops

    @property
    def is_ground_truth(self) -> bool:
        return self.dispersion == 0

    # -- classification ------------------------------------------------------
    def ranks(self, table: ObservationTable) -> np.ndarray:
        """Rank of each observation's true class in this model's output."""
        return true_class_ranks(
            self.salt,
            table.observation_seeds(),
            table.difficulty,
            self.dispersion,
            self.num_classes,
        )

    def top1_correct(self, table: ObservationTable) -> np.ndarray:
        """Whether the model's most-confident class is the true class."""
        return self.ranks(table) == 1

    def predicted_top1(self, table: ObservationTable) -> np.ndarray:
        """The model's top-most class per observation.

        The ground-truth model always answers the true class; cheap
        models answer a confusion draw whenever their true-class rank
        slipped below 1.
        """
        ranks = self.ranks(table)
        predicted = table.class_id.copy()
        wrong = ranks > 1
        if wrong.any():
            idx = np.nonzero(wrong)[0]
            seeds = table.observation_seeds()[idx]
            for j, row in enumerate(idx):
                slots = self.confusion.sample_slots(
                    self.salt, int(seeds[j]), int(table.class_id[row]), 1
                )
                predicted[row] = slots[0]
        return predicted

    def topk_membership(
        self, table: ObservationTable, query_class: int, k: int
    ) -> np.ndarray:
        """Whether ``query_class`` appears in each observation's top-K.

        Union of (a) the true class ranking within K and (b) the
        spurious-slot confusion process -- the two ways a class enters a
        top-K index entry (Section 4.1).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        ranks = self.ranks(table)
        member = (table.class_id == query_class) & (ranks <= k)
        others = table.class_id != query_class
        if others.any() and k > 1:
            seeds = table.observation_seeds()
            spurious = self.confusion.spurious_membership(
                self.salt, seeds, table.class_id, query_class, k
            )
            member |= others & spurious
        return member

    def topk_list(
        self, obs_seed: int, true_class: int, difficulty: float, k: int
    ) -> List[int]:
        """Materialized ranked top-K class list for one observation.

        Used when the ingest index is written out explicitly.  The true
        class sits at its sampled rank when that rank is within K;
        spurious confusion classes fill the remaining slots.
        """
        return self.topk_lists(
            np.asarray([obs_seed], dtype=np.uint64),
            np.asarray([true_class], dtype=np.int64),
            np.asarray([difficulty], dtype=np.float64),
            k,
        )[0]

    def topk_lists(
        self,
        obs_seeds: np.ndarray,
        true_classes: np.ndarray,
        difficulties: np.ndarray,
        k: int,
    ) -> List[List[int]]:
        """:meth:`topk_list` for a batch of observations.

        Index materialization calls this once per chunk/build instead
        of per cluster: ranks and the spurious-slot draws are generated
        vectorized (the per-centroid scalar path used to dominate
        materialized-index ingest).  Bit-identical to mapping
        :meth:`topk_list` over the rows.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        obs_seeds = np.asarray(obs_seeds, dtype=np.uint64)
        true_classes = np.asarray(true_classes, dtype=np.int64)
        ranks = true_class_ranks(
            self.salt, obs_seeds, np.asarray(difficulties, dtype=np.float64),
            self.dispersion, self.num_classes,
        )
        k_eff = min(k, self.num_classes)
        needed = np.where(ranks <= k_eff, k_eff - 1, k_eff)
        slots = self.confusion.sample_slots_batch(
            self.salt, obs_seeds, true_classes, needed
        )
        out: List[List[int]] = []
        for i in range(len(obs_seeds)):
            rank = int(ranks[i])
            ranked: List[int] = []
            slot_iter = iter(slots[i])
            for position in range(1, k_eff + 1):
                if position == rank:
                    ranked.append(int(true_classes[i]))
                else:
                    try:
                        ranked.append(next(slot_iter))
                    except StopIteration:
                        break
            out.append(ranked)
        return out

    def classify_one(
        self, obs_seed: int, true_class: int, difficulty: float, k: int = 5
    ) -> ClassificationResult:
        """Single-object classification (examples / interactive use)."""
        ranked = self.topk_list(obs_seed, true_class, difficulty, k)
        seeds = np.asarray([obs_seed], dtype=np.uint64)
        rank = int(
            true_class_ranks(
                self.salt, seeds, np.asarray([difficulty]), self.dispersion, self.num_classes
            )[0]
        )
        return ClassificationResult(
            model_name=self.name,
            ranked_classes=ranked,
            true_class=true_class,
            true_rank=rank,
        )

    # -- features -------------------------------------------------------------
    @property
    def feature_dim(self) -> int:
        return self._extractor.dim

    def features(self, table: ObservationTable) -> np.ndarray:
        """Penultimate-layer feature vectors [n, dim]."""
        return self._extractor.extract(table)

    def feature_extractor(self) -> FeatureExtractor:
        return self._extractor

    # -- misc --------------------------------------------------------------
    def expected_recall_at_k(self, k: int, difficulty: float = 1.0) -> float:
        """Analytic recall@K under the rank-dispersion model."""
        if self.dispersion == 0:
            return 1.0
        return 1.0 - float(np.exp(-k / (self.dispersion * difficulty)))

    def k_for_recall(self, recall: float, difficulty: float = 1.0) -> int:
        """Smallest K achieving ``recall`` under the analytic model."""
        if not 0.0 < recall < 1.0:
            raise ValueError("recall must be in (0, 1)")
        if self.dispersion == 0:
            return 1
        k = -self.dispersion * difficulty * np.log(1.0 - recall)
        return max(1, int(np.ceil(k)))

    def __repr__(self) -> str:
        return "ClassifierModel(name=%r, gflops=%.3f, dispersion=%.2f)" % (
            self.name,
            self.gflops,
            self.dispersion,
        )
