"""Synthetic video substrate.

The paper evaluates Focus on 150+ hours of real video from 13 live
streams (Table 1).  Offline, we substitute a seeded synthetic scene
generator that reproduces the *statistical structure* those videos are
shown to have in Section 2.2 of the paper:

* a limited, power-law-distributed set of object classes per stream
  (3-10% of classes cover >= 95% of objects; 22-69% of the 1000
  classes ever appear; mean Jaccard index between streams ~= 0.46),
* one-third to one-half of frames with no moving objects,
* objects that persist across consecutive frames with near-identical
  appearance (the basis of Focus's clustering).

Every Focus mechanism downstream consumes objects, labels, feature
vectors and GPU-time costs -- never raw pixels -- so a generator that
matches these statistics exercises the same code paths and trade-offs
as the paper's real videos.  A small pixel-level rendering path
(:mod:`repro.video.frames`) exists so the background-subtraction
detector substrate can be exercised end-to-end on short clips.
"""

from repro.video.classes import (
    NUM_CLASSES,
    class_name,
    class_id,
    domain_pool,
    DOMAINS,
)
from repro.video.profiles import StreamProfile, STREAMS, get_profile, stream_names
from repro.video.tracks import Track, TrackGenerator
from repro.video.synthesis import ObservationTable, SceneGenerator, generate_observations
from repro.video.sampling import resample_fps
from repro.video.frames import FrameRenderer, RenderedClip

__all__ = [
    "NUM_CLASSES",
    "class_name",
    "class_id",
    "domain_pool",
    "DOMAINS",
    "StreamProfile",
    "STREAMS",
    "get_profile",
    "stream_names",
    "Track",
    "TrackGenerator",
    "ObservationTable",
    "SceneGenerator",
    "generate_observations",
    "resample_fps",
    "FrameRenderer",
    "RenderedClip",
]
