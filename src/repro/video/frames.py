"""Pixel-level frame rendering for the detector substrate.

Most of the reproduction operates on object observations directly, but
the paper's pipeline starts from pixels: background subtraction
(OpenCV's MOG in the paper, Section 6.1) extracts moving objects from
frames.  This module renders short synthetic clips -- a static textured
background plus moving bright rectangles, one per track -- so the
:mod:`repro.detect` substrate can be exercised end to end and validated
against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.video.tracks import TrackArrays


@dataclass(frozen=True)
class GroundTruthBox:
    """Axis-aligned ground-truth box of one object in one frame."""

    track_id: int
    class_id: int
    x: int
    y: int
    w: int
    h: int

    def intersects(self, other: "GroundTruthBox") -> bool:
        return not (
            self.x + self.w <= other.x
            or other.x + other.w <= self.x
            or self.y + self.h <= other.y
            or other.y + other.h <= self.y
        )


@dataclass
class RenderedClip:
    """A rendered clip: frames plus per-frame ground truth."""

    frames: np.ndarray  # uint8 [T, H, W]
    fps: float
    boxes: List[List[GroundTruthBox]]  # per frame

    @property
    def num_frames(self) -> int:
        return int(self.frames.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return int(self.frames.shape[1]), int(self.frames.shape[2])


class FrameRenderer:
    """Renders tracks into grayscale pixel frames.

    Object sizes and trajectories derive deterministically from each
    track's ``appearance_seed``, so rendering is reproducible and the
    same track keeps a consistent appearance across frames -- the
    property background subtraction and pixel differencing rely on.
    """

    def __init__(
        self,
        height: int = 96,
        width: int = 160,
        background_seed: int = 7,
        noise_std: float = 2.0,
    ):
        if height < 16 or width < 16:
            raise ValueError("frame dimensions must be at least 16x16")
        self.height = height
        self.width = width
        self.noise_std = noise_std
        rng = np.random.RandomState(background_seed)
        base = rng.uniform(60, 120, size=(height // 8 + 1, width // 8 + 1))
        self.background = np.kron(base, np.ones((8, 8)))[:height, :width].astype(np.float64)

    def _object_geometry(self, seed: int, duration_s: float) -> Tuple[int, int, float, float, float, float, float]:
        rng = np.random.RandomState(seed % (2 ** 31))
        w = int(rng.randint(8, max(9, self.width // 5)))
        h = int(rng.randint(6, max(7, self.height // 4)))
        # Enter on the left or right edge, cross horizontally with a
        # small vertical drift; speed set to cross in the track duration.
        left_to_right = rng.rand() < 0.5
        x0 = -w if left_to_right else self.width
        y0 = rng.uniform(0, self.height - h)
        vx = (self.width + w) / max(duration_s, 0.5) * (1 if left_to_right else -1)
        vy = rng.uniform(-2.0, 2.0)
        intensity = rng.uniform(150, 240)
        return w, h, x0, y0, vx, vy, intensity

    def render(self, tracks: TrackArrays, duration_s: float, fps: float = 10.0) -> RenderedClip:
        """Render ``duration_s`` seconds at ``fps`` from ``tracks``."""
        num_frames = max(1, int(round(duration_s * fps)))
        noise_rng = np.random.RandomState(12345)
        frames = np.empty((num_frames, self.height, self.width), dtype=np.uint8)
        boxes: List[List[GroundTruthBox]] = []

        geometry = {
            int(tracks.track_id[i]): self._object_geometry(
                int(tracks.appearance_seed[i]), float(tracks.duration_s[i])
            )
            for i in range(len(tracks))
        }

        for f in range(num_frames):
            t = f / fps
            canvas = self.background + noise_rng.normal(0.0, self.noise_std, self.background.shape)
            frame_boxes: List[GroundTruthBox] = []
            for i in range(len(tracks)):
                start = float(tracks.start_s[i])
                end = start + float(tracks.duration_s[i])
                if not (start <= t < end):
                    continue
                tid = int(tracks.track_id[i])
                w, h, x0, y0, vx, vy, intensity = geometry[tid]
                dt = t - start
                x = int(round(x0 + vx * dt))
                y = int(round(np.clip(y0 + vy * dt, 0, self.height - h)))
                if x + w <= 0 or x >= self.width:
                    continue
                x_lo, x_hi = max(0, x), min(self.width, x + w)
                y_lo, y_hi = max(0, y), min(self.height, y + h)
                canvas[y_lo:y_hi, x_lo:x_hi] = intensity
                frame_boxes.append(
                    GroundTruthBox(
                        track_id=tid,
                        class_id=int(tracks.class_id[i]),
                        x=x_lo,
                        y=y_lo,
                        w=x_hi - x_lo,
                        h=y_hi - y_lo,
                    )
                )
            frames[f] = np.clip(canvas, 0, 255).astype(np.uint8)
            boxes.append(frame_boxes)
        return RenderedClip(frames=frames, fps=fps, boxes=boxes)
