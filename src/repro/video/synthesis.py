"""Scene synthesis: tracks -> per-frame object observations.

An *observation* is one detected moving object in one frame -- the unit
the paper's pipeline operates on (its "objects").  The ingest CNN runs
once per observation (minus pixel-differencing savings), so observation
counts drive ingest cost; cluster counts over observations drive query
latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.video.profiles import StreamProfile, get_profile
from repro.video.tracks import ClassDistribution, TrackArrays, TrackGenerator


class ObservationTable:
    """Struct-of-arrays table of object observations for one stream.

    All downstream Focus stages (cheap-CNN classification, clustering,
    indexing, querying, metrics) consume this table.  Rows are sorted by
    frame index, mirroring ingest order of a live stream.
    """

    def __init__(
        self,
        stream: str,
        fps: float,
        duration_s: float,
        track_id: np.ndarray,
        class_id: np.ndarray,
        time_s: np.ndarray,
        frame_idx: np.ndarray,
        difficulty: np.ndarray,
        appearance_seed: np.ndarray,
        obs_in_track: np.ndarray,
    ):
        n = len(track_id)
        for name, arr in (
            ("class_id", class_id),
            ("time_s", time_s),
            ("frame_idx", frame_idx),
            ("difficulty", difficulty),
            ("appearance_seed", appearance_seed),
            ("obs_in_track", obs_in_track),
        ):
            if len(arr) != n:
                raise ValueError("column %s has length %d, expected %d" % (name, len(arr), n))
        self.stream = stream
        self.fps = float(fps)
        self.duration_s = float(duration_s)
        self.track_id = track_id
        self.class_id = class_id
        self.time_s = time_s
        self.frame_idx = frame_idx
        self.difficulty = difficulty
        self.appearance_seed = appearance_seed
        self.obs_in_track = obs_in_track

    # -- basic shape ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.track_id)

    @property
    def num_observations(self) -> int:
        return len(self)

    @property
    def num_tracks(self) -> int:
        return int(len(np.unique(self.track_id)))

    @property
    def total_frames(self) -> int:
        return int(math.ceil(self.duration_s * self.fps))

    # -- statistics the paper measures ----------------------------------
    def frames_with_objects(self) -> np.ndarray:
        """Sorted unique frame indexes containing a moving object."""
        return np.unique(self.frame_idx)

    def empty_frame_fraction(self) -> float:
        """Fraction of frames with no moving objects (Section 2.2.1)."""
        total = self.total_frames
        if total == 0:
            return 0.0
        return 1.0 - len(self.frames_with_objects()) / total

    def present_classes(self) -> np.ndarray:
        """Sorted unique class ids occurring in the stream."""
        return np.unique(self.class_id)

    def class_histogram(self) -> Dict[int, int]:
        """Observation count per class id."""
        classes, counts = np.unique(self.class_id, return_counts=True)
        return {int(c): int(n) for c, n in zip(classes, counts)}

    def dominant_classes(self, coverage: float = 0.95) -> List[int]:
        """Most frequent classes covering ``coverage`` of observations."""
        classes, counts = np.unique(self.class_id, return_counts=True)
        order = np.argsort(counts)[::-1]
        cum = np.cumsum(counts[order]) / counts.sum()
        cut = int(np.searchsorted(cum, coverage)) + 1
        return [int(c) for c in classes[order[:cut]]]

    # -- selection -------------------------------------------------------
    def select(self, mask: np.ndarray) -> "ObservationTable":
        """Row subset preserving stream metadata."""
        return ObservationTable(
            stream=self.stream,
            fps=self.fps,
            duration_s=self.duration_s,
            track_id=self.track_id[mask],
            class_id=self.class_id[mask],
            time_s=self.time_s[mask],
            frame_idx=self.frame_idx[mask],
            difficulty=self.difficulty[mask],
            appearance_seed=self.appearance_seed[mask],
            obs_in_track=self.obs_in_track[mask],
        )

    def slice(self, start: int, stop: int) -> "ObservationTable":
        """Contiguous row range as zero-copy column views.

        The chunked hot paths (feature extraction, clustering, live
        pushes) iterate row ranges; a slice avoids the O(n) mask build
        and the fancy-indexing copy of every column that ``select``
        pays per chunk.
        """
        return ObservationTable(
            stream=self.stream,
            fps=self.fps,
            duration_s=self.duration_s,
            track_id=self.track_id[start:stop],
            class_id=self.class_id[start:stop],
            time_s=self.time_s[start:stop],
            frame_idx=self.frame_idx[start:stop],
            difficulty=self.difficulty[start:stop],
            appearance_seed=self.appearance_seed[start:stop],
            obs_in_track=self.obs_in_track[start:stop],
        )

    @classmethod
    def concat(
        cls,
        tables: Sequence["ObservationTable"],
        duration_s: Optional[float] = None,
    ) -> "ObservationTable":
        """Concatenate time-ordered chunks of one stream.

        The live-ingest accumulation primitive: chunks pushed through
        ``StreamIngestor`` append here, so row order (and therefore
        cluster ids and index member rows) matches the equivalent
        one-shot table.  ``duration_s`` defaults to the largest chunk
        window -- the stream's current watermark.
        """
        if not tables:
            raise ValueError("concat needs at least one table")
        first = tables[0]
        for t in tables[1:]:
            if t.stream != first.stream:
                raise ValueError(
                    "cannot concat tables of different streams: %r vs %r"
                    % (first.stream, t.stream)
                )
            if t.fps != first.fps:
                raise ValueError("cannot concat tables with different fps")
        if duration_s is None:
            duration_s = max(t.duration_s for t in tables)
        return cls(
            stream=first.stream,
            fps=first.fps,
            duration_s=duration_s,
            track_id=np.concatenate([t.track_id for t in tables]),
            class_id=np.concatenate([t.class_id for t in tables]),
            time_s=np.concatenate([t.time_s for t in tables]),
            frame_idx=np.concatenate([t.frame_idx for t in tables]),
            difficulty=np.concatenate([t.difficulty for t in tables]),
            appearance_seed=np.concatenate([t.appearance_seed for t in tables]),
            obs_in_track=np.concatenate([t.obs_in_track for t in tables]),
        )

    def time_range(self, start_s: float, end_s: float) -> "ObservationTable":
        """Observations with ``start_s <= time < end_s`` (a query interval)."""
        mask = (self.time_s >= start_s) & (self.time_s < end_s)
        return self.select(mask)

    def scattered_sample(
        self, total_seconds: float, chunk_seconds: float = 20.0
    ) -> "ObservationTable":
        """A sample of chunks spread evenly across the whole window.

        The paper's tuner "periodically obtains a small sample of video
        frames" (Section 4.3): scattering the sample across day and
        night captures the stream's full class mix, which one contiguous
        slice would miss.
        """
        if total_seconds <= 0 or chunk_seconds <= 0:
            raise ValueError("sample sizes must be positive")
        total_seconds = min(total_seconds, self.duration_s)
        n_chunks = max(1, int(round(total_seconds / chunk_seconds)))
        stride = self.duration_s / n_chunks
        mask = np.zeros(len(self), dtype=bool)
        for i in range(n_chunks):
            start = i * stride
            end = min(start + chunk_seconds, self.duration_s)
            mask |= (self.time_s >= start) & (self.time_s < end)
        return self.select(mask)

    def sample_fraction(self, fraction: float, seed: int = 0) -> "ObservationTable":
        """Uniform row sample; used by the tuner's ground-truth sampling."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        rng = np.random.RandomState(seed % (2 ** 31))
        mask = rng.uniform(size=len(self)) < fraction
        return self.select(mask)

    def observation_seeds(self) -> np.ndarray:
        """A stable 64-bit seed per observation (track seed mixed with
        the observation's position in its track).  Deterministic model
        noise keys off these."""
        mixed = self.appearance_seed.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15) * (
            self.obs_in_track.astype(np.uint64) + np.uint64(1)
        )
        mixed ^= mixed >> np.uint64(33)
        mixed *= np.uint64(0xFF51AFD7ED558CCD)
        mixed ^= mixed >> np.uint64(33)
        return mixed


@dataclass
class SceneGenerator:
    """Generates :class:`ObservationTable` videos for one stream profile."""

    profile: StreamProfile
    seed_salt: int = 0

    def __post_init__(self):
        self._track_gen = TrackGenerator(self.profile, seed_salt=self.seed_salt)

    @property
    def distribution(self) -> ClassDistribution:
        return self._track_gen.distribution

    def generate(self, duration_s: float, fps: float = 30.0) -> ObservationTable:
        """Synthesize ``duration_s`` seconds of video at ``fps``."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        tracks = self._track_gen.generate(duration_s)
        return observations_from_tracks(self.profile.name, tracks, duration_s, fps)


def observations_from_tracks(
    stream: str, tracks: TrackArrays, duration_s: float, fps: float
) -> ObservationTable:
    """Expand tracks into per-frame observations at ``fps``."""
    n_tracks = len(tracks)
    if n_tracks == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        return ObservationTable(
            stream, fps, duration_s, empty_i, empty_i, empty_f, empty_i, empty_f, empty_i, empty_i
        )

    end_s = np.minimum(tracks.start_s + tracks.duration_s, duration_s)
    visible = np.maximum(end_s - tracks.start_s, 0.0)
    counts = np.maximum(1, np.floor(visible * fps).astype(np.int64))
    counts[visible <= 0] = 0

    total = int(counts.sum())
    if total == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        return ObservationTable(
            stream, fps, duration_s, empty_i, empty_i, empty_f, empty_i, empty_f, empty_i, empty_i
        )

    track_row = np.repeat(np.arange(n_tracks), counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    time_s = tracks.start_s[track_row] + within / fps
    frame_idx = np.floor(time_s * fps).astype(np.int64)

    order = np.argsort(frame_idx, kind="stable")
    return ObservationTable(
        stream=stream,
        fps=fps,
        duration_s=duration_s,
        track_id=tracks.track_id[track_row][order],
        class_id=tracks.class_id[track_row][order],
        time_s=time_s[order],
        frame_idx=frame_idx[order],
        difficulty=tracks.difficulty[track_row][order],
        appearance_seed=tracks.appearance_seed[track_row][order],
        obs_in_track=within[order],
    )


def generate_observations(
    stream: str, duration_s: float, fps: float = 30.0, seed_salt: int = 0
) -> ObservationTable:
    """Convenience wrapper: generate a stream's observations by name."""
    profile = get_profile(stream) if isinstance(stream, str) else stream
    return SceneGenerator(profile, seed_salt=seed_salt).generate(duration_s, fps)
