"""Frame-rate resampling (Section 6.6 of the paper).

The paper studies Focus at 30/10/5/1 fps.  Lower frame rates reduce
per-track redundancy, which weakens clustering's query-latency gains
while leaving the per-object ingest saving intact -- the asymmetry
Figures 12 and 13 report.
"""

from __future__ import annotations

import numpy as np

from repro.video.synthesis import ObservationTable


def resample_fps(table: ObservationTable, new_fps: float) -> ObservationTable:
    """Downsample ``table`` to ``new_fps``.

    Keeps the first observation of each track within each new-rate frame
    window, exactly as decoding the same video at a lower frame rate
    would.  Upsampling is rejected: the synthetic source was rendered at
    ``table.fps`` and no new information exists between its frames.
    """
    if new_fps <= 0:
        raise ValueError("new_fps must be positive")
    if new_fps > table.fps:
        raise ValueError(
            "cannot upsample from %.3g fps to %.3g fps" % (table.fps, new_fps)
        )
    if new_fps == table.fps:
        return table

    new_frame = np.floor(table.time_s * new_fps).astype(np.int64)
    # Keep the first observation per (track, new frame) pair.  Rows are
    # sorted by original frame index, so a stable lexsort on
    # (track, new_frame) puts the earliest observation first in each group.
    order = np.lexsort((table.time_s, new_frame, table.track_id))
    tid = table.track_id[order]
    nf = new_frame[order]
    first = np.ones(len(order), dtype=bool)
    if len(order) > 1:
        first[1:] = (tid[1:] != tid[:-1]) | (nf[1:] != nf[:-1])
    keep_rows = order[first]

    mask = np.zeros(len(table), dtype=bool)
    mask[keep_rows] = True
    sub = table.select(mask)
    return ObservationTable(
        stream=sub.stream,
        fps=new_fps,
        duration_s=sub.duration_s,
        track_id=sub.track_id,
        class_id=sub.class_id,
        time_s=sub.time_s,
        frame_idx=np.floor(sub.time_s * new_fps).astype(np.int64),
        difficulty=sub.difficulty,
        appearance_seed=sub.appearance_seed,
        obs_in_track=sub.obs_in_track,
    )
