"""The 1000-class taxonomy recognized by the simulated classifiers.

The paper's GT-CNN (ResNet152) classifies among the 1,000 ImageNet
classes.  We reproduce a 1000-class taxonomy with named, human-readable
classes for the objects that actually dominate traffic, surveillance
and news video (Section 2.2.2 of the paper), plus a long synthetic tail
so that class-frequency CDFs, per-stream presence fractions and
inter-stream Jaccard indexes can be measured exactly as in Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

NUM_CLASSES = 1000

#: Named classes that dominate the three video domains in the paper.
#: Order matters: ids are assigned in list order, then the synthetic
#: tail fills the remaining ids up to 1000.
_NAMED_CLASSES: List[str] = [
    # -- traffic-dominant classes ------------------------------------
    "car",
    "taxi",
    "pickup_truck",
    "trailer_truck",
    "delivery_van",
    "bus",
    "minibus",
    "school_bus",
    "motorcycle",
    "moped",
    "bicycle",
    "tricycle",
    "fire_engine",
    "ambulance",
    "police_van",
    "garbage_truck",
    "tow_truck",
    "tractor",
    "snowplow",
    "traffic_light",
    "street_sign",
    "parking_meter",
    "crosswalk",
    "traffic_cone",
    # -- people / surveillance-dominant classes ----------------------
    "pedestrian",
    "jogger",
    "cyclist",
    "skateboarder",
    "stroller",
    "wheelchair",
    "dog",
    "cat",
    "pigeon",
    "backpack",
    "handbag",
    "suitcase",
    "shopping_cart",
    "shopping_bag",
    "umbrella",
    "bench",
    "street_vendor_cart",
    "scooter",
    "segway",
    "delivery_robot",
    "mail_van",
    "street_lamp",
    "fountain",
    "market_stall",
    "cafe_table",
    "bollard",
    # -- news-dominant classes ---------------------------------------
    "suit",
    "necktie",
    "microphone",
    "news_desk",
    "studio_camera",
    "teleprompter",
    "podium",
    "flag",
    "banner",
    "laptop",
    "monitor",
    "television",
    "cellular_phone",
    "notebook",
    "coffee_mug",
    "water_bottle",
    "bookcase",
    "window_shade",
    "stage_light",
    "headset",
    # -- generic classes seen occasionally everywhere -----------------
    "bird",
    "squirrel",
    "horse",
    "balloon",
    "kite",
    "drone",
    "airplane",
    "helicopter",
    "boat",
    "train",
    "tram",
    "jacket",
    "hat",
    "sunglasses",
    "camera",
    "guitar",
    "drum",
    "food_truck",
    "ice_cream_cart",
    "newspaper",
]


def _build_names() -> List[str]:
    names = list(_NAMED_CLASSES)
    if len(names) != len(set(names)):
        raise ValueError("duplicate names in the curated class list")
    for i in range(len(names), NUM_CLASSES):
        names.append("imagenet_class_%04d" % i)
    return names


CLASS_NAMES: List[str] = _build_names()
_NAME_TO_ID: Dict[str, int] = {name: i for i, name in enumerate(CLASS_NAMES)}

DOMAINS = ("traffic", "surveillance", "news")

#: Head (frequent) classes per domain.  Per Section 2.2.2 a handful of
#: classes dominate each stream; these pools are what per-stream Zipf
#: heads are drawn from.  The pools intentionally overlap (e.g. cars and
#: pedestrians appear in both traffic and surveillance video) so that
#: inter-stream Jaccard indexes are moderate, as measured in the paper.
_DOMAIN_HEAD_NAMES: Dict[str, List[str]] = {
    "traffic": [
        "car",
        "taxi",
        "pickup_truck",
        "trailer_truck",
        "delivery_van",
        "bus",
        "motorcycle",
        "bicycle",
        "pedestrian",
        "traffic_light",
        "minibus",
        "cyclist",
        "garbage_truck",
        "school_bus",
        "moped",
        "ambulance",
    ],
    "surveillance": [
        "pedestrian",
        "backpack",
        "handbag",
        "bicycle",
        "dog",
        "umbrella",
        "suitcase",
        "stroller",
        "shopping_bag",
        "cyclist",
        "jogger",
        "car",
        "scooter",
        "skateboarder",
        "shopping_cart",
        "bench",
    ],
    "news": [
        "suit",
        "necktie",
        "microphone",
        "news_desk",
        "studio_camera",
        "flag",
        "laptop",
        "monitor",
        "television",
        "banner",
        "podium",
        "pedestrian",
        "cellular_phone",
        "teleprompter",
        "coffee_mug",
        "stage_light",
    ],
}


def class_name(cid: int) -> str:
    """Return the canonical name for class id ``cid``."""
    if not 0 <= cid < NUM_CLASSES:
        raise ValueError("class id %r out of range [0, %d)" % (cid, NUM_CLASSES))
    return CLASS_NAMES[cid]


def class_id(name: str) -> int:
    """Return the class id for ``name``.

    Raises ``KeyError`` for unknown names; callers that want a soft
    lookup should use :data:`CLASS_NAMES` directly.
    """
    return _NAME_TO_ID[name]


def domain_pool(domain: str) -> List[int]:
    """Head class ids for ``domain`` (traffic / surveillance / news)."""
    try:
        names = _DOMAIN_HEAD_NAMES[domain]
    except KeyError:
        raise ValueError("unknown domain %r; expected one of %s" % (domain, DOMAINS))
    return [_NAME_TO_ID[n] for n in names]


def tail_pool(exclude: Sequence[int] = ()) -> List[int]:
    """All class ids outside ``exclude`` -- the rare-class tail."""
    excluded = set(exclude)
    return [i for i in range(NUM_CLASSES) if i not in excluded]


#: Tail classes are confusable within contiguous id blocks of this size.
TAIL_CONFUSION_BLOCK = 20


def _build_confusable_pools() -> List[List[int]]:
    pools: List[List[int]] = [[] for _ in range(NUM_CLASSES)]
    for domain in DOMAINS:
        members = domain_pool(domain)
        for cid in members:
            pools[cid] = sorted(set(pools[cid]) | set(members))
    for cid in range(NUM_CLASSES):
        if not pools[cid]:
            block = cid // TAIL_CONFUSION_BLOCK * TAIL_CONFUSION_BLOCK
            pools[cid] = list(range(block, min(block + TAIL_CONFUSION_BLOCK, NUM_CLASSES)))
    return pools


_CONFUSABLE_POOLS: List[List[int]] = _build_confusable_pools()


def confusable_pool(cid: int) -> List[int]:
    """Classes visually confusable with ``cid`` (including itself).

    Head classes are confusable within their domain pool(s) -- a taxi
    looks like a car looks like a pickup; tail classes within small id
    blocks.  Both the classifier confusion model and the feature-space
    geometry are built on these pools.
    """
    if not 0 <= cid < NUM_CLASSES:
        raise ValueError("class id %r out of range [0, %d)" % (cid, NUM_CLASSES))
    return list(_CONFUSABLE_POOLS[cid])


def confusable_pool_key(cid: int) -> int:
    """A stable key identifying ``cid``'s pool (its smallest member)."""
    return _CONFUSABLE_POOLS[cid][0]
