"""Object-track generation.

A *track* is one physical object moving through the camera view: a car
crossing an intersection, a pedestrian walking a plaza.  The paper's
clustering technique (Section 4.2) exploits the fact that the same
object looks nearly identical across the frames of its track, so tracks
-- not frames -- are the natural unit of synthesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.video.classes import NUM_CLASSES
from repro.video.profiles import StreamProfile


@dataclass(frozen=True)
class Track:
    """One moving object and its dwell interval in the camera view."""

    track_id: int
    class_id: int
    start_s: float
    duration_s: float
    difficulty: float
    appearance_seed: int

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class TrackArrays:
    """Struct-of-arrays representation of a set of tracks."""

    __slots__ = ("track_id", "class_id", "start_s", "duration_s", "difficulty", "appearance_seed")

    def __init__(
        self,
        track_id: np.ndarray,
        class_id: np.ndarray,
        start_s: np.ndarray,
        duration_s: np.ndarray,
        difficulty: np.ndarray,
        appearance_seed: np.ndarray,
    ):
        n = len(track_id)
        for arr in (class_id, start_s, duration_s, difficulty, appearance_seed):
            if len(arr) != n:
                raise ValueError("track arrays must have equal length")
        self.track_id = track_id
        self.class_id = class_id
        self.start_s = start_s
        self.duration_s = duration_s
        self.difficulty = difficulty
        self.appearance_seed = appearance_seed

    def __len__(self) -> int:
        return len(self.track_id)

    def __iter__(self) -> Iterator[Track]:
        for i in range(len(self)):
            yield Track(
                track_id=int(self.track_id[i]),
                class_id=int(self.class_id[i]),
                start_s=float(self.start_s[i]),
                duration_s=float(self.duration_s[i]),
                difficulty=float(self.difficulty[i]),
                appearance_seed=int(self.appearance_seed[i]),
            )


def _diurnal_modulation(seconds: np.ndarray, duration_s: float, night_activity: float) -> np.ndarray:
    """Activity multiplier over the 12-hour day/night window.

    The paper evaluates each stream for 12 hours "evenly covering day
    time and night time" (Section 6.1).  We modulate arrivals with a
    raised cosine whose trough is ``night_activity``.
    """
    phase = 2.0 * math.pi * seconds / max(duration_s, 1.0)
    blend = 0.5 * (1.0 + np.cos(phase))  # 1 at start/end, 0 mid-window
    return night_activity + (1.0 - night_activity) * blend


class ClassDistribution:
    """Per-stream class-occurrence distribution (Section 2.2.2).

    Dominant head classes (from the stream's domain pool) receive a
    fixed ~96% of the probability mass with a Zipf profile, and a long
    tail of rare classes shares the rest -- reproducing the paper's
    finding that 3-10% of the most frequent classes cover >= 95% of
    objects while 22-69% of all classes appear at least once.
    """

    HEAD_MASS = 0.93

    #: Fraction of a stream's tail classes drawn from the *shared*
    #: global ordering of plausible video classes.  Real streams share
    #: much of their rare-class tail (birds, bags, trucks appear
    #: everywhere), which is what gives the paper's mean inter-stream
    #: Jaccard index of ~0.46 (Section 2.2.2); the rest is
    #: stream-specific.
    SHARED_TAIL_FRACTION = 0.62

    def __init__(self, profile: StreamProfile):
        self.profile = profile
        rng = np.random.RandomState(profile.seed % (2 ** 31))
        pool = np.array(profile.head_pool(), dtype=np.int64)
        rng.shuffle(pool)
        n_head = min(profile.head_classes, len(pool))
        self.head_classes = pool[:n_head].copy()

        n_present = profile.num_present_classes
        n_tail = max(0, n_present - n_head)
        # shared prefix of the global plausibility ordering ...
        global_rng = np.random.RandomState(20180214)
        global_order = np.arange(NUM_CLASSES, dtype=np.int64)
        global_rng.shuffle(global_order)
        global_order = global_order[~np.isin(global_order, self.head_classes)]
        n_shared = int(round(self.SHARED_TAIL_FRACTION * n_tail))
        shared = global_order[:n_shared]
        # ... plus a stream-specific remainder
        remaining = np.setdiff1d(
            np.arange(NUM_CLASSES, dtype=np.int64),
            np.concatenate([self.head_classes, shared]),
        )
        rng.shuffle(remaining)
        self.tail_classes = np.concatenate([shared, remaining[: n_tail - n_shared]])

        head_ranks = np.arange(1, n_head + 1, dtype=np.float64)
        head_w = head_ranks ** (-profile.zipf_exponent)
        head_p = self.HEAD_MASS * head_w / head_w.sum()

        if n_tail > 0:
            tail_ranks = np.arange(1, n_tail + 1, dtype=np.float64)
            tail_w = tail_ranks ** (-0.5)
            tail_p = (1.0 - self.HEAD_MASS) * tail_w / tail_w.sum()
        else:
            tail_p = np.zeros(0)
            head_p = head_w / head_w.sum()

        self.classes = np.concatenate([self.head_classes, self.tail_classes])
        self.probabilities = np.concatenate([head_p, tail_p])
        total = self.probabilities.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            self.probabilities = self.probabilities / total

    @property
    def num_present(self) -> int:
        return len(self.classes)

    def dominant_classes(self, coverage: float = 0.95) -> List[int]:
        """The smallest prefix of classes covering ``coverage`` of objects."""
        order = np.argsort(self.probabilities)[::-1]
        cum = np.cumsum(self.probabilities[order])
        cut = int(np.searchsorted(cum, coverage)) + 1
        return [int(c) for c in self.classes[order[:cut]]]

    def sample(self, n: int, rng: np.random.RandomState) -> np.ndarray:
        idx = rng.choice(len(self.classes), size=n, p=self.probabilities)
        return self.classes[idx]


class TrackGenerator:
    """Generates the tracks of one stream over a time window."""

    #: Log-space spread of track durations.
    DURATION_SIGMA = 0.6
    #: Log-space spread of per-object classification difficulty.
    DIFFICULTY_SIGMA = 0.35
    MIN_DURATION_S = 0.5
    MAX_DURATION_S = 120.0

    def __init__(self, profile: StreamProfile, seed_salt: int = 0):
        self.profile = profile
        self.distribution = ClassDistribution(profile)
        self._seed = (profile.seed ^ (seed_salt * 0x9E3779B97F4A7C15)) % (2 ** 31)

    def generate(self, duration_s: float) -> TrackArrays:
        """Generate all tracks that *start* within ``[0, duration_s)``."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        profile = self.profile
        rng = np.random.RandomState(self._seed)

        seconds = np.arange(int(math.ceil(duration_s)), dtype=np.float64)
        rates = profile.arrival_rate * _diurnal_modulation(
            seconds, duration_s, profile.night_activity
        )
        counts = rng.poisson(rates)
        n = int(counts.sum())
        if n == 0:
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            return TrackArrays(empty_i, empty_i, empty_f, empty_f, empty_f, empty_i)

        start_s = np.repeat(seconds, counts) + rng.uniform(0.0, 1.0, size=n)
        start_s = np.minimum(start_s, duration_s - 1e-6)

        mean_dur = profile.mean_track_seconds
        mu = math.log(mean_dur) - 0.5 * self.DURATION_SIGMA ** 2
        duration = rng.lognormal(mu, self.DURATION_SIGMA, size=n)
        max_dur = 8.0 if profile.rotating else self.MAX_DURATION_S
        duration = np.clip(duration, self.MIN_DURATION_S, max_dur)

        class_id = self.distribution.sample(n, rng)
        difficulty = np.clip(
            rng.lognormal(0.0, self.DIFFICULTY_SIGMA, size=n) * profile.difficulty_scale,
            0.4,
            3.0,
        )
        appearance_seed = rng.randint(0, 2 ** 62, size=n, dtype=np.int64)
        track_id = np.arange(n, dtype=np.int64)
        return TrackArrays(
            track_id=track_id,
            class_id=class_id.astype(np.int64),
            start_s=start_s,
            duration_s=duration,
            difficulty=difficulty.astype(np.float64),
            appearance_seed=appearance_seed,
        )
