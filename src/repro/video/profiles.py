"""Stream profiles for the 13 video streams evaluated in the paper.

Table 1 of the paper lists thirteen 12-hour streams across three
domains (traffic intersections, surveillance cameras, news channels).
Each :class:`StreamProfile` captures the statistics the paper measures
for these streams -- how busy they are, how many object classes occur,
how skewed the class distribution is, how long objects stay in frame --
so the synthetic generator can reproduce the per-stream behaviour that
drives Focus's results (e.g. less busy streams see smaller query-latency
gains, Section 6.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.video.classes import NUM_CLASSES, domain_pool


@dataclass(frozen=True)
class StreamProfile:
    """Statistical profile of one video stream.

    Parameters mirror the measurable characteristics in Sections 2.2
    and 6.1 of the paper rather than anything pixel-level.

    Attributes:
        name: stream identifier as used in the paper (e.g. ``auburn_c``).
        domain: one of ``traffic``, ``surveillance``, ``news``.
        location: human-readable location from Table 1.
        description: description from Table 1.
        day_concurrency: mean number of simultaneously-visible moving
            objects at daytime peak.  The Poisson arrival rate derives
            from it (``day_concurrency / mean_track_seconds``), and the
            empty-frame fraction follows ``exp(-concurrency)`` by M/G/inf
            queueing, which is how the generator hits the paper's
            one-third-to-one-half empty frames (Section 2.2.1).
        mean_track_seconds: mean time an object stays in frame.
        present_class_fraction: fraction of the 1000 classes that ever
            occur in 12 h of this stream (0.22-0.33 quiet, 0.50-0.69 busy
            news, per Section 2.2.2).
        zipf_exponent: skew of the class-frequency distribution; higher
            means fewer classes dominate.
        head_classes: number of stream-specific dominant classes drawn
            from the domain pool.
        empty_frame_fraction: *expected* fraction of frames with no
            moving objects implied by the concurrency (recorded for
            Table 1 reporting; one-third to one-half per Section 2.2.1).
        night_activity: multiplier on ``arrival_rate`` during the night
            half of the 12 h window.
        rotating: whether the camera rotates among views (church_st),
            which shortens tracks and diversifies appearance.
        difficulty_scale: multiplier on per-object classification
            difficulty (crowded or low-light scenes are harder).
    """

    name: str
    domain: str
    location: str
    description: str
    day_concurrency: float
    mean_track_seconds: float
    present_class_fraction: float
    zipf_exponent: float
    head_classes: int
    empty_frame_fraction: float
    night_activity: float = 0.3
    rotating: bool = False
    difficulty_scale: float = 1.0

    @property
    def arrival_rate(self) -> float:
        """Mean new objects per second at daytime peak."""
        return self.day_concurrency / self.mean_track_seconds

    @property
    def seed(self) -> int:
        """Stable per-stream seed derived from the stream name."""
        digest = hashlib.sha256(self.name.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    @property
    def num_present_classes(self) -> int:
        return max(self.head_classes, int(round(self.present_class_fraction * NUM_CLASSES)))

    def head_pool(self) -> List[int]:
        """Domain head classes this stream draws its dominant classes from."""
        return domain_pool(self.domain)


def _make_streams() -> Dict[str, StreamProfile]:
    profiles = [
        # -- traffic ---------------------------------------------------
        StreamProfile(
            name="auburn_c",
            domain="traffic",
            location="AL, USA",
            description="A commercial area intersection in the City of Auburn",
            day_concurrency=2.2,
            mean_track_seconds=9.0,
            present_class_fraction=0.28,
            zipf_exponent=1.65,
            head_classes=9,
            empty_frame_fraction=0.34,
        ),
        StreamProfile(
            name="auburn_r",
            domain="traffic",
            location="AL, USA",
            description="A residential area intersection in the City of Auburn",
            day_concurrency=1.15,
            mean_track_seconds=10.0,
            present_class_fraction=0.23,
            zipf_exponent=2.05,
            head_classes=5,
            empty_frame_fraction=0.50,
        ),
        StreamProfile(
            name="city_a_d",
            domain="traffic",
            location="USA",
            description="A downtown intersection in City A",
            day_concurrency=2.4,
            mean_track_seconds=8.0,
            present_class_fraction=0.30,
            zipf_exponent=1.60,
            head_classes=10,
            empty_frame_fraction=0.33,
        ),
        StreamProfile(
            name="city_a_r",
            domain="traffic",
            location="USA",
            description="A residential area intersection in City A",
            day_concurrency=1.35,
            mean_track_seconds=9.5,
            present_class_fraction=0.24,
            zipf_exponent=1.90,
            head_classes=6,
            empty_frame_fraction=0.45,
        ),
        StreamProfile(
            name="bend",
            domain="traffic",
            location="OR, USA",
            description="A road-side camera in the City of Bend",
            day_concurrency=1.15,
            mean_track_seconds=7.0,
            present_class_fraction=0.22,
            zipf_exponent=2.10,
            head_classes=5,
            empty_frame_fraction=0.48,
        ),
        StreamProfile(
            name="jacksonh",
            domain="traffic",
            location="WY, USA",
            description="A busy intersection (Town Square) in Jackson Hole",
            day_concurrency=2.5,
            mean_track_seconds=11.0,
            present_class_fraction=0.31,
            zipf_exponent=1.55,
            head_classes=10,
            empty_frame_fraction=0.33,
            difficulty_scale=1.15,
        ),
        # -- surveillance ----------------------------------------------
        StreamProfile(
            name="church_st",
            domain="surveillance",
            location="VT, USA",
            description="A video stream rotating among cameras in a shopping mall "
            "(Church Street Marketplace)",
            day_concurrency=1.8,
            mean_track_seconds=5.0,
            present_class_fraction=0.29,
            zipf_exponent=1.70,
            head_classes=9,
            empty_frame_fraction=0.36,
            rotating=True,
            difficulty_scale=1.25,
        ),
        StreamProfile(
            name="lausanne",
            domain="surveillance",
            location="Switzerland",
            description="A pedestrian plaza (Place de la Palud) in Lausanne",
            day_concurrency=1.45,
            mean_track_seconds=14.0,
            present_class_fraction=0.26,
            zipf_exponent=2.00,
            head_classes=6,
            empty_frame_fraction=0.42,
        ),
        StreamProfile(
            name="oxford",
            domain="surveillance",
            location="England",
            description="A bookshop street in the University of Oxford",
            day_concurrency=1.25,
            mean_track_seconds=12.0,
            present_class_fraction=0.24,
            zipf_exponent=2.15,
            head_classes=5,
            empty_frame_fraction=0.47,
        ),
        StreamProfile(
            name="sittard",
            domain="surveillance",
            location="Netherlands",
            description="A market square in Sittard",
            day_concurrency=1.7,
            mean_track_seconds=10.0,
            present_class_fraction=0.27,
            zipf_exponent=1.80,
            head_classes=8,
            empty_frame_fraction=0.38,
        ),
        # -- news --------------------------------------------------------
        StreamProfile(
            name="cnn",
            domain="news",
            location="USA",
            description="News channel",
            day_concurrency=1.35,
            mean_track_seconds=4.0,
            present_class_fraction=0.55,
            zipf_exponent=1.45,
            head_classes=12,
            empty_frame_fraction=0.33,
            night_activity=0.9,
        ),
        StreamProfile(
            name="foxnews",
            domain="news",
            location="USA",
            description="News channel",
            day_concurrency=1.3,
            mean_track_seconds=4.0,
            present_class_fraction=0.60,
            zipf_exponent=1.45,
            head_classes=12,
            empty_frame_fraction=0.34,
            night_activity=0.9,
        ),
        StreamProfile(
            name="msnbc",
            domain="news",
            location="USA",
            description="News channel",
            day_concurrency=1.35,
            mean_track_seconds=4.0,
            present_class_fraction=0.69,
            zipf_exponent=1.40,
            head_classes=12,
            empty_frame_fraction=0.33,
            night_activity=0.9,
        ),
    ]
    return {p.name: p for p in profiles}


STREAMS: Dict[str, StreamProfile] = _make_streams()

#: The representative 9-stream sample the paper uses in several figures
#: "to improve legibility" (Section 6.1).
REPRESENTATIVE_STREAMS: Tuple[str, ...] = (
    "auburn_c",
    "city_a_r",
    "jacksonh",
    "church_st",
    "lausanne",
    "sittard",
    "cnn",
    "foxnews",
    "msnbc",
)


def get_profile(name: str) -> StreamProfile:
    """Look up a stream profile by its paper name."""
    try:
        return STREAMS[name]
    except KeyError:
        raise KeyError(
            "unknown stream %r; known streams: %s" % (name, ", ".join(sorted(STREAMS)))
        )


def stream_names(domain: str = None) -> List[str]:
    """Names of all streams, optionally filtered by domain."""
    if domain is None:
        return list(STREAMS)
    return [name for name, p in STREAMS.items() if p.domain == domain]
