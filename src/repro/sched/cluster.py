"""Multi-GPU cluster scheduling and worker processes.

Models the paper's query-time cluster (Section 5: "We parallelize a
query's work across many worker processes if resources are idle") with
real per-GPU work queues: every submitted :class:`WorkItem` is assigned
to the earliest-free device, appended to that device's queue with its
start/end times, and advances the cluster clock.  A batch of items
dispatched together reports its makespan -- the wall-clock latency the
paper measures.  Ingest workers model the one-worker-per-stream
deployment where CPU stages pipeline with the GPU.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cnn.costs import GPUSpec, DEFAULT_GPU
from repro.cnn.model import ClassifierModel
from repro.sched.gpu import GPUDevice


@dataclass(frozen=True)
class WorkItem:
    """A batch of classification work."""

    gpu_seconds: float
    label: str = ""


@dataclass(frozen=True)
class ScheduledWork:
    """One work item placed on a specific device's queue."""

    item: WorkItem
    device_id: int
    start: float
    end: float


@dataclass(frozen=True)
class DispatchReport:
    """Outcome of dispatching one batch of items onto the cluster."""

    scheduled: List[ScheduledWork]
    start: float
    end: float

    @property
    def makespan(self) -> float:
        """Wall-clock seconds from dispatch to last item completion."""
        return self.end - self.start

    @property
    def gpu_seconds(self) -> float:
        return sum(s.item.gpu_seconds for s in self.scheduled)

    @property
    def devices_used(self) -> int:
        return len({s.device_id for s in self.scheduled})


def batch_work_items(
    model: ClassifierModel,
    num_inferences: int,
    batch_size: int,
    spec: GPUSpec,
    label: str = "",
) -> List[WorkItem]:
    """Split ``num_inferences`` classifications into fixed-size GPU
    batch WorkItems (shared by ingest and query dispatchers)."""
    if num_inferences < 0:
        raise ValueError("num_inferences must be non-negative")
    items = []
    for start in range(0, num_inferences, batch_size):
        n = min(batch_size, num_inferences - start)
        items.append(WorkItem(gpu_seconds=model.cost_seconds(n, spec), label=label))
    return items


class GPUCluster:
    """A pool of identical GPUs with per-device work queues.

    Scheduling is greedy earliest-free: each submitted item goes to the
    device that frees up soonest.  Queues persist across dispatches so
    back-to-back query batches contend for the same devices, which is
    what makes concurrent-query batching (``repro.serve``) meaningful.
    """

    def __init__(
        self,
        num_gpus: int,
        spec: GPUSpec = DEFAULT_GPU,
        max_queue_history: int = 256,
    ):
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if max_queue_history < 1:
            raise ValueError("max_queue_history must be >= 1")
        self.devices = [GPUDevice(spec=spec, device_id=i) for i in range(num_gpus)]
        #: per-device FIFO of recent work; bounded so a long-lived
        #: service does not retain every item ever dispatched
        self.max_queue_history = max_queue_history
        self.queues: Dict[int, List[ScheduledWork]] = {
            d.device_id: [] for d in self.devices
        }

    def clone_idle(self) -> "GPUCluster":
        """A fresh, idle cluster with this cluster's exact shape.

        Non-mutating what-if scheduling (:meth:`makespan`,
        :meth:`QueryCoordinator.latency`) runs on a clone so the live
        queues stay untouched; the clone must carry *every* configured
        knob -- ``num_gpus``, ``spec`` and ``max_queue_history`` -- or a
        tuned bound silently reverts to the default mid-estimate.
        """
        return GPUCluster(
            self.num_gpus, self.spec, max_queue_history=self.max_queue_history
        )

    def _enqueue(self, device_id: int, work: ScheduledWork) -> None:
        queue = self.queues[device_id]
        queue.append(work)
        if len(queue) > self.max_queue_history:
            del queue[: len(queue) - self.max_queue_history]

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    @property
    def spec(self) -> GPUSpec:
        return self.devices[0].spec

    @property
    def now(self) -> float:
        """Earliest time a new item could start (min over device clocks)."""
        return min(d.busy_until for d in self.devices)

    def submit(self, item: WorkItem, not_before: float = 0.0) -> ScheduledWork:
        """Queue one item on the earliest-free device."""
        device = min(self.devices, key=lambda d: (d.busy_until, d.device_id))
        start = max(device.busy_until, not_before)
        end = device.submit(item.gpu_seconds, not_before=not_before)
        work = ScheduledWork(item=item, device_id=device.device_id, start=start, end=end)
        self._enqueue(device.device_id, work)
        return work

    def dispatch(
        self, items: Sequence[WorkItem], not_before: float = 0.0
    ) -> DispatchReport:
        """Queue a batch of items; report its makespan.

        The batch's start is the moment the first item could begin
        (devices may still be draining earlier dispatches).
        """
        start = max(self.now, not_before)
        scheduled = [self.submit(item, not_before=not_before) for item in items]
        end = max((s.end for s in scheduled), default=start)
        return DispatchReport(scheduled=scheduled, start=start, end=end)

    def run(self, items: Iterable[WorkItem], start_time: float = 0.0) -> float:
        """Schedule items greedily; returns the makespan end time."""
        heap = [(d.busy_until, d.device_id) for d in self.devices]
        heapq.heapify(heap)
        by_id = {d.device_id: d for d in self.devices}
        end = start_time
        for item in items:
            free_at, device_id = heapq.heappop(heap)
            device = by_id[device_id]
            start = max(free_at, start_time)
            done = device.submit(item.gpu_seconds, not_before=start)
            self._enqueue(
                device_id,
                ScheduledWork(item=item, device_id=device_id, start=start, end=done),
            )
            heapq.heappush(heap, (done, device_id))
            end = max(end, done)
        return end

    def makespan(self, total_gpu_seconds: float, batches: int = 64) -> float:
        """Wall-clock time to chew through divisible work.

        Splitting into ``batches`` work items models the query
        coordinator fanning centroid batches out to idle workers.
        Runs on a fresh clone, leaving this cluster's queues untouched.
        """
        if total_gpu_seconds < 0:
            raise ValueError("total_gpu_seconds must be non-negative")
        if total_gpu_seconds == 0:
            return 0.0
        batches = max(1, min(batches, int(total_gpu_seconds * 1000) or 1))
        per = total_gpu_seconds / batches
        items = [WorkItem(gpu_seconds=per, label="batch-%d" % i) for i in range(batches)]
        return self.clone_idle().run(items)

    @property
    def total_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.devices)

    def queue_depth(self) -> float:
        """Seconds of committed work still queued past the earliest-free
        clock (a point-in-time backlog gauge: 0 on a drained or
        perfectly balanced pool, positive while dispatches are still
        draining behind the front of the queues)."""
        now = self.now
        return sum(max(0.0, d.busy_until - now) for d in self.devices)

    def counters(self) -> Dict[str, float]:
        """Per-cluster scheduling totals for multi-node observability.

        ``gpus`` and ``busy-gpu-seconds`` add across clusters (a sharded
        fabric gives every shard its own cluster and sums them into a
        fleet view); ``utilization`` and ``queue-depth`` are per-cluster
        levels and must be read per node, never summed.  The front
        door's ingest backpressure (``repro.serve.frontdoor``) keys off
        the monotone ``busy-gpu-seconds`` total sampled per shard.
        """
        return {
            "gpus": float(self.num_gpus),
            "busy-gpu-seconds": float(self.total_busy_seconds),
            "utilization": self.utilization(),
            "queue-depth": self.queue_depth(),
        }

    def utilization(self) -> float:
        """Busy fraction across the pool up to the latest device clock."""
        horizon = max(d.busy_until for d in self.devices)
        if horizon <= 0:
            return 0.0
        return self.total_busy_seconds / (horizon * self.num_gpus)


@dataclass
class IngestWorker:
    """One per-stream ingest worker (Section 5, Worker Processes).

    CPU stages (decode, background subtraction, clustering, index
    writes) pipeline with the GPU stage (cheap CNN), so the worker keeps
    up with the live stream as long as the GPU stage does: the paper's
    clustering "comes with negligible cost ... fully pipelined with the
    GPUs" (Section 6.3).
    """

    stream: str
    model: ClassifierModel
    gpu: GPUDevice

    def ingest_lag(self, objects_per_second: float) -> float:
        """GPU occupancy needed to keep up with the live stream.

        Returns the fraction of one GPU this stream's ingest consumes;
        values > 1 mean ingest falls behind realtime.
        """
        if objects_per_second < 0:
            raise ValueError("objects_per_second must be non-negative")
        per_object = self.model.cost_seconds(1, self.gpu.spec)
        return objects_per_second * per_object


class IngestDispatcher:
    """Submits ingest-CNN batches onto a (shared) GPU cluster.

    Live ingest is continuous, so its cheap-CNN work is not free: when
    the dispatcher is given the same :class:`GPUCluster` the query
    coordinator uses, ingest chunks and query verification contend for
    the same per-device work queues -- the contention Section 6.3 of the
    paper measures when queries arrive on a machine that is also
    ingesting.
    """

    def __init__(self, cluster: GPUCluster, batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cluster = cluster
        self.batch_size = batch_size

    def batch_items(
        self, model: ClassifierModel, num_inferences: int, label: str = ""
    ) -> List[WorkItem]:
        """Split a chunk's CNN inferences into GPU batch WorkItems."""
        return batch_work_items(
            model, num_inferences, self.batch_size, self.cluster.spec, label
        )

    def dispatch(
        self, model: ClassifierModel, num_inferences: int, stream: str = ""
    ) -> DispatchReport:
        """Queue one ingest chunk's CNN work; mutates the cluster queues."""
        label = "ingest stream=%s" % stream if stream else "ingest"
        return self.cluster.dispatch(self.batch_items(model, num_inferences, label))


class QueryCoordinator:
    """Fans verification work out over the cluster in GPU batches."""

    def __init__(self, cluster: GPUCluster, batch_size: int = 32):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cluster = cluster
        self.batch_size = batch_size

    def batch_items(
        self, gt_model: ClassifierModel, num_centroids: int, label: str = ""
    ) -> List[WorkItem]:
        """Split ``num_centroids`` GT verifications into batch WorkItems."""
        return batch_work_items(
            gt_model, num_centroids, self.batch_size, self.cluster.spec, label
        )

    def dispatch(
        self, gt_model: ClassifierModel, num_centroids: int, label: str = ""
    ) -> DispatchReport:
        """Queue ``num_centroids`` verifications on the shared cluster.

        Unlike :meth:`latency`, this mutates the cluster's queues: a
        second dispatch issued while the first is still draining starts
        behind it, exactly like concurrent queries contending for GPUs.
        """
        return self.cluster.dispatch(self.batch_items(gt_model, num_centroids, label))

    def latency(self, gt_model: ClassifierModel, num_centroids: int) -> float:
        """Wall-clock seconds to verify ``num_centroids`` on an idle
        cluster (non-mutating; runs on a fresh clone)."""
        items = self.batch_items(gt_model, num_centroids)
        if not items:
            return 0.0
        return self.cluster.clone_idle().run(items)
