"""Multi-GPU cluster scheduling and worker processes.

Converts the cost ledger's GPU-seconds into wall-clock numbers: a query
whose GT-CNN verification work is W GPU-seconds completes in roughly
W / N on an N-GPU cluster (Section 5: "We parallelize a query's work
across many worker processes if resources are idle"), plus a per-batch
dispatch overhead.  Ingest workers model the paper's one-worker-per-
stream deployment where CPU stages pipeline with the GPU.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cnn.costs import GPUSpec, DEFAULT_GPU
from repro.cnn.model import ClassifierModel
from repro.sched.gpu import GPUDevice


@dataclass(frozen=True)
class WorkItem:
    """A batch of classification work."""

    gpu_seconds: float
    label: str = ""


class GPUCluster:
    """A pool of identical GPUs with greedy earliest-free scheduling."""

    def __init__(self, num_gpus: int, spec: GPUSpec = DEFAULT_GPU):
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        self.devices = [GPUDevice(spec=spec, device_id=i) for i in range(num_gpus)]

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    def run(self, items: Iterable[WorkItem], start_time: float = 0.0) -> float:
        """Schedule items greedily; returns the makespan end time."""
        heap = [(d.busy_until, d.device_id) for d in self.devices]
        heapq.heapify(heap)
        end = start_time
        for item in items:
            free_at, device_id = heapq.heappop(heap)
            done = self.devices[device_id].submit(item.gpu_seconds, not_before=max(free_at, start_time))
            heapq.heappush(heap, (done, device_id))
            end = max(end, done)
        return end

    def makespan(self, total_gpu_seconds: float, batches: int = 64) -> float:
        """Wall-clock time to chew through divisible work.

        Splitting into ``batches`` work items models the query
        coordinator fanning centroid batches out to idle workers.
        """
        if total_gpu_seconds < 0:
            raise ValueError("total_gpu_seconds must be non-negative")
        if total_gpu_seconds == 0:
            return 0.0
        batches = max(1, min(batches, int(total_gpu_seconds * 1000) or 1))
        per = total_gpu_seconds / batches
        items = [WorkItem(gpu_seconds=per, label="batch-%d" % i) for i in range(batches)]
        fresh = GPUCluster(self.num_gpus, self.devices[0].spec)
        return fresh.run(items)

    @property
    def total_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.devices)


@dataclass
class IngestWorker:
    """One per-stream ingest worker (Section 5, Worker Processes).

    CPU stages (decode, background subtraction, clustering, index
    writes) pipeline with the GPU stage (cheap CNN), so the worker keeps
    up with the live stream as long as the GPU stage does: the paper's
    clustering "comes with negligible cost ... fully pipelined with the
    GPUs" (Section 6.3).
    """

    stream: str
    model: ClassifierModel
    gpu: GPUDevice

    def ingest_lag(self, objects_per_second: float) -> float:
        """GPU occupancy needed to keep up with the live stream.

        Returns the fraction of one GPU this stream's ingest consumes;
        values > 1 mean ingest falls behind realtime.
        """
        if objects_per_second < 0:
            raise ValueError("objects_per_second must be non-negative")
        per_object = self.model.cost_seconds(1, self.gpu.spec)
        return objects_per_second * per_object


class QueryCoordinator:
    """Fans a query's centroid batch out over the cluster."""

    def __init__(self, cluster: GPUCluster, batch_size: int = 32):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cluster = cluster
        self.batch_size = batch_size

    def latency(self, gt_model: ClassifierModel, num_centroids: int) -> float:
        """Wall-clock seconds to verify ``num_centroids`` with GT-CNN."""
        if num_centroids < 0:
            raise ValueError("num_centroids must be non-negative")
        if num_centroids == 0:
            return 0.0
        spec = self.cluster.devices[0].spec
        items = []
        for start in range(0, num_centroids, self.batch_size):
            n = min(self.batch_size, num_centroids - start)
            items.append(WorkItem(gpu_seconds=gt_model.cost_seconds(n, spec)))
        fresh = GPUCluster(self.cluster.num_gpus, spec)
        return fresh.run(items)
