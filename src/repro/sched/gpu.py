"""A simulated GPU device."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cnn.costs import GPUSpec, DEFAULT_GPU


@dataclass
class GPUDevice:
    """One GPU with a busy-time clock.

    Work is appended sequentially; ``busy_until`` tracks when the device
    frees up, and ``busy_seconds`` the total GPU time consumed --
    the paper's cost metric.
    """

    spec: GPUSpec = DEFAULT_GPU
    device_id: int = 0
    busy_until: float = 0.0
    busy_seconds: float = 0.0

    def submit(self, gpu_seconds: float, not_before: float = 0.0) -> float:
        """Schedule ``gpu_seconds`` of work; returns completion time."""
        if gpu_seconds < 0:
            raise ValueError("gpu_seconds must be non-negative")
        start = max(self.busy_until, not_before)
        self.busy_until = start + gpu_seconds
        self.busy_seconds += gpu_seconds
        return self.busy_until

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` seconds this device spent busy."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return min(self.busy_seconds / horizon, 1.0)
