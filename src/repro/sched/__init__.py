"""GPU-cluster scheduling substrate.

The paper runs ingest workers per stream and parallelizes query work
across machines with idle GPUs (Section 5).  This package models the
cluster: GPU devices with calibrated throughput, a work scheduler that
turns GPU-seconds of classification work into wall-clock makespan, and
worker processes that pipeline CPU stages (detection, clustering) with
GPU stages (CNN inference).
"""

from repro.sched.gpu import GPUDevice
from repro.sched.cluster import (
    DispatchReport,
    GPUCluster,
    IngestDispatcher,
    IngestWorker,
    QueryCoordinator,
    ScheduledWork,
    WorkItem,
)

__all__ = [
    "GPUDevice",
    "GPUCluster",
    "WorkItem",
    "ScheduledWork",
    "DispatchReport",
    "IngestDispatcher",
    "IngestWorker",
    "QueryCoordinator",
]
