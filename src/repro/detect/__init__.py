"""Object-detection substrate.

The paper extracts moving objects with background subtraction (an
adaptive Gaussian mixture in OpenCV) rather than detector CNNs, because
it is orders of magnitude cheaper and more reliable on small objects
(Section 6.1).  This package implements the same pipeline natively:
a running-Gaussian per-pixel background model, connected-component blob
extraction, and pixel differencing between objects in adjacent frames
(the ingest-cost saving of Section 4.2).
"""

from repro.detect.background import RunningGaussianBackground
from repro.detect.blobs import Blob, extract_blobs
from repro.detect.detector import DetectedObject, MotionDetector, PixelDiffFilter

__all__ = [
    "RunningGaussianBackground",
    "Blob",
    "extract_blobs",
    "DetectedObject",
    "MotionDetector",
    "PixelDiffFilter",
]
