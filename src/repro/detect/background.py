"""Per-pixel running-Gaussian background subtraction.

A simplified single-Gaussian variant of the adaptive background mixture
models the paper uses ([43] KaewTraKulPong & Bowden, [81] Zivkovic):
each pixel keeps a running mean and variance; pixels far from their
background distribution are foreground.  Sufficient for the synthetic
clips rendered by :mod:`repro.video.frames`, and exposes the same
update/apply interface OpenCV's MOG2 does.
"""

from __future__ import annotations

import numpy as np


class RunningGaussianBackground:
    """Adaptive per-pixel Gaussian background model.

    Attributes:
        learning_rate: exponential update weight for mean/variance.
        threshold_sigmas: foreground threshold in background std-devs.
        min_std: variance floor, keeps the detector stable on flat
            synthetic backgrounds.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        threshold_sigmas: float = 3.5,
        min_std: float = 4.0,
    ):
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if threshold_sigmas <= 0:
            raise ValueError("threshold_sigmas must be positive")
        self.learning_rate = learning_rate
        self.threshold_sigmas = threshold_sigmas
        self.min_std = min_std
        self._mean: np.ndarray = None
        self._var: np.ndarray = None
        self._frames_seen = 0

    @property
    def initialized(self) -> bool:
        return self._mean is not None

    @property
    def frames_seen(self) -> int:
        return self._frames_seen

    def apply(self, frame: np.ndarray, update: bool = True) -> np.ndarray:
        """Classify ``frame`` pixels as foreground; optionally update.

        Args:
            frame: uint8 or float grayscale image [H, W].
            update: whether to fold the frame into the background model
                (foreground pixels are excluded from the update so a
                stopped object does not instantly dissolve into the
                background).

        Returns:
            Boolean foreground mask of the same shape.
        """
        img = np.asarray(frame, dtype=np.float64)
        if img.ndim != 2:
            raise ValueError("expected a grayscale [H, W] frame, got shape %r" % (img.shape,))

        if self._mean is None:
            self._mean = img.copy()
            self._var = np.full_like(img, self.min_std ** 2)
            self._frames_seen = 1
            return np.zeros(img.shape, dtype=bool)

        std = np.sqrt(np.maximum(self._var, self.min_std ** 2))
        foreground = np.abs(img - self._mean) > self.threshold_sigmas * std

        if update:
            alpha = self.learning_rate
            bg = ~foreground
            delta = img - self._mean
            self._mean[bg] += alpha * delta[bg]
            self._var[bg] += alpha * (delta[bg] ** 2 - self._var[bg])
            # Slow absorption of persistent foreground, as MOG does,
            # so permanently-changed scenery eventually becomes background.
            self._mean[foreground] += (alpha * 0.05) * delta[foreground]
            self._frames_seen += 1
        return foreground

    def background_image(self) -> np.ndarray:
        """Current background estimate (uint8)."""
        if self._mean is None:
            raise RuntimeError("background model has not seen any frames")
        return np.clip(self._mean, 0, 255).astype(np.uint8)
