"""Moving-object detection pipeline and pixel differencing.

``MotionDetector`` chains the background model and blob extraction into
the frame -> detected-objects pipeline the paper's ingest workers run
(Section 5).  ``PixelDiffFilter`` implements the ingest-cost
optimization of Section 4.2: if an object's pixels are nearly identical
to an object in the previous frame, the cheap CNN runs on only one of
them and both land in the same cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.detect.background import RunningGaussianBackground
from repro.detect.blobs import Blob, extract_blobs


@dataclass
class DetectedObject:
    """One moving object extracted from one frame."""

    frame_idx: int
    blob: Blob
    crop: np.ndarray  # uint8 [h, w] pixels of the object

    @property
    def bbox(self) -> Tuple[int, int, int, int]:
        return self.blob.bbox


class MotionDetector:
    """Background-subtraction object detector over a frame sequence."""

    def __init__(
        self,
        background: Optional[RunningGaussianBackground] = None,
        min_area: int = 24,
        warmup_frames: int = 2,
    ):
        self.background = background or RunningGaussianBackground()
        self.min_area = min_area
        self.warmup_frames = warmup_frames
        self._frame_idx = -1

    def process(self, frame: np.ndarray) -> List[DetectedObject]:
        """Detect moving objects in the next frame of the stream."""
        self._frame_idx += 1
        mask = self.background.apply(frame)
        if self.background.frames_seen <= self.warmup_frames:
            return []
        blobs = extract_blobs(mask, min_area=self.min_area)
        detections = []
        for blob in blobs:
            crop = np.asarray(frame)[blob.y : blob.y + blob.h, blob.x : blob.x + blob.w]
            detections.append(
                DetectedObject(frame_idx=self._frame_idx, blob=blob, crop=crop.copy())
            )
        return detections

    def process_clip(self, frames: np.ndarray) -> List[List[DetectedObject]]:
        """Run the detector over every frame of a clip array [T, H, W]."""
        return [self.process(frames[i]) for i in range(frames.shape[0])]


class PixelDiffFilter:
    """Suppresses near-duplicate objects between adjacent frames.

    Two objects in adjacent frames are duplicates when their boxes
    overlap strongly and their pixel content barely changes.  The ingest
    CNN is then run on only the first of them (Section 4.2, "Pixel
    Differencing of Objects").
    """

    def __init__(self, iou_threshold: float = 0.5, pixel_threshold: float = 8.0):
        self.iou_threshold = iou_threshold
        self.pixel_threshold = pixel_threshold
        self._previous: List[DetectedObject] = []
        self.suppressed_count = 0
        self.passed_count = 0

    def reset(self) -> None:
        self._previous = []
        self.suppressed_count = 0
        self.passed_count = 0

    def _is_duplicate(self, obj: DetectedObject, prev: DetectedObject) -> bool:
        if obj.blob.iou(prev.blob) < self.iou_threshold:
            return False
        a, b = obj.crop, prev.crop
        h = min(a.shape[0], b.shape[0])
        w = min(a.shape[1], b.shape[1])
        if h == 0 or w == 0:
            return False
        diff = np.abs(a[:h, :w].astype(np.float64) - b[:h, :w].astype(np.float64))
        return float(diff.mean()) < self.pixel_threshold

    def filter_frame(
        self, detections: List[DetectedObject]
    ) -> Tuple[List[DetectedObject], List[Tuple[DetectedObject, DetectedObject]]]:
        """Split a frame's detections into (novel, duplicates).

        Returns:
            ``(novel, duplicate_pairs)`` where each duplicate pair is
            ``(suppressed_object, matched_previous_object)`` so the
            caller can co-cluster them without re-running the CNN.
        """
        novel: List[DetectedObject] = []
        duplicates: List[Tuple[DetectedObject, DetectedObject]] = []
        for obj in detections:
            match = None
            for prev in self._previous:
                if self._is_duplicate(obj, prev):
                    match = prev
                    break
            if match is None:
                novel.append(obj)
                self.passed_count += 1
            else:
                duplicates.append((obj, match))
                self.suppressed_count += 1
        self._previous = detections
        return novel, duplicates

    @property
    def suppression_ratio(self) -> float:
        total = self.suppressed_count + self.passed_count
        return self.suppressed_count / total if total else 0.0
