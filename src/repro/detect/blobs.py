"""Connected-component blob extraction from foreground masks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class Blob:
    """One connected foreground region."""

    x: int
    y: int
    w: int
    h: int
    area: int

    @property
    def bbox(self) -> Tuple[int, int, int, int]:
        return (self.x, self.y, self.w, self.h)

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    def iou(self, other: "Blob") -> float:
        """Intersection-over-union with another blob's bounding box."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x + self.w, other.x + other.w)
        y2 = min(self.y + self.h, other.y + other.h)
        inter = max(0, x2 - x1) * max(0, y2 - y1)
        union = self.w * self.h + other.w * other.h - inter
        return inter / union if union > 0 else 0.0


def extract_blobs(
    mask: np.ndarray,
    min_area: int = 24,
    dilate_iterations: int = 1,
) -> List[Blob]:
    """Extract connected components from a boolean foreground mask.

    Args:
        mask: boolean [H, W] foreground mask.
        min_area: drop components smaller than this many pixels
            (sensor noise / fragments).
        dilate_iterations: binary dilation passes applied first, which
            merges fragments of one object split by appearance noise --
            the same role morphological post-processing plays in OpenCV
            pipelines.

    Returns:
        Blobs sorted by descending area.
    """
    m = np.asarray(mask, dtype=bool)
    if m.ndim != 2:
        raise ValueError("expected a [H, W] mask, got shape %r" % (m.shape,))
    if dilate_iterations > 0:
        m = ndimage.binary_dilation(m, iterations=dilate_iterations)

    labels, count = ndimage.label(m)
    if count == 0:
        return []
    slices = ndimage.find_objects(labels)
    areas = ndimage.sum_labels(m, labels, index=np.arange(1, count + 1))

    blobs = []
    for sl, area in zip(slices, areas):
        if sl is None or area < min_area:
            continue
        y_sl, x_sl = sl
        blobs.append(
            Blob(
                x=int(x_sl.start),
                y=int(y_sl.start),
                w=int(x_sl.stop - x_sl.start),
                h=int(y_sl.stop - y_sl.start),
                area=int(area),
            )
        )
    blobs.sort(key=lambda b: b.area, reverse=True)
    return blobs
