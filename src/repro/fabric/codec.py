"""Wire codec for the fabric's worker protocol.

Everything that crosses the supervisor/worker boundary is reduced to
plain Python primitives (dicts, lists, numbers, strings, ``bytes``)
before it is enqueued: observation-table slices and chunks, query
requests, single- and multi-stream answers, chunk reports, checkpoint
outcomes.  Numpy columns travel as ``(dtype, shape, bytes)`` triples --
contiguous raw buffers, so a zero-copy ``ObservationTable.slice`` view
encodes exactly like the copy it aliases -- and decode into fresh
writable arrays that own their memory.

Since PR 7 the codec speaks to two transports.  Every array- or
blob-bearing encoder takes an optional :class:`~repro.fabric.shm.ShmSink`
and every matching decoder an optional :class:`~repro.fabric.shm.ShmReader`:
with a sink, bulk bytes are *deferred* -- the sink packs every payload
of one message into a single shared-memory segment at seal time and the
envelope carries a ``{"seg", "off", "n"}`` descriptor under ``"shm"``
instead of inline ``"data"`` bytes (below the sink's crossover
threshold, or without shared memory, the bytes inline exactly as
before).  Decoders accept either shape, so the fallback is transparent
end to end.

Two object kinds are deliberately *not* given a field-by-field wire
shape:

* :class:`~repro.core.config.FocusConfig` (and the model object inside
  it) crosses as a pickle blob.  Configs are deterministic value
  objects the caller already holds; the codec's job is transport, not
  a stable schema for model internals.
* ``ChunkReport.dispatch`` (the GPU placement of one chunk's batches)
  is dropped -- it describes the *worker's* cluster and is meaningful
  only inside the shard process.  Decoded reports carry ``None`` there;
  every scalar ingest statistic survives.

Every envelope is tagged with its ``kind`` and the module's
:data:`~repro.fabric.protocol.PROTOCOL_VERSION`; a decoder handed the
wrong kind or a foreign version raises :class:`CodecError` instead of
misreading the payload.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

import numpy as np

from repro.core.metrics import SegmentMetrics
from repro.core.query import QueryResult
from repro.core.streaming import ChunkReport
from repro.core.system import QueryAnswer
from repro.fabric.protocol import PROTOCOL_VERSION, StreamHandleInfo
from repro.serve.planner import QueryRequest
from repro.serve.service import MultiStreamAnswer, StreamCheckpoint, StreamSlice
from repro.video.synthesis import ObservationTable

#: the observation-table columns, in constructor order
TABLE_COLUMNS = (
    "track_id",
    "class_id",
    "time_s",
    "frame_idx",
    "difficulty",
    "appearance_seed",
    "obs_in_track",
)


class CodecError(ValueError):
    """A payload that cannot be (de)serialized as requested."""


def _envelope(kind: str, **fields: Any) -> Dict[str, Any]:
    fields["kind"] = kind
    fields["v"] = PROTOCOL_VERSION
    return fields


def _open(obj: Any, kind: str) -> Dict[str, Any]:
    if not isinstance(obj, dict):
        raise CodecError("expected a %r envelope, got %r" % (kind, type(obj).__name__))
    if obj.get("v") != PROTOCOL_VERSION:
        raise CodecError(
            "protocol version mismatch: payload v%r, this codec speaks v%r"
            % (obj.get("v"), PROTOCOL_VERSION)
        )
    if obj.get("kind") != kind:
        raise CodecError(
            "expected a %r envelope, got %r" % (kind, obj.get("kind"))
        )
    return obj


# -- arrays ------------------------------------------------------------------

def encode_array(arr: np.ndarray, sink=None) -> Dict[str, Any]:
    """One ndarray as a ``(dtype, shape, bytes-or-descriptor)`` envelope.

    With a sink the bytes are deferred: the envelope is resolved (to an
    inline copy or a shared-memory descriptor) when the sink seals the
    whole message.
    """
    contiguous = np.ascontiguousarray(arr)
    envelope = _envelope(
        "array",
        dtype=str(contiguous.dtype),
        shape=list(contiguous.shape),
    )
    if sink is None:
        envelope["data"] = contiguous.tobytes()
    else:
        sink.add_array(envelope, contiguous)
    return envelope


def decode_array(obj: Dict[str, Any], reader=None) -> np.ndarray:
    obj = _open(obj, "array")
    desc = obj.get("shm")
    if desc is not None:
        if reader is None:
            raise CodecError("array envelope carries a shm descriptor but no reader was given")
        return reader.array_at(desc, np.dtype(obj["dtype"]), obj["shape"])
    arr = np.frombuffer(obj["data"], dtype=np.dtype(obj["dtype"]))
    return arr.reshape(obj["shape"]).copy()  # writable, owns its memory


# -- opaque blobs (pickled store deltas / migration snapshots) ---------------

def encode_blob(data: bytes, sink=None) -> Dict[str, Any]:
    """Opaque bytes (already serialized by the caller) as an envelope."""
    envelope = _envelope("blob", n=len(data))
    if sink is None:
        envelope["data"] = data
    else:
        sink.add_bytes(envelope, data)
    return envelope


def decode_blob(obj: Dict[str, Any], reader=None) -> bytes:
    obj = _open(obj, "blob")
    desc = obj.get("shm")
    if desc is not None:
        if reader is None:
            raise CodecError("blob envelope carries a shm descriptor but no reader was given")
        return reader.bytes_at(desc)
    return obj["data"]


def payload_nbytes(obj: Any) -> int:
    """Approximate inline wire footprint of a payload: the bytes/str
    content it carries through the control-plane queue (descriptors and
    scalars count as nothing -- they are what the data plane exists to
    leave behind)."""
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    return 0


# -- observation tables ------------------------------------------------------

def encode_table(table: ObservationTable, sink=None) -> Dict[str, Any]:
    return _envelope(
        "table",
        stream=table.stream,
        fps=float(table.fps),
        duration_s=float(table.duration_s),
        columns={
            name: encode_array(getattr(table, name), sink) for name in TABLE_COLUMNS
        },
    )


def decode_table(obj: Dict[str, Any], reader=None) -> ObservationTable:
    obj = _open(obj, "table")
    columns = {
        name: decode_array(obj["columns"][name], reader) for name in TABLE_COLUMNS
    }
    return ObservationTable(
        stream=obj["stream"],
        fps=obj["fps"],
        duration_s=obj["duration_s"],
        **columns,
    )


# -- configs (pickle transport) ----------------------------------------------

def encode_config(config: Optional[Any], sink=None) -> Optional[Dict[str, Any]]:
    """Config objects as pickled blob envelopes.

    Calibrated stream configs carry model state and run to hundreds of
    kilobytes -- with a sink they ride the data plane like any other
    bulk payload instead of the control-plane queue.
    """
    if config is None:
        return None
    return encode_blob(pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL), sink)


def decode_config(obj: Optional[Dict[str, Any]], reader=None) -> Optional[Any]:
    if obj is None:
        return None
    return pickle.loads(decode_blob(obj, reader))


# -- query plans -------------------------------------------------------------

def encode_query_request(request: QueryRequest) -> Dict[str, Any]:
    return _envelope(
        "query_request",
        clazz=request.clazz,
        streams=list(request.streams) if request.streams is not None else None,
        kx=request.kx,
        time_range=list(request.time_range) if request.time_range else None,
        priority=int(request.priority),
        deadline_s=(
            float(request.deadline_s) if request.deadline_s is not None else None
        ),
        # v4: optional trace context -- plain string-keyed dict of ids,
        # absent (None) on the untraced fast path
        trace=dict(request.trace) if request.trace is not None else None,
    )


def decode_query_request(obj: Dict[str, Any], reader=None) -> QueryRequest:
    obj = _open(obj, "query_request")
    return QueryRequest(
        clazz=obj["clazz"],
        streams=obj["streams"],
        kx=obj["kx"],
        time_range=tuple(obj["time_range"]) if obj["time_range"] else None,
        priority=obj["priority"],
        deadline_s=obj["deadline_s"],
        trace=obj.get("trace"),
    )


# -- results / metrics / answers ---------------------------------------------

def encode_query_result(result: QueryResult, sink=None) -> Dict[str, Any]:
    return _envelope(
        "query_result",
        class_id=int(result.class_id),
        token=int(result.token),
        candidate_clusters=[int(c) for c in result.candidate_clusters],
        matched_clusters=[int(c) for c in result.matched_clusters],
        returned_rows=encode_array(result.returned_rows, sink),
        returned_frames=encode_array(result.returned_frames, sink),
        gt_inferences=int(result.gt_inferences),
        gpu_seconds=float(result.gpu_seconds),
    )


def decode_query_result(obj: Dict[str, Any], reader=None) -> QueryResult:
    obj = _open(obj, "query_result")
    return QueryResult(
        class_id=obj["class_id"],
        token=obj["token"],
        candidate_clusters=list(obj["candidate_clusters"]),
        matched_clusters=list(obj["matched_clusters"]),
        returned_rows=decode_array(obj["returned_rows"], reader),
        returned_frames=decode_array(obj["returned_frames"], reader),
        gt_inferences=obj["gt_inferences"],
        gpu_seconds=obj["gpu_seconds"],
    )


def encode_metrics(metrics: Optional[SegmentMetrics]) -> Optional[Dict[str, Any]]:
    if metrics is None:
        return None
    return _envelope(
        "segment_metrics",
        class_id=int(metrics.class_id),
        true_segments=int(metrics.true_segments),
        returned_segments=int(metrics.returned_segments),
        correct_segments=int(metrics.correct_segments),
    )


def decode_metrics(obj: Optional[Dict[str, Any]], reader=None) -> Optional[SegmentMetrics]:
    if obj is None:
        return None
    obj = _open(obj, "segment_metrics")
    return SegmentMetrics(
        class_id=obj["class_id"],
        true_segments=obj["true_segments"],
        returned_segments=obj["returned_segments"],
        correct_segments=obj["correct_segments"],
    )


def encode_query_answer(answer: QueryAnswer, sink=None) -> Dict[str, Any]:
    return _envelope(
        "query_answer",
        stream=answer.stream,
        class_id=int(answer.class_id),
        class_name=answer.class_name,
        frames=encode_array(answer.frames, sink),
        latency_seconds=float(answer.latency_seconds),
        gt_inferences=int(answer.gt_inferences),
        metrics=encode_metrics(answer.metrics),
        result=encode_query_result(answer.result, sink),
    )


def decode_query_answer(obj: Dict[str, Any], reader=None) -> QueryAnswer:
    obj = _open(obj, "query_answer")
    return QueryAnswer(
        stream=obj["stream"],
        class_id=obj["class_id"],
        class_name=obj["class_name"],
        frames=decode_array(obj["frames"], reader),
        latency_seconds=obj["latency_seconds"],
        gt_inferences=obj["gt_inferences"],
        metrics=decode_metrics(obj["metrics"]),
        result=decode_query_result(obj["result"], reader),
    )


def encode_multi_answer(answer: MultiStreamAnswer, sink=None) -> Dict[str, Any]:
    return _envelope(
        "multi_answer",
        class_id=int(answer.class_id),
        class_name=answer.class_name,
        slices={
            name: {
                "result": encode_query_result(s.result, sink),
                "metrics": encode_metrics(s.metrics),
            }
            for name, s in answer.slices.items()
        },
        latency_seconds=float(answer.latency_seconds),
        gt_inferences=int(answer.gt_inferences),
        candidates=int(answer.candidates),
        cache_hits=int(answer.cache_hits),
        duplicates_coalesced=int(answer.duplicates_coalesced),
    )


def decode_multi_answer(obj: Dict[str, Any], reader=None) -> MultiStreamAnswer:
    obj = _open(obj, "multi_answer")
    slices = {
        name: StreamSlice(
            stream=name,
            result=decode_query_result(s["result"], reader),
            metrics=decode_metrics(s["metrics"]),
        )
        for name, s in obj["slices"].items()
    }
    return MultiStreamAnswer(
        class_id=obj["class_id"],
        class_name=obj["class_name"],
        slices=slices,
        latency_seconds=obj["latency_seconds"],
        gt_inferences=obj["gt_inferences"],
        candidates=obj["candidates"],
        cache_hits=obj["cache_hits"],
        duplicates_coalesced=obj["duplicates_coalesced"],
    )


# -- ingest / durability reports ---------------------------------------------

def encode_chunk_report(report: ChunkReport) -> Dict[str, Any]:
    """``dispatch`` (worker-local GPU placement) does not cross the wire."""
    return _envelope(
        "chunk_report",
        chunk_rows=int(report.chunk_rows),
        total_rows=int(report.total_rows),
        watermark_s=float(report.watermark_s),
        suppressed=int(report.suppressed),
        cnn_inferences=int(report.cnn_inferences),
        gpu_seconds=float(report.gpu_seconds),
        new_clusters=[int(c) for c in report.new_clusters],
        grown_clusters=[int(c) for c in report.grown_clusters],
    )


def decode_chunk_report(obj: Dict[str, Any], reader=None) -> ChunkReport:
    obj = _open(obj, "chunk_report")
    return ChunkReport(
        chunk_rows=obj["chunk_rows"],
        total_rows=obj["total_rows"],
        watermark_s=obj["watermark_s"],
        suppressed=obj["suppressed"],
        cnn_inferences=obj["cnn_inferences"],
        gpu_seconds=obj["gpu_seconds"],
        new_clusters=list(obj["new_clusters"]),
        grown_clusters=list(obj["grown_clusters"]),
        dispatch=None,
    )


def encode_checkpoint(outcome: StreamCheckpoint) -> Dict[str, Any]:
    return _envelope(
        "stream_checkpoint",
        stream=outcome.stream,
        epoch=outcome.epoch,
        durable=bool(outcome.durable),
        error=outcome.error,
        landed=bool(outcome.landed),
    )


def decode_checkpoint(obj: Dict[str, Any], reader=None) -> StreamCheckpoint:
    obj = _open(obj, "stream_checkpoint")
    return StreamCheckpoint(
        stream=obj["stream"],
        epoch=obj["epoch"],
        durable=obj["durable"],
        error=obj["error"],
        landed=obj["landed"],
    )


def encode_handle_info(info: StreamHandleInfo) -> Dict[str, Any]:
    return _envelope(
        "handle_info",
        stream=info.stream,
        live=bool(info.live),
        restored=bool(info.restored),
        watermark_s=float(info.watermark_s),
        rows=int(info.rows),
        duration_s=float(info.duration_s),
        fps=float(info.fps),
    )


def decode_handle_info(obj: Dict[str, Any], reader=None) -> StreamHandleInfo:
    obj = _open(obj, "handle_info")
    return StreamHandleInfo(
        stream=obj["stream"],
        live=obj["live"],
        restored=obj["restored"],
        watermark_s=obj["watermark_s"],
        rows=obj["rows"],
        duration_s=obj["duration_s"],
        fps=obj["fps"],
    )
