"""Wire codec for the fabric's worker protocol.

Everything that crosses the supervisor/worker boundary is reduced to
plain Python primitives (dicts, lists, numbers, strings, ``bytes``)
before it is enqueued: observation-table slices and chunks, query
requests, single- and multi-stream answers, chunk reports, checkpoint
outcomes.  Numpy columns travel as ``(dtype, shape, bytes)`` triples --
contiguous raw buffers, so a zero-copy ``ObservationTable.slice`` view
encodes exactly like the copy it aliases -- and decode into fresh
writable arrays that own their memory.

Two object kinds are deliberately *not* given a field-by-field wire
shape:

* :class:`~repro.core.config.FocusConfig` (and the model object inside
  it) crosses as a pickle blob.  Configs are deterministic value
  objects the caller already holds; the codec's job is transport, not
  a stable schema for model internals.
* ``ChunkReport.dispatch`` (the GPU placement of one chunk's batches)
  is dropped -- it describes the *worker's* cluster and is meaningful
  only inside the shard process.  Decoded reports carry ``None`` there;
  every scalar ingest statistic survives.

Every envelope is tagged with its ``kind`` and the module's
:data:`~repro.fabric.protocol.PROTOCOL_VERSION`; a decoder handed the
wrong kind or a foreign version raises :class:`CodecError` instead of
misreading the payload.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

import numpy as np

from repro.core.metrics import SegmentMetrics
from repro.core.query import QueryResult
from repro.core.streaming import ChunkReport
from repro.core.system import QueryAnswer
from repro.fabric.protocol import PROTOCOL_VERSION, StreamHandleInfo
from repro.serve.planner import QueryRequest
from repro.serve.service import MultiStreamAnswer, StreamCheckpoint, StreamSlice
from repro.video.synthesis import ObservationTable

#: the observation-table columns, in constructor order
TABLE_COLUMNS = (
    "track_id",
    "class_id",
    "time_s",
    "frame_idx",
    "difficulty",
    "appearance_seed",
    "obs_in_track",
)


class CodecError(ValueError):
    """A payload that cannot be (de)serialized as requested."""


def _envelope(kind: str, **fields: Any) -> Dict[str, Any]:
    fields["kind"] = kind
    fields["v"] = PROTOCOL_VERSION
    return fields


def _open(obj: Any, kind: str) -> Dict[str, Any]:
    if not isinstance(obj, dict):
        raise CodecError("expected a %r envelope, got %r" % (kind, type(obj).__name__))
    if obj.get("v") != PROTOCOL_VERSION:
        raise CodecError(
            "protocol version mismatch: payload v%r, this codec speaks v%r"
            % (obj.get("v"), PROTOCOL_VERSION)
        )
    if obj.get("kind") != kind:
        raise CodecError(
            "expected a %r envelope, got %r" % (kind, obj.get("kind"))
        )
    return obj


# -- arrays ------------------------------------------------------------------

def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """One ndarray as a ``(dtype, shape, bytes)`` envelope."""
    contiguous = np.ascontiguousarray(arr)
    return _envelope(
        "array",
        dtype=str(contiguous.dtype),
        shape=list(contiguous.shape),
        data=contiguous.tobytes(),
    )


def decode_array(obj: Dict[str, Any]) -> np.ndarray:
    obj = _open(obj, "array")
    arr = np.frombuffer(obj["data"], dtype=np.dtype(obj["dtype"]))
    return arr.reshape(obj["shape"]).copy()  # writable, owns its memory


# -- observation tables ------------------------------------------------------

def encode_table(table: ObservationTable) -> Dict[str, Any]:
    return _envelope(
        "table",
        stream=table.stream,
        fps=float(table.fps),
        duration_s=float(table.duration_s),
        columns={
            name: encode_array(getattr(table, name)) for name in TABLE_COLUMNS
        },
    )


def decode_table(obj: Dict[str, Any]) -> ObservationTable:
    obj = _open(obj, "table")
    columns = {
        name: decode_array(obj["columns"][name]) for name in TABLE_COLUMNS
    }
    return ObservationTable(
        stream=obj["stream"],
        fps=obj["fps"],
        duration_s=obj["duration_s"],
        **columns,
    )


# -- configs (pickle transport) ----------------------------------------------

def encode_config(config: Optional[Any]) -> Optional[bytes]:
    if config is None:
        return None
    return pickle.dumps(config)


def decode_config(blob: Optional[bytes]) -> Optional[Any]:
    if blob is None:
        return None
    return pickle.loads(blob)


# -- query plans -------------------------------------------------------------

def encode_query_request(request: QueryRequest) -> Dict[str, Any]:
    return _envelope(
        "query_request",
        clazz=request.clazz,
        streams=list(request.streams) if request.streams is not None else None,
        kx=request.kx,
        time_range=list(request.time_range) if request.time_range else None,
    )


def decode_query_request(obj: Dict[str, Any]) -> QueryRequest:
    obj = _open(obj, "query_request")
    return QueryRequest(
        clazz=obj["clazz"],
        streams=obj["streams"],
        kx=obj["kx"],
        time_range=tuple(obj["time_range"]) if obj["time_range"] else None,
    )


# -- results / metrics / answers ---------------------------------------------

def encode_query_result(result: QueryResult) -> Dict[str, Any]:
    return _envelope(
        "query_result",
        class_id=int(result.class_id),
        token=int(result.token),
        candidate_clusters=[int(c) for c in result.candidate_clusters],
        matched_clusters=[int(c) for c in result.matched_clusters],
        returned_rows=encode_array(result.returned_rows),
        returned_frames=encode_array(result.returned_frames),
        gt_inferences=int(result.gt_inferences),
        gpu_seconds=float(result.gpu_seconds),
    )


def decode_query_result(obj: Dict[str, Any]) -> QueryResult:
    obj = _open(obj, "query_result")
    return QueryResult(
        class_id=obj["class_id"],
        token=obj["token"],
        candidate_clusters=list(obj["candidate_clusters"]),
        matched_clusters=list(obj["matched_clusters"]),
        returned_rows=decode_array(obj["returned_rows"]),
        returned_frames=decode_array(obj["returned_frames"]),
        gt_inferences=obj["gt_inferences"],
        gpu_seconds=obj["gpu_seconds"],
    )


def encode_metrics(metrics: Optional[SegmentMetrics]) -> Optional[Dict[str, Any]]:
    if metrics is None:
        return None
    return _envelope(
        "segment_metrics",
        class_id=int(metrics.class_id),
        true_segments=int(metrics.true_segments),
        returned_segments=int(metrics.returned_segments),
        correct_segments=int(metrics.correct_segments),
    )


def decode_metrics(obj: Optional[Dict[str, Any]]) -> Optional[SegmentMetrics]:
    if obj is None:
        return None
    obj = _open(obj, "segment_metrics")
    return SegmentMetrics(
        class_id=obj["class_id"],
        true_segments=obj["true_segments"],
        returned_segments=obj["returned_segments"],
        correct_segments=obj["correct_segments"],
    )


def encode_query_answer(answer: QueryAnswer) -> Dict[str, Any]:
    return _envelope(
        "query_answer",
        stream=answer.stream,
        class_id=int(answer.class_id),
        class_name=answer.class_name,
        frames=encode_array(answer.frames),
        latency_seconds=float(answer.latency_seconds),
        gt_inferences=int(answer.gt_inferences),
        metrics=encode_metrics(answer.metrics),
        result=encode_query_result(answer.result),
    )


def decode_query_answer(obj: Dict[str, Any]) -> QueryAnswer:
    obj = _open(obj, "query_answer")
    return QueryAnswer(
        stream=obj["stream"],
        class_id=obj["class_id"],
        class_name=obj["class_name"],
        frames=decode_array(obj["frames"]),
        latency_seconds=obj["latency_seconds"],
        gt_inferences=obj["gt_inferences"],
        metrics=decode_metrics(obj["metrics"]),
        result=decode_query_result(obj["result"]),
    )


def encode_multi_answer(answer: MultiStreamAnswer) -> Dict[str, Any]:
    return _envelope(
        "multi_answer",
        class_id=int(answer.class_id),
        class_name=answer.class_name,
        slices={
            name: {
                "result": encode_query_result(s.result),
                "metrics": encode_metrics(s.metrics),
            }
            for name, s in answer.slices.items()
        },
        latency_seconds=float(answer.latency_seconds),
        gt_inferences=int(answer.gt_inferences),
        candidates=int(answer.candidates),
        cache_hits=int(answer.cache_hits),
        duplicates_coalesced=int(answer.duplicates_coalesced),
    )


def decode_multi_answer(obj: Dict[str, Any]) -> MultiStreamAnswer:
    obj = _open(obj, "multi_answer")
    slices = {
        name: StreamSlice(
            stream=name,
            result=decode_query_result(s["result"]),
            metrics=decode_metrics(s["metrics"]),
        )
        for name, s in obj["slices"].items()
    }
    return MultiStreamAnswer(
        class_id=obj["class_id"],
        class_name=obj["class_name"],
        slices=slices,
        latency_seconds=obj["latency_seconds"],
        gt_inferences=obj["gt_inferences"],
        candidates=obj["candidates"],
        cache_hits=obj["cache_hits"],
        duplicates_coalesced=obj["duplicates_coalesced"],
    )


# -- ingest / durability reports ---------------------------------------------

def encode_chunk_report(report: ChunkReport) -> Dict[str, Any]:
    """``dispatch`` (worker-local GPU placement) does not cross the wire."""
    return _envelope(
        "chunk_report",
        chunk_rows=int(report.chunk_rows),
        total_rows=int(report.total_rows),
        watermark_s=float(report.watermark_s),
        suppressed=int(report.suppressed),
        cnn_inferences=int(report.cnn_inferences),
        gpu_seconds=float(report.gpu_seconds),
        new_clusters=[int(c) for c in report.new_clusters],
        grown_clusters=[int(c) for c in report.grown_clusters],
    )


def decode_chunk_report(obj: Dict[str, Any]) -> ChunkReport:
    obj = _open(obj, "chunk_report")
    return ChunkReport(
        chunk_rows=obj["chunk_rows"],
        total_rows=obj["total_rows"],
        watermark_s=obj["watermark_s"],
        suppressed=obj["suppressed"],
        cnn_inferences=obj["cnn_inferences"],
        gpu_seconds=obj["gpu_seconds"],
        new_clusters=list(obj["new_clusters"]),
        grown_clusters=list(obj["grown_clusters"]),
        dispatch=None,
    )


def encode_checkpoint(outcome: StreamCheckpoint) -> Dict[str, Any]:
    return _envelope(
        "stream_checkpoint",
        stream=outcome.stream,
        epoch=outcome.epoch,
        durable=bool(outcome.durable),
        error=outcome.error,
        landed=bool(outcome.landed),
    )


def decode_checkpoint(obj: Dict[str, Any]) -> StreamCheckpoint:
    obj = _open(obj, "stream_checkpoint")
    return StreamCheckpoint(
        stream=obj["stream"],
        epoch=obj["epoch"],
        durable=obj["durable"],
        error=obj["error"],
        landed=obj["landed"],
    )


def encode_handle_info(info: StreamHandleInfo) -> Dict[str, Any]:
    return _envelope(
        "handle_info",
        stream=info.stream,
        live=bool(info.live),
        restored=bool(info.restored),
        watermark_s=float(info.watermark_s),
        rows=int(info.rows),
        duration_s=float(info.duration_s),
        fps=float(info.fps),
    )


def decode_handle_info(obj: Dict[str, Any]) -> StreamHandleInfo:
    obj = _open(obj, "handle_info")
    return StreamHandleInfo(
        stream=obj["stream"],
        live=obj["live"],
        restored=obj["restored"],
        watermark_s=obj["watermark_s"],
        rows=obj["rows"],
        duration_s=obj["duration_s"],
        fps=obj["fps"],
    )
