"""Process-isolated shard workers: true parallel ShardNodes.

The in-process fabric (``repro.fabric.router`` over
:class:`~repro.fabric.shard.ShardNode`) scatter-gathers serially inside
one interpreter, so N shards ingest no faster than one.  This module
moves each shard into its own worker process behind the serialized
command protocol of ``repro.fabric.protocol``/``codec``:

* :func:`_worker_main` -- the worker loop: builds a ``ShardNode`` from
  a store snapshot, then serves one command at a time from its request
  queue, shipping each command's *store delta* (the collections it
  changed, whole) back with the reply so the supervisor's mirror always
  reflects the worker's durable state as of the last acknowledged
  command.
* :class:`ShardClient` -- duck-types the ``ShardNode`` command surface
  over the queues.  Commands can be pipelined (``*_submit`` returning a
  :class:`PendingReply`); a worker executes strictly in order, so
  replies gather FIFO and per-stream ordering is preserved while
  different shards' legs genuinely run concurrently.
* :class:`FabricSupervisor` -- spawns/joins/restarts the workers.  A
  restart reseeds the worker from the supervisor's mirror and replays
  the WAL via ``ShardNode.recover``: because deltas only land with
  acknowledged replies, a command in flight when the worker died simply
  never happened durably (at-most-once), and the recovered shard is
  bit-identical to its state at the last acknowledged command.
* :func:`migrate_stream_remote` -- live migration between two worker
  shards, parent-orchestrated over four commands (precheck ->
  checkpoint+suffix on the source -> install+recover on the target ->
  fence+close on the source) with the same irreversibility order as the
  in-process :func:`~repro.fabric.migration.migrate_stream`.

See ``docs/SHARDING.md`` for the message table and restart/fencing
interaction.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as _queue
import random
import threading
import time
from collections import deque
from dataclasses import replace as _dc_replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.fabric import codec
from repro.obs.events import emit as _emit_event
from repro.obs.trace import SpanSink, get_sink, install_sink, span
from repro.fabric import shm as shm_plane
from repro.fabric.migration import MigrationError, MigrationReport
from repro.fabric.protocol import (
    DEFAULT_DEADLINES,
    FAULT_COUNTER_KEYS,
    PROTOCOL_VERSION,
    WIRE_COUNTER_KEYS,
    DeadlineExceeded,
    ProtocolError,
    Reply,
    Request,
    ShardFailed,
    WorkerCrashed,
    deadline_kind,
    encode_error,
    raise_remote,
)
from repro.fabric.shard import ShardNode
from repro.storage.docstore import Collection, DocumentStore
from repro.storage.journal import (
    CHECKPOINT_COLLECTION,
    backing_store,
    committed_checkpoint,
    copy_stream_state,
    fence_stream,
    journaled_streams,
    reset_stream,
)

#: fallback wait when a command carries no deadline (direct
#: ``_await_reply`` calls in tests; per-op deadlines from
#: ``protocol.DEFAULT_DEADLINES`` normally override this)
DEFAULT_REPLY_TIMEOUT_S = 300.0

#: the longest a deadline wait sleeps before re-probing worker liveness
#: (a crashed worker is declared dead within ~this, not the deadline)
LIVENESS_PROBE_INTERVAL_S = 0.25

#: grace drain after the process is seen dead: the reply may have been
#: enqueued (feeder thread) an instant before the death was observed
DEATH_DRAIN_GRACE_S = 0.2

#: commands that cannot mutate the shard's durable store: the worker
#: skips the store-delta scan entirely (no fingerprint sweep, no
#: serialization) and the client counts the skip in
#: ``delta_skipped_readonly``
READONLY_OPS = frozenset(
    {
        "ping",
        "streams",
        "live_streams",
        "fenced",
        "handle_info",
        "query",
        "query_batch",
        "cache_stats",
        "serving_counters",
        "cost_summary",
        "journal_counters",
        "counters",
        "metrics_snapshot",
    }
)

#: distinguishes supervisor instances in segment names (pid alone is
#: not enough: tests spawn several supervisors per process)
_SUPERVISOR_SEQ = itertools.count()


def _default_context():
    """Fork where available (fast, inherits imports); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _store_delta(
    store: DocumentStore,
    shadow: Dict[str, Tuple[Tuple[int, ...], Optional[int]]],
    sink: Optional[shm_plane.ShmSink] = None,
) -> Tuple[Optional[Dict[str, Any]], Tuple[str, ...]]:
    """Collections changed/removed since the last *shipped* command, as
    one pickled blob envelope, updating the shadow in place.

    The shadow maps collection name to ``(fingerprint, delta_token)``
    of the last shipped baseline.  An unchanged collection (same
    fingerprint, same baseline object lineage) ships nothing; a changed
    one ships a doc-level ``"cdelta"`` when its token still matches the
    shadow's (the mirror was built from that exact baseline, so only
    dirty docs need to travel) and a whole ``"cfull"`` otherwise
    (fresh collections, ``from_json_obj`` rebuilds, wholesale staged
    replacements).  The write counters inside
    :meth:`Collection.fingerprint` are monotonic, so any mutation --
    even delete+reinsert at equal length -- is caught.
    """
    names = store.collection_names()
    parts: List[Dict[str, Any]] = []
    for name in names:
        coll = store.collection(name)
        fp = coll.fingerprint()
        prev = shadow.get(name)
        token = coll.delta_token
        if prev is not None and token is not None and prev == (fp, token):
            continue
        envelope, new_token = coll.delta_snapshot(prev[1] if prev else None)
        shadow[name] = (coll.fingerprint(), new_token)
        parts.append(envelope)
    live = set(names)
    drops = tuple(sorted(n for n in shadow if n not in live))
    for name in drops:
        del shadow[name]
    if not parts:
        return None, drops
    blob = pickle.dumps(parts, protocol=pickle.HIGHEST_PROTOCOL)
    return codec.encode_blob(blob, sink), drops


def _import_precheck(node: ShardNode, stream: str) -> None:
    """Target-side migration guards (mirrors ``migrate_stream``'s)."""
    marker = committed_checkpoint(node.store, stream)
    if stream in journaled_streams(node.store) or (
        marker is not None and not marker.get("fenced")
    ):
        raise MigrationError(
            "target shard %r already holds durable state for stream %r; "
            "wipe it with repro.storage.journal.reset_stream before "
            "migrating onto it" % (node.shard_id, stream)
        )
    if stream in node.system.streams():
        raise MigrationError(
            "target shard %r is already serving stream %r"
            % (node.shard_id, stream)
        )


def _arm_crash_after_journal(node: ShardNode, stream: str) -> None:
    """Chaos hook: the next chunk journaled for ``stream`` kills the
    process immediately after the WAL write, *before* the chunk is
    applied or acknowledged -- the exact window between journal append
    and checkpoint the fault-injection drills target."""
    handle = node.system.handle(stream)
    ingestor = handle.ingestor
    if ingestor is None or ingestor.journal is None:
        raise ProtocolError(
            "stream %r has no journaled live session to crash" % stream
        )
    journal = ingestor.journal
    original = journal.append_chunk

    def exploding_append_chunk(chunk, watermark_s=None):
        original(chunk, watermark_s)
        os._exit(1)  # no reply, no delta: the append never happened durably

    journal.append_chunk = exploding_append_chunk  # type: ignore[method-assign]


def _dispatch(
    node: ShardNode,
    op: str,
    payload: Dict[str, Any],
    sink: Optional[shm_plane.ShmSink] = None,
    reader: Optional[shm_plane.ShmReader] = None,
) -> Any:
    """Execute one command against the worker's ShardNode.

    Bulk request payloads (table chunks, migration snapshots) resolve
    through ``reader``; bulk reply values (answer frames, per-stream
    results) defer into ``sink`` and resolve when the reply seals.
    """
    if op == "ping":
        return None
    if op == "streams":
        return node.streams()
    if op == "live_streams":
        return node.live_streams()
    if op == "fenced":
        return node.fenced()
    if op == "handle_info":
        return codec.encode_handle_info(node.handle_info(payload["stream"]))
    if op == "open_stream":
        kwargs = dict(payload["kwargs"])
        if "config" in kwargs:
            kwargs["config"] = codec.decode_config(kwargs["config"], reader)
        if kwargs.get("tune_on") is not None:
            kwargs["tune_on"] = codec.decode_table(kwargs["tune_on"], reader)
        node.open_stream(payload["stream"], **kwargs)
        return codec.encode_handle_info(node.handle_info(payload["stream"]))
    if op == "ingest_stream":
        kwargs = dict(payload["kwargs"])
        if "config" in kwargs:
            kwargs["config"] = codec.decode_config(kwargs["config"], reader)
        stream: Union[str, Any] = (
            codec.decode_table(payload["table"], reader)
            if payload.get("table") is not None
            else payload["stream"]
        )
        handle = node.ingest_stream(stream, **kwargs)
        return codec.encode_handle_info(node.handle_info(handle.stream))
    if op == "append":
        report = node.append(
            payload["stream"],
            codec.decode_table(payload["chunk"], reader),
            watermark_s=payload.get("watermark_s"),
        )
        return codec.encode_chunk_report(report)
    if op == "query":
        answer = node.query(
            payload["stream"],
            payload["clazz"],
            kx=payload.get("kx"),
            time_range=tuple(payload["time_range"])
            if payload.get("time_range")
            else None,
        )
        return codec.encode_query_answer(answer, sink)
    if op == "query_batch":
        requests = [codec.decode_query_request(r) for r in payload["requests"]]
        # worker-side span: parents this process's service/scheduler
        # spans under the router's scatter leg, so a stitched trace
        # crosses the process boundary (the sink is drained into the
        # reply's ``spans`` field by the main loop)
        ctx = next((r.trace for r in requests if r.trace is not None), None)
        with span(
            "worker:query_batch", ctx, shard=node.shard_id, n=len(requests)
        ) as child:
            if child is not None:
                requests = [
                    _dc_replace(r, trace=child) if r.trace is not None else r
                    for r in requests
                ]
            return [
                codec.encode_multi_answer(a, sink)
                for a in node.query_batch(requests)
            ]
    if op == "checkpoint":
        outcomes = node.checkpoint(
            streams=payload.get("streams"), strict=payload.get("strict", True)
        )
        return [codec.encode_checkpoint(o) for o in outcomes]
    if op == "recover":
        return node.recover(
            streams=payload.get("streams"),
            configs=codec.decode_config(payload.get("configs"), reader),
        )
    if op == "cache_stats":
        return node.cache_stats()
    if op == "serving_counters":
        return node.serving_counters()
    if op == "cost_summary":
        return node.cost_summary()
    if op == "journal_counters":
        return node.journal_counters()
    if op == "counters":
        return node.counters()
    if op == "metrics_snapshot":
        return node.metrics_snapshot()
    # -- migration legs (parent-orchestrated; see migrate_stream_remote) --
    if op == "import_precheck":
        _import_precheck(node, payload["stream"])
        return None
    if op == "migrate_out":
        stream = payload["stream"]
        handle = node.system.handle(stream)
        ingestor = handle.ingestor
        if ingestor is None or ingestor.journal is None:
            raise MigrationError(
                "stream %r is not a durable live session on shard %r; only "
                "sessions opened with ShardNode.open_stream(durable=True) "
                "carry the WAL state migration ships" % (stream, node.shard_id)
            )
        if backing_store(ingestor.journal.store) is not backing_store(node.store):
            raise MigrationError(
                "stream %r journals into a store that is not shard %r's own; "
                "migration copies from the shard store, so the two must match"
                % (stream, node.shard_id)
            )
        if payload.get("checkpoint", True):
            node.system.checkpoint_outcomes(node.store, streams=[stream])
        marker = committed_checkpoint(node.store, stream)
        epoch = marker["epoch"] if marker else 0
        committed_seq = marker["journal_seq"] if marker else -1
        suffix = [
            record
            for record in ingestor.journal.records(after=committed_seq)
            if record.kind == "chunk"
        ]
        return {
            "epoch": int(epoch),
            "replayed_chunks": len(suffix),
            # deliberately NOT sunk: the parent forwards this envelope
            # verbatim into the target's import_stream request, and the
            # source's reply segment is unlinked at gather -- a shm
            # descriptor here would dangle
            "config": codec.encode_config(handle.config),
        }
    if op == "import_stream":
        stream = payload["stream"]
        snapshot = payload["snapshot"]
        if isinstance(snapshot, dict) and snapshot.get("kind") == "blob":
            snapshot = pickle.loads(codec.decode_blob(snapshot, reader))
        staging = DocumentStore.from_json_obj(snapshot)
        target_marker = committed_checkpoint(node.store, stream)
        _import_precheck(node, stream)
        copy_stream_state(staging, node.store, stream)
        config = codec.decode_config(payload.get("config"), reader)
        try:
            node.system.recover(
                node.store,
                streams=[stream],
                configs={stream: config} if config is not None else None,
            )
        except BaseException:
            # same failure contract as in-process migration: wipe the
            # copy and put back the fence tombstone it replaced, so the
            # source keeps serving and old zombies stay fenced
            reset_stream(node.store, stream)
            if target_marker is not None:
                restored = {
                    k: v for k, v in target_marker.items() if k != "_id"
                }
                node.store.collection(CHECKPOINT_COLLECTION).insert_one(restored)
            raise
        handle = node.system.handle(stream)
        return {
            "rows": len(handle.table),
            "watermark_s": float(handle.watermark_s),
        }
    if op == "finish_migration":
        stream = payload["stream"]
        fence_epoch = fence_stream(
            node.store, stream, migrated_to=payload["target_shard"]
        )
        node.system.close_stream(stream)
        return {"fence_epoch": int(fence_epoch)}
    # -- chaos hooks (tests only) --
    if op == "inject_crash_after_journal":
        _arm_crash_after_journal(node, payload["stream"])
        return None
    raise ProtocolError("unknown op %r" % op)


def _reply_segment_name(prefix: str, corr_id: int) -> str:
    """The deterministic name of one reply's data-plane segment.

    Determinism is the crash-reclamation contract: the supervisor can
    probe exactly the names of its unacknowledged correlation ids after
    a worker dies and unlink any orphan it finds."""
    return "%s-r%d" % (prefix, corr_id)


def _worker_main(
    shard_id: str,
    request_q,
    reply_q,
    store_snapshot: Dict[str, Any],
    system_kwargs: Dict[str, Any],
    data_plane: Optional[Dict[str, Any]] = None,
) -> None:
    """The worker process loop: one shard, one command at a time."""
    dp = data_plane or {}
    use_shm = bool(dp.get("use_shm"))
    threshold = int(dp.get("threshold", shm_plane.DEFAULT_SHM_THRESHOLD))
    reply_prefix = dp.get("reply_prefix") or ""
    #: long-lived attachments to the supervisor's pooled request
    #: segments (same names recur command after command)
    attach_cache: Dict[str, Any] = {}
    chaos: Dict[str, Any] = {
        "exit_before_reply": False,
        #: one-shot: the NEXT command sleeps this long mid-op (after the
        #: state change, before the reply) -- the hung-worker drill
        "stall_s": 0.0,
        #: persistent: every command sleeps this long before executing
        #: (a slow-but-correct worker; replies still arrive)
        "slow_s": 0.0,
        #: the next N commands execute fully but their replies are
        #: swallowed -- the client's deadline must fire and recovery
        #: must come from the mirror (at-most-once)
        "drop_replies": 0,
    }

    # a fresh span sink: fork-inherited parent spans must not ship back
    # in this worker's replies
    install_sink(SpanSink())

    store = DocumentStore.from_json_obj(store_snapshot)
    node = ShardNode(shard_id, store=store, **system_kwargs)
    # every seeded collection starts a delta baseline the supervisor's
    # mirror shares by construction (it sent the snapshot)
    shadow = {
        name: (
            store.collection(name).fingerprint(),
            store.collection(name).mark_delta_clean(),
        )
        for name in store.collection_names()
    }

    def make_sink(corr_id: int) -> shm_plane.ShmSink:
        alloc = None
        if use_shm and reply_prefix:
            name = _reply_segment_name(reply_prefix, corr_id)
            alloc = lambda nbytes: shm_plane.create_segment(name, nbytes)
        return shm_plane.ShmSink(alloc=alloc, threshold=threshold, enabled=use_shm)

    def send(reply: Reply, sink: shm_plane.ShmSink) -> None:
        sink.seal()
        if chaos["exit_before_reply"]:
            # SIGKILL-mid-transfer drill: die with the reply sealed
            # (its segment created) but the reply never enqueued -- the
            # orphan the supervisor must reclaim by probing the names
            # of its unacknowledged correlation ids
            os._exit(1)
        if chaos["drop_replies"] > 0:
            # dropped-reply drill: the op ran in-process but its reply
            # (and therefore its delta) is lost.  The client's deadline
            # fires, the worker is condemned, its sealed segment is
            # reclaimed by name, and the restarted shard recovers from
            # the mirror -- the op never happened durably
            chaos["drop_replies"] -= 1
            sink.close_handoff()
            return
        reply_q.put(reply)
        # hand the segment off: the supervisor attaches, reads, and
        # unlinks it; only our mapping goes now
        sink.close_handoff()

    while True:
        try:
            request = request_q.get()
        except (EOFError, OSError):
            return  # the supervisor is gone
        if request is None:
            return
        if not isinstance(request, Request):
            reply_q.put(
                Reply(
                    corr_id=-1,
                    ok=False,
                    error=encode_error(
                        ProtocolError("not a Request: %r" % (request,))
                    ),
                )
            )
            continue
        if request.version != PROTOCOL_VERSION:
            reply_q.put(
                Reply(
                    corr_id=request.corr_id,
                    ok=False,
                    error=encode_error(
                        ProtocolError(
                            "protocol version mismatch: request v%r, worker "
                            "speaks v%r" % (request.version, PROTOCOL_VERSION)
                        )
                    ),
                )
            )
            continue
        if request.op == "shutdown":
            reply_q.put(Reply(corr_id=request.corr_id, ok=True))
            return
        if request.op == "inject_crash_before_reply":
            # chaos hook: acknowledge normally now; the NEXT command
            # dies after sealing its reply segment and before enqueuing
            # the reply -- the mid-transfer orphan the reclamation
            # drills target
            reply_q.put(Reply(corr_id=request.corr_id, ok=True))
            chaos["exit_before_reply"] = True
            continue
        if request.op == "inject_stall":
            reply_q.put(Reply(corr_id=request.corr_id, ok=True))
            chaos["stall_s"] = float(request.payload.get("seconds", 10.0))
            continue
        if request.op == "inject_slow":
            reply_q.put(Reply(corr_id=request.corr_id, ok=True))
            chaos["slow_s"] = float(request.payload.get("seconds", 0.0))
            continue
        if request.op == "inject_drop_reply":
            reply_q.put(Reply(corr_id=request.corr_id, ok=True))
            chaos["drop_replies"] = int(request.payload.get("count", 1))
            continue
        if chaos["slow_s"]:
            time.sleep(chaos["slow_s"])
        reader = shm_plane.ShmReader(cache=attach_cache, owns=False)
        sink = make_sink(request.corr_id)
        try:
            value = _dispatch(
                node, request.op, request.payload, sink=sink, reader=reader
            )
            stall = chaos["stall_s"]
            if stall:
                # hung-mid-op drill: the state change happened but the
                # reply never comes in time; the client's deadline kills
                # us mid-sleep and the mirror (never advanced) wins
                chaos["stall_s"] = 0.0
                time.sleep(stall)
            if request.op in READONLY_OPS:
                # read-only commands cannot move durable state: no
                # fingerprint sweep, no delta, no mirror traffic
                delta, drops = None, ()
            elif request.payload.get("defer_delta"):
                # a pipelined scatter leg with later legs behind it on
                # this shard: the dirty sets keep accumulating and the
                # round's final leg ships one cumulative delta
                delta, drops = None, ()
            else:
                delta, drops = _store_delta(store, shadow, sink)
            send(
                Reply(
                    corr_id=request.corr_id,
                    ok=True,
                    value=value,
                    store_delta=delta,
                    store_drops=drops,
                    # worker-side spans of this command (empty unless the
                    # command carried a sampled trace); the client absorbs
                    # them into the parent's sink for stitching
                    spans=tuple(get_sink().drain()),
                ),
                sink,
            )
        except Exception as exc:
            # errors ship the delta too: a strict checkpoint that failed
            # halfway still moved durable state the mirror must track --
            # and a deferred leg that failed must not defer it either.
            # A fresh sink: the failed command's partially-encoded value
            # payloads must not leak into the error reply's segment.
            error_sink = make_sink(request.corr_id)
            delta, drops = _store_delta(store, shadow, error_sink)
            send(
                Reply(
                    corr_id=request.corr_id,
                    ok=False,
                    error=encode_error(exc),
                    store_delta=delta,
                    store_drops=drops,
                    # drain even on error: a failed command's spans must
                    # not leak into the next reply
                    spans=tuple(get_sink().drain()),
                ),
                error_sink,
            )


# ---------------------------------------------------------------------------
# supervisor side
# ---------------------------------------------------------------------------

class _Worker:
    """The supervisor's handle on one worker process."""

    def __init__(
        self,
        process,
        request_q,
        reply_q,
        mirror: DocumentStore,
        reply_prefix: str = "",
    ):
        self.process = process
        self.request_q = request_q
        self.reply_q = reply_q
        #: the parent's authoritative copy of the worker's durable store,
        #: advanced by every acknowledged command's delta
        self.mirror = mirror
        self.next_corr = 0
        self.pending: deque = deque()
        #: names this worker's reply segments under
        #: ``{reply_prefix}-r{corr_id}`` (deterministic: reclaimable)
        self.reply_prefix = reply_prefix
        #: corr_id -> pooled request segment leased for that command's
        #: flight; released when the command's reply gathers
        self.request_leases: Dict[int, str] = {}
        #: client-side wire counters (survive restarts: the fabric's
        #: traffic totals are monotonic per shard, like its journal's)
        self.wire: Dict[str, float] = {k: 0.0 for k in WIRE_COUNTER_KEYS}
        #: corr_id -> reply deadline (seconds) resolved at submit time
        self.deadline_s: Dict[int, float] = {}
        #: per-shard fault counters (survive restarts, like ``wire``)
        self.faults: Dict[str, float] = {
            "worker_restarts": 0.0,
            "deadline_exceeded": 0.0,
        }
        #: set when this incarnation is written off (dead, or deadline
        #: expired and the supervisor killed it): its in-flight state is
        #: untrustworthy, so the client refuses to submit or gather
        #: against it until a restart swaps in a fresh incarnation
        self.condemned = False
        #: serializes this incarnation's submit+gather pairs so the
        #: watchdog's heartbeat never interleaves with a caller's
        #: pipelined round (replies are strictly FIFO per worker)
        self.lock = threading.RLock()

    def close_queues(self) -> None:
        for q in (self.request_q, self.reply_q):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass


class PendingReply:
    """A pipelined command's outstanding result.

    Results of one shard must be gathered in submission order (replies
    are FIFO); :meth:`result` enforces it.  The reply is bound to the
    worker *incarnation* the command was submitted to: if a watchdog
    restart swaps in a fresh incarnation meanwhile, gathering raises
    :class:`WorkerCrashed` (the command never happened durably) instead
    of misreading the new worker's stream.
    """

    def __init__(
        self, client: "ShardClient", corr_id: int, decode, worker=None
    ):
        self._client = client
        self._corr_id = corr_id
        self._decode = decode
        self._worker = worker

    def result(self) -> Any:
        return self._client._gather(self._corr_id, self._decode, self._worker)


class ShardClient:
    """The ``ShardNode`` command surface, spoken over a worker's queues.

    Duck-types every shard method the :class:`~repro.fabric.router.
    FabricRouter` touches, so a router built over clients behaves
    identically to one built over in-process nodes -- same placement,
    same merges, same bit-identical answers -- while its scatter legs
    run in genuinely parallel processes.  Lifecycle calls return
    :class:`~repro.fabric.protocol.StreamHandleInfo` (live handles are
    worker-local).  ``store`` is the supervisor-side mirror: read it
    freely, never write it.
    """

    def __init__(self, supervisor: "FabricSupervisor", shard_id: str):
        self._supervisor = supervisor
        self.shard_id = shard_id

    def __repr__(self) -> str:
        return "ShardClient(%r)" % self.shard_id

    @property
    def store(self) -> DocumentStore:
        return self._worker().mirror

    def _worker(self) -> _Worker:
        return self._supervisor._worker(self.shard_id)

    # -- the wire ----------------------------------------------------------
    def _submit(
        self,
        op: str,
        payload: Dict[str, Any],
        decode=None,
        sink=None,
        deadline_s: Optional[float] = None,
    ) -> PendingReply:
        worker = self._worker()
        with worker.lock:
            if worker.condemned or not worker.process.is_alive():
                if not worker.condemned:
                    # noticed the death here: condemn the incarnation so
                    # its shm leases are reclaimed NOW, not at restart
                    self._supervisor._condemn(
                        worker,
                        self.shard_id,
                        "found dead at submit (exitcode %r)"
                        % worker.process.exitcode,
                    )
                raise WorkerCrashed(
                    "shard worker %r is dead; restart it via "
                    "FabricSupervisor.restart (or ensure_alive)"
                    % self.shard_id
                )
            corr_id = worker.next_corr
            worker.next_corr += 1
            if sink is not None:
                # resolve the payload's bulk fields NOW (inline or pooled
                # segment descriptors) -- the envelopes are patched in place
                sink.seal()
                if sink.segment_name is not None:
                    worker.request_leases[corr_id] = sink.segment_name
                worker.wire["shm_bytes"] += sink.sealed_nbytes
            worker.wire["wire_bytes_sent"] += codec.payload_nbytes(payload)
            if op in READONLY_OPS:
                worker.wire["delta_skipped_readonly"] += 1
            worker.request_q.put(
                Request(corr_id=corr_id, op=op, payload=payload)
            )
            # the deadline entry is registered only once the request is
            # durably on the queue (and popped on *every* gather exit):
            # an encode/submit-path failure must not leak an entry for
            # the incarnation's lifetime
            worker.deadline_s[corr_id] = (
                float(deadline_s)
                if deadline_s is not None
                else self._supervisor.deadline_for(op)
            )
            worker.pending.append(corr_id)
            return PendingReply(self, corr_id, decode, worker)

    def _call(
        self,
        op: str,
        payload: Dict[str, Any],
        decode=None,
        sink=None,
        deadline_s: Optional[float] = None,
    ) -> Any:
        return self._submit(
            op, payload, decode, sink=sink, deadline_s=deadline_s
        ).result()

    def _gather(self, corr_id: int, decode=None, worker: Optional[_Worker] = None) -> Any:
        if worker is None:
            worker = self._worker()
        with worker.lock:
            if worker.condemned:
                # the command is dead with the incarnation: drop its
                # deadline entry (normally cleared wholesale by
                # ``_reclaim`` at condemn time) so no exit path leaks it
                worker.deadline_s.pop(corr_id, None)
                raise WorkerCrashed(
                    "shard worker %r was condemned (crashed or "
                    "deadline-killed); its unacknowledged commands never "
                    "happened durably -- restart and retry" % self.shard_id
                )
            if not worker.pending or worker.pending[0] != corr_id:
                raise ProtocolError(
                    "shard %r replies must be gathered in submission order"
                    % self.shard_id
                )
            reply = self._await_reply(worker, corr_id)
            worker.pending.popleft()
            worker.deadline_s.pop(corr_id, None)
            # a gathered reply proves the worker (strictly in-order) is done
            # reading the request's segment: return the lease to the pool
            lease = worker.request_leases.pop(corr_id, None)
            if lease is not None:
                self._supervisor._release_lease(lease)
            if reply.corr_id != corr_id:
                raise ProtocolError(
                    "shard %r answered corr_id %r, expected %r"
                    % (self.shard_id, reply.corr_id, corr_id)
                )
            # any reply -- even an error -- proves the worker responsive
            self._supervisor._note_healthy(self.shard_id)
            reader = shm_plane.ShmReader(owns=True)
            try:
                return self._apply(worker, reply, reader, decode)
            finally:
                # consume-once contract: unlink the reply's segment (if
                # any) whether the command succeeded or raised
                worker.wire["shm_bytes"] += reader.total_nbytes
                reader.close()

    def _apply(self, worker: _Worker, reply: Reply, reader, decode) -> Any:
        worker.wire["wire_bytes_received"] += codec.payload_nbytes(
            reply.value
        ) + codec.payload_nbytes(reply.store_delta)
        if reply.spans:
            # stitch the worker's spans into this process's sink: the
            # trace exporter then sees one tree across both processes
            get_sink().absorb(reply.spans)
        if reply.store_delta is not None:
            parts = pickle.loads(codec.decode_blob(reply.store_delta, reader))
            for envelope in parts:
                name = envelope["name"]
                if envelope["kind"] == "cfull":
                    coll = Collection.from_json_obj(envelope["coll"])
                    worker.mirror.replace_collection(name, coll)
                    worker.wire["delta_docs_shipped"] += len(coll)
                else:
                    worker.wire["delta_docs_shipped"] += worker.mirror.collection(
                        name
                    ).apply_delta(envelope)
        for name in reply.store_drops:
            worker.mirror.drop(name)
        if not reply.ok:
            raise_remote(reply.error)
        value = reply.value
        if decode is not None:
            value = decode(value, reader)
        return value

    def _await_reply(
        self, worker: _Worker, corr_id: Optional[int] = None
    ) -> Reply:
        """Deadline-aware reply wait: sleeps on the queue in liveness-
        probe slices (no fixed busy-poll), and on expiry *condemns* the
        worker (kill + lease reclamation) instead of waiting forever."""
        deadline_s = DEFAULT_REPLY_TIMEOUT_S
        if corr_id is not None:
            deadline_s = worker.deadline_s.get(corr_id, DEFAULT_REPLY_TIMEOUT_S)
        deadline = time.monotonic() + deadline_s
        while True:
            remaining = deadline - time.monotonic()
            wait = min(max(remaining, 0.001), LIVENESS_PROBE_INTERVAL_S)
            try:
                return worker.reply_q.get(timeout=wait)
            except _queue.Empty:
                pass
            if not worker.process.is_alive():
                # the reply may have landed between the queue timeout and
                # the liveness check: drain once more before declaring
                # the command lost (regression-tested race)
                try:
                    return worker.reply_q.get(timeout=DEATH_DRAIN_GRACE_S)
                except _queue.Empty:
                    self._supervisor._condemn(
                        worker,
                        self.shard_id,
                        "died before replying (exitcode %r)"
                        % worker.process.exitcode,
                    )
                    raise WorkerCrashed(
                        "shard worker %r died before replying (exitcode "
                        "%r); its unacknowledged command never happened "
                        "durably -- restart and retry"
                        % (self.shard_id, worker.process.exitcode)
                    )
            if time.monotonic() >= deadline:
                worker.faults["deadline_exceeded"] += 1
                _emit_event(
                    "fabric.deadline_exceeded",
                    shard=self.shard_id,
                    corr_id=corr_id,
                    deadline_s=deadline_s,
                )
                self._supervisor._condemn(
                    worker,
                    self.shard_id,
                    "no reply within the %.1fs deadline" % deadline_s,
                )
                raise DeadlineExceeded(
                    "shard worker %r did not reply within its %.1fs "
                    "deadline; the worker was killed (state discarded, "
                    "shm leases reclaimed) and its unacknowledged commands "
                    "never happened durably -- restart via "
                    "FabricSupervisor.ensure_alive and retry"
                    % (self.shard_id, deadline_s)
                )

    # -- stream lifecycle --------------------------------------------------
    def streams(self) -> List[str]:
        return self._call("streams", {})

    def live_streams(self) -> List[str]:
        return self._call("live_streams", {})

    def fenced(self) -> List[str]:
        return self._call("fenced", {})

    def handle_info(self, stream: str):
        return self._call(
            "handle_info", {"stream": stream}, codec.decode_handle_info
        )

    def open_stream(self, stream: str, **kwargs):
        payload_kwargs = dict(kwargs)
        sink = self._supervisor._request_sink()
        if "config" in payload_kwargs:
            payload_kwargs["config"] = codec.encode_config(
                payload_kwargs["config"], sink
            )
        if payload_kwargs.get("tune_on") is not None:
            payload_kwargs["tune_on"] = codec.encode_table(
                payload_kwargs["tune_on"], sink
            )
        return self._call(
            "open_stream",
            {"stream": stream, "kwargs": payload_kwargs},
            codec.decode_handle_info,
            sink=sink,
        )

    def ingest_stream(self, stream, **kwargs):
        payload_kwargs = dict(kwargs)
        payload: Dict[str, Any] = {"kwargs": payload_kwargs}
        sink = self._supervisor._request_sink()
        if "config" in payload_kwargs:
            payload_kwargs["config"] = codec.encode_config(
                payload_kwargs["config"], sink
            )
        if hasattr(stream, "observation_seeds"):  # an ObservationTable
            payload["table"] = codec.encode_table(stream, sink)
            payload["stream"] = stream.stream
        else:
            payload["table"] = None
            payload["stream"] = stream
        return self._call(
            "ingest_stream", payload, codec.decode_handle_info, sink=sink
        )

    def append(self, stream: str, chunk, watermark_s: Optional[float] = None):
        return self.append_submit(stream, chunk, watermark_s=watermark_s).result()

    def append_submit(
        self,
        stream: str,
        chunk,
        watermark_s: Optional[float] = None,
        defer_delta: bool = False,
    ) -> PendingReply:
        """Pipelined append: enqueue now, gather the report later.

        ``defer_delta=True`` marks this leg as a non-final append of one
        scatter round on its shard: the worker skips the reply's store
        delta and lets the round's last leg ship one cumulative delta
        (the mirror then advances at round granularity -- see
        ``docs/SHARDING.md``).  Callers must guarantee a non-deferred
        append follows on the same shard before the round ends.
        """
        sink = self._supervisor._request_sink()
        payload = {
            "stream": stream,
            "chunk": codec.encode_table(chunk, sink),
            "watermark_s": watermark_s,
        }
        if defer_delta:
            payload["defer_delta"] = True
        return self._submit(
            "append", payload, codec.decode_chunk_report, sink=sink
        )

    # -- serving -----------------------------------------------------------
    def query(self, stream, clazz, kx=None, time_range=None):
        return self._call(
            "query",
            {
                "stream": stream,
                "clazz": clazz,
                "kx": kx,
                "time_range": list(time_range) if time_range else None,
            },
            codec.decode_query_answer,
        )

    def query_batch(self, requests: Sequence) -> List:
        return self.query_batch_submit(requests).result()

    def query_batch_submit(self, requests: Sequence) -> PendingReply:
        """Pipelined scatter leg: one verification round on the worker."""
        return self._submit(
            "query_batch",
            {"requests": [codec.encode_query_request(r) for r in requests]},
            lambda value, reader=None: [
                codec.decode_multi_answer(a, reader) for a in value
            ],
        )

    # -- durability ----------------------------------------------------------
    def checkpoint(self, streams=None, strict: bool = True) -> List:
        return self.checkpoint_submit(streams=streams, strict=strict).result()

    def checkpoint_submit(self, streams=None, strict: bool = True) -> PendingReply:
        return self._submit(
            "checkpoint",
            {
                "streams": list(streams) if streams is not None else None,
                "strict": strict,
            },
            lambda value, reader=None: [
                codec.decode_checkpoint(o, reader) for o in value
            ],
        )

    def recover(self, streams=None, configs=None) -> List[str]:
        sink = self._supervisor._request_sink()
        return self._call(
            "recover",
            {
                "streams": list(streams) if streams is not None else None,
                "configs": codec.encode_config(
                    dict(configs) if configs is not None else None, sink
                ),
            },
            sink=sink,
        )

    # -- observability -------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        return self._call("cache_stats", {})

    def serving_counters(self) -> Dict[str, float]:
        return self._call("serving_counters", {})

    def cost_summary(self) -> Dict[str, float]:
        out = dict(self._call("cost_summary", {}))
        worker = self._worker()
        for key in WIRE_COUNTER_KEYS:
            out[key] = float(out.get(key, 0.0)) + float(worker.wire[key])
        for key in FAULT_COUNTER_KEYS:
            # the shard reports zeros (key parity with ShardNode); the
            # supervisor-side fault ledger fills in the real values.
            # Router-side keys (retries/partial_answers) stay zero here
            # and land in FabricRouter.cost_summary's fleet total.
            out[key] = float(out.get(key, 0.0)) + float(
                worker.faults.get(key, 0.0)
            )
        return out

    def journal_counters(self) -> Dict[str, float]:
        return self._call("journal_counters", {})

    def counters(self) -> Dict[str, Any]:
        return self._call("counters", {})

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The worker shard's metrics-registry snapshot (same shape as
        ``ShardNode.metrics_snapshot``: histograms in their mergeable
        wire encoding)."""
        return self._call("metrics_snapshot", {})

    def ping(self, deadline_s: Optional[float] = None) -> None:
        """Liveness probe.  ``deadline_s`` overrides the control-kind
        deadline (the watchdog's heartbeat uses a short one)."""
        self._call("ping", {}, deadline_s=deadline_s)

    # -- chaos (tests) -------------------------------------------------------
    def inject_stall(self, seconds: float = 10.0) -> None:
        """Arm the worker to hang mid-op: the NEXT command executes,
        then sleeps ``seconds`` before replying -- past any sane
        deadline, so the client condemns the worker mid-sleep."""
        self._call("inject_stall", {"seconds": float(seconds)})

    def inject_slow(self, seconds: float) -> None:
        """Make the worker slow-but-correct: every subsequent command
        sleeps ``seconds`` before executing (0 turns it off)."""
        self._call("inject_slow", {"seconds": float(seconds)})

    def inject_drop_reply(self, count: int = 1) -> None:
        """Swallow the next ``count`` replies: the ops execute in the
        worker but never acknowledge -- the deadline fires and the
        restarted shard recovers from the mirror (at-most-once)."""
        self._call("inject_drop_reply", {"count": int(count)})

    def inject_crash_after_journal(self, stream: str) -> None:
        """Arm the worker to die right after the next WAL append for
        ``stream`` -- before applying or acknowledging the chunk."""
        self._call("inject_crash_after_journal", {"stream": stream})

    def inject_crash_before_reply(self) -> None:
        """Arm the worker to die after its next command seals the reply
        (creating its data-plane segment) but before the reply is
        enqueued -- the mid-transfer orphan the reclamation drills
        target."""
        self._call("inject_crash_before_reply", {})


class _ShardHealth:
    """Supervisor-side health record for one shard's crash-loop breaker."""

    __slots__ = ("state", "consecutive_failures", "last_error")

    def __init__(self):
        self.state = "healthy"  # "healthy" | "failed"
        #: failure events (condemns, failed restarts) since the last
        #: healthy reply; the breaker trips at max_consecutive_failures
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None


class FabricSupervisor:
    """Spawns, restarts, and tears down one worker process per shard.

    The supervisor keeps each shard's *mirror* store -- seeded from the
    optional ``stores`` argument and advanced by every acknowledged
    command's delta.  :meth:`restart` respawns a dead (or killed) worker
    from that mirror and replays its WAL through
    ``ShardNode.recover``, which is the whole crash-recovery story:
    no pickled live state, just the PR-4 durability machinery.

    ``system_kwargs`` are forwarded to every worker's
    :class:`~repro.fabric.shard.ShardNode` (e.g. ``num_query_gpus``).
    Use as a context manager to guarantee the fleet is torn down.

    ``use_shm`` governs the data plane: when True (and the host can
    serve POSIX shared memory), bulk payloads whose message totals at
    least ``shm_threshold`` bytes travel through shared segments --
    requests through a supervisor-owned :class:`~repro.fabric.shm.
    ShmPool`, replies through per-command deterministic segments.  When
    False everything inlines through the queues (the PR-6 wire),
    bit-identically.

    Self-healing (see ``docs/RESILIENCE.md``): every command carries a
    per-op-kind reply deadline (``deadlines`` overrides the
    ``protocol.DEFAULT_DEADLINES`` table); expiry *condemns* the worker
    -- killed on the spot, shm leases reclaimed, clients refused --
    and raises :class:`~repro.fabric.protocol.DeadlineExceeded`.
    :meth:`ensure_alive` is the one respawn door (used by the router's
    retries and by :meth:`start_watchdog`'s health loop), with
    exponential backoff + jitter and a crash-loop breaker that marks a
    shard ``FAILED`` (:class:`~repro.fabric.protocol.ShardFailed`)
    after ``max_consecutive_failures`` failures with no healthy reply
    in between.
    """

    def __init__(
        self,
        shard_ids: Sequence[str],
        stores: Optional[Mapping[str, DocumentStore]] = None,
        mp_context=None,
        use_shm: bool = True,
        shm_threshold: int = shm_plane.DEFAULT_SHM_THRESHOLD,
        deadlines: Optional[Mapping[str, float]] = None,
        max_consecutive_failures: int = 5,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_jitter: float = 0.25,
        **system_kwargs,
    ):
        if not shard_ids:
            raise ValueError("a fabric needs at least one shard worker")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("duplicate shard ids: %s" % list(shard_ids))
        self._ctx = mp_context or _default_context()
        self._system_kwargs = dict(system_kwargs)
        self._use_shm = bool(use_shm) and shm_plane.shm_available()
        self._threshold = int(shm_threshold)
        self._deadlines = dict(DEFAULT_DEADLINES)
        if deadlines:
            unknown = set(deadlines) - set(self._deadlines)
            if unknown:
                raise ValueError(
                    "unknown deadline kinds %s (have: %s)"
                    % (sorted(unknown), sorted(self._deadlines))
                )
            self._deadlines.update(
                {kind: float(s) for kind, s in deadlines.items()}
            )
        self.max_consecutive_failures = int(max_consecutive_failures)
        self._backoff_base_s = float(backoff_base_s)
        self._backoff_max_s = float(backoff_max_s)
        self._backoff_jitter = float(backoff_jitter)
        #: leaf lock for health-record flips (never held while taking
        #: another lock -- breaks any cycle with worker/restart locks)
        self._health_mutex = threading.Lock()
        #: serializes ensure_alive/restart so the watchdog and a
        #: retrying router never double-respawn one shard
        self._restart_lock = threading.RLock()
        self._health: Dict[str, _ShardHealth] = {
            shard_id: _ShardHealth() for shard_id in shard_ids
        }
        self._watchdog: Optional["FabricWatchdog"] = None
        self._prefix = "fab%x-%d" % (os.getpid(), next(_SUPERVISOR_SEQ))
        self._incarnations = itertools.count()
        self._pool = (
            shm_plane.ShmPool(self._prefix + "q") if self._use_shm else None
        )
        #: request segments still leased when :meth:`shutdown` closed
        #: the pool -- the leak check the tests assert empty
        self.leaked_segments: List[str] = []
        self._workers: Dict[str, _Worker] = {}
        for shard_id in shard_ids:
            mirror = None
            if stores is not None:
                mirror = stores.get(shard_id)
            self._workers[shard_id] = self._spawn(
                shard_id, mirror if mirror is not None else DocumentStore()
            )

    # -- the data plane ------------------------------------------------------
    def _request_sink(self) -> shm_plane.ShmSink:
        """A sink for one outbound command's bulk payloads, backed by
        the pooled allocator (or the inline fallback when shm is off)."""
        if self._pool is None:
            return shm_plane.ShmSink(alloc=None, enabled=False)
        return shm_plane.ShmSink(
            alloc=self._pool.allocate, threshold=self._threshold, enabled=True
        )

    def _release_lease(self, name: str) -> None:
        if self._pool is not None:
            self._pool.release(name)

    def _reclaim(self, worker: _Worker) -> None:
        """Reclaim a dead worker's data-plane remains: return its
        leased request segments to the pool (no concurrent reader can
        exist) and unlink any orphan reply segment a command in flight
        left behind (the worker died between sealing and replying).
        Runs at failure-*detection* time (``_condemn``), not just at
        restart -- a condemned worker must not sit on leases for the
        whole outage."""
        if self._pool is not None:
            self._pool.release_many(worker.request_leases.values())
        worker.request_leases.clear()
        if worker.reply_prefix:
            for corr_id in worker.pending:
                shm_plane.unlink_segment(
                    _reply_segment_name(worker.reply_prefix, corr_id)
                )
        # no command of a condemned incarnation will ever be gathered:
        # its reply deadlines die with it (a leaked entry would otherwise
        # outlive the outage for the incarnation's lifetime)
        worker.deadline_s.clear()

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self, shard_id: str, mirror: DocumentStore) -> _Worker:
        request_q = self._ctx.Queue()
        reply_q = self._ctx.Queue()
        # per-incarnation prefix: a restarted worker can never collide
        # with (or resurrect) its dead predecessor's reply segments
        reply_prefix = ""
        if self._use_shm:
            reply_prefix = "%s-%s-i%d" % (
                self._prefix,
                shard_id,
                next(self._incarnations),
            )
        data_plane = {
            "use_shm": self._use_shm,
            "threshold": self._threshold,
            "reply_prefix": reply_prefix,
        }
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                shard_id,
                request_q,
                reply_q,
                mirror.to_json_obj(),
                self._system_kwargs,
                data_plane,
            ),
            name="shard-worker-%s" % shard_id,
            daemon=True,
        )
        process.start()
        _emit_event("worker.spawn", shard=shard_id, worker_pid=process.pid)
        return _Worker(process, request_q, reply_q, mirror, reply_prefix)

    def _worker(self, shard_id: str) -> _Worker:
        try:
            return self._workers[shard_id]
        except KeyError:
            raise KeyError(
                "no shard worker %r (have: %s)"
                % (shard_id, ", ".join(self.shard_ids()))
            )

    def shard_ids(self) -> List[str]:
        return sorted(self._workers)

    def client(self, shard_id: str) -> ShardClient:
        self._worker(shard_id)  # validate
        return ShardClient(self, shard_id)

    def clients(self) -> List[ShardClient]:
        return [self.client(shard_id) for shard_id in self.shard_ids()]

    def store(self, shard_id: str) -> DocumentStore:
        """The shard's supervisor-side mirror store (read-only by
        convention: deltas from the worker overwrite whole collections)."""
        return self._worker(shard_id).mirror

    def alive(self, shard_id: str) -> bool:
        return self._worker(shard_id).process.is_alive()

    def healthy(self, shard_id: str) -> bool:
        """Alive, not condemned, and the breaker has not tripped."""
        worker = self._worker(shard_id)
        return (
            worker.process.is_alive()
            and not worker.condemned
            and self._health[shard_id].state != "failed"
        )

    def health(self, shard_id: str) -> Dict[str, Any]:
        """The shard's breaker record (state/failure streak/last error)."""
        record = self._health[shard_id]
        return {
            "state": record.state,
            "consecutive_failures": record.consecutive_failures,
            "last_error": record.last_error,
        }

    def deadline_for(self, op: str) -> float:
        """The reply deadline (seconds) one op gets on this fabric."""
        return self._deadlines[deadline_kind(op)]

    def _condemn(self, worker: _Worker, shard_id: str, why: str) -> None:
        """Write a worker incarnation off at failure-*detection* time:
        kill it if still running (a hung worker must not keep mutating
        past its deadline), reclaim its shm leases immediately -- not
        at some later restart -- and mark it so clients refuse further
        traffic until a fresh incarnation is swapped in.  Counts one
        failure toward the shard's crash-loop breaker."""
        with self._health_mutex:
            if worker.condemned:
                return
            worker.condemned = True
            record = self._health.get(shard_id)
            if record is not None and record.state != "failed":
                record.consecutive_failures += 1
                record.last_error = why
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        self._reclaim(worker)
        _emit_event("worker.condemn", shard=shard_id, why=why)

    def _note_healthy(self, shard_id: str) -> None:
        """A gathered reply proves the worker responsive: reset its
        failure streak (the breaker counts *consecutive* failures)."""
        record = self._health.get(shard_id)
        if record is not None and record.state != "failed":
            record.consecutive_failures = 0

    def ensure_alive(
        self,
        shard_id: str,
        configs: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """Respawn the shard's worker if it is dead or condemned.

        The self-healing entry point (watchdog and router retries both
        funnel here): no-op on a healthy worker, otherwise
        :meth:`restart` behind exponential backoff + jitter, and a
        crash-loop circuit breaker that marks the shard ``FAILED``
        (raising :class:`ShardFailed`, here and on every later call)
        after ``max_consecutive_failures`` failures with no healthy
        reply in between.  Returns True when a restart happened.
        """
        with self._restart_lock:
            worker = self._worker(shard_id)
            record = self._health[shard_id]
            if worker.process.is_alive() and not worker.condemned:
                return False
            if record.state == "failed":
                raise ShardFailed(
                    "shard %r is FAILED after %d consecutive failures "
                    "(last: %s); fix the cause and call reset_failed"
                    % (shard_id, record.consecutive_failures, record.last_error)
                )
            if record.consecutive_failures >= self.max_consecutive_failures:
                with self._health_mutex:
                    record.state = "failed"
                _emit_event(
                    "breaker.trip",
                    shard=shard_id,
                    failures=record.consecutive_failures,
                    last_error=record.last_error,
                )
                raise ShardFailed(
                    "shard %r marked FAILED: %d consecutive failures "
                    "without a healthy reply (last: %s)"
                    % (shard_id, record.consecutive_failures, record.last_error)
                )
            if record.consecutive_failures > 1:
                # repeated failures: back off exponentially (with
                # jitter, so a fleet-wide outage does not respawn every
                # shard in lockstep)
                delay = min(
                    self._backoff_max_s,
                    self._backoff_base_s
                    * (2.0 ** (record.consecutive_failures - 1)),
                )
                time.sleep(delay * (1.0 + self._backoff_jitter * random.random()))
            try:
                self.restart(shard_id, configs=configs)
            except Exception as exc:
                with self._health_mutex:
                    record.consecutive_failures += 1
                    record.last_error = str(exc)
                    tripped = (
                        record.consecutive_failures
                        >= self.max_consecutive_failures
                    )
                    if tripped:
                        record.state = "failed"
                if tripped:
                    _emit_event(
                        "breaker.trip",
                        shard=shard_id,
                        failures=record.consecutive_failures,
                        last_error=str(exc),
                    )
                    raise ShardFailed(
                        "shard %r marked FAILED after %d consecutive "
                        "failures (last restart attempt: %s)"
                        % (shard_id, record.consecutive_failures, exc)
                    ) from exc
                raise
            return True

    def reset_failed(self, shard_id: str) -> None:
        """Re-arm a tripped crash-loop breaker (after fixing the cause);
        the next :meth:`ensure_alive` may restart the shard again."""
        record = self._health[shard_id]
        with self._health_mutex:
            record.state = "healthy"
            record.consecutive_failures = 0
            record.last_error = None
        _emit_event("breaker.rearm", shard=shard_id)

    # -- the watchdog --------------------------------------------------------
    def start_watchdog(
        self,
        interval_s: float = 0.5,
        heartbeat_deadline_s: Optional[float] = None,
        configs: Optional[Mapping[str, Any]] = None,
    ) -> "FabricWatchdog":
        """Start the background health loop (idempotent): it respawns
        crashed/condemned workers and heartbeats idle ones so a shard
        hung *between* commands is caught without any caller waiting on
        it.  ``configs`` feed the restart-path ``recover`` (specialized
        models the journaled descriptors cannot rebuild)."""
        if self._watchdog is None:
            self._watchdog = FabricWatchdog(
                self,
                interval_s=interval_s,
                heartbeat_deadline_s=heartbeat_deadline_s,
                configs=configs,
            )
            self._watchdog.start()
        return self._watchdog

    def stop_watchdog(self) -> None:
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None

    def kill(self, shard_id: str) -> None:
        """SIGKILL the worker (chaos drills).  The mirror keeps the
        state as of the last acknowledged command; :meth:`restart`
        resumes from it."""
        worker = self._worker(shard_id)
        with self._health_mutex:
            # deliberate kill: condemn without charging the breaker
            worker.condemned = True
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        self._reclaim(worker)

    def restart(
        self,
        shard_id: str,
        recover: bool = True,
        configs: Optional[Mapping[str, Any]] = None,
    ) -> List[str]:
        """Respawn a worker from its mirror and replay its WAL.

        Returns the recovered stream names (``ShardNode.recover``:
        streams fenced by a migration away are skipped, and ``configs``
        supplies ingest configurations the journaled descriptor cannot
        rebuild -- specialized models).
        """
        with self._restart_lock:
            worker = self._worker(shard_id)
            with self._health_mutex:
                worker.condemned = True
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join()
            self._reclaim(worker)
            worker.close_queues()
            fresh = self._spawn(shard_id, worker.mirror)
            fresh.wire = worker.wire  # traffic totals are monotonic per shard
            fresh.faults = worker.faults  # so is the fault ledger
            fresh.faults["worker_restarts"] += 1
            self._workers[shard_id] = fresh
            _emit_event(
                "worker.restart",
                shard=shard_id,
                restarts=fresh.faults["worker_restarts"],
            )
            if recover:
                return self.client(shard_id).recover(configs=configs)
            return []

    def shutdown(self) -> None:
        """Stop every worker (graceful command, then kill) and close
        the queues.  Idempotent."""
        self.stop_watchdog()
        for shard_id, worker in list(self._workers.items()):
            if worker.process.is_alive():
                try:
                    worker.request_q.put(
                        Request(corr_id=worker.next_corr, op="shutdown")
                    )
                    worker.next_corr += 1
                except Exception:
                    pass
                worker.process.join(timeout=5)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join()
            self._reclaim(worker)
            worker.close_queues()
        if self._pool is not None:
            # the leak check: anything still leased at teardown was
            # neither gathered nor reclaimed -- record it loudly
            self.leaked_segments.extend(self._pool.close())

    def __enter__(self) -> "FabricSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class FabricWatchdog:
    """The supervisor's background health loop (one daemon thread).

    Every ``interval_s`` it sweeps the fleet:

    * a dead or condemned worker (crashed on its own, or deadline-killed
      by a client) is respawned through
      :meth:`FabricSupervisor.ensure_alive` -- mirror+WAL recovery,
      backoff, breaker and all;
    * an *idle* worker is heartbeated with a short-deadline ``ping``, so
      a shard hung between commands (wedged GC, stuck syscall) is
      detected and restarted even when no caller is waiting on it.

    The heartbeat only runs when the worker's lock is free and it has
    no in-flight commands: replies are strictly FIFO, so a ping behind
    a busy round would just measure the round -- and a worker moving
    its own traffic is evidently alive.  Division of labor: *clients*
    enforce deadlines and condemn; the watchdog *restarts*.
    """

    def __init__(
        self,
        supervisor: FabricSupervisor,
        interval_s: float = 0.5,
        heartbeat_deadline_s: Optional[float] = None,
        configs: Optional[Mapping[str, Any]] = None,
    ):
        self._supervisor = supervisor
        self._interval_s = float(interval_s)
        #: None -> the fabric's control-kind deadline
        self._heartbeat_deadline_s = heartbeat_deadline_s
        self._configs = configs
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fabric-watchdog", daemon=True
        )
        #: restarts this watchdog performed (observability for drills)
        self.restarts = 0

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=30.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            for shard_id in self._supervisor.shard_ids():
                if self._stop.is_set():
                    return
                try:
                    self._check(shard_id)
                except ShardFailed:
                    continue  # breaker tripped: stop poking this shard
                except Exception:
                    continue  # one shard's probe must never kill the loop

    def _check(self, shard_id: str) -> None:
        supervisor = self._supervisor
        try:
            worker = supervisor._worker(shard_id)
        except KeyError:
            return  # torn down under us
        if supervisor._health[shard_id].state == "failed":
            return
        if worker.condemned or not worker.process.is_alive():
            if supervisor.ensure_alive(shard_id, configs=self._configs):
                self.restarts += 1
                _emit_event("watchdog.respawn", shard=shard_id)
            return
        # idle heartbeat: non-blocking lock + empty pipeline, or skip
        if not worker.lock.acquire(blocking=False):
            return
        try:
            if worker.pending:
                return
            try:
                supervisor.client(shard_id).ping(
                    deadline_s=self._heartbeat_deadline_s
                )
            except (DeadlineExceeded, WorkerCrashed):
                # the failed ping condemned the incarnation; respawn it
                if supervisor.ensure_alive(shard_id, configs=self._configs):
                    self.restarts += 1
                    _emit_event("watchdog.respawn", shard=shard_id)
        finally:
            worker.lock.release()


# ---------------------------------------------------------------------------
# cross-process migration
# ---------------------------------------------------------------------------

def migrate_stream_remote(
    source: ShardClient,
    target: ShardClient,
    stream: str,
    checkpoint: bool = True,
) -> MigrationReport:
    """Move one live durable stream between two *worker* shards.

    The parent orchestrates the same protocol as the in-process
    :func:`~repro.fabric.migration.migrate_stream`, split into four
    commands with the identical irreversibility order:

    1. ``import_precheck`` (target): refuse before any source-side work
       when the target already holds the stream's durable state.
    2. ``migrate_out`` (source): guards, optional epoch-CAS checkpoint,
       journal-suffix count, and the live config -- the source keeps
       serving.  Its reply's delta lands the checkpoint in the source
       mirror, from which the parent cuts the copy
       (:func:`~repro.storage.journal.copy_stream_state` into a scratch
       store -- exactly the collections the stream owns, plus its
       checkpoint marker).
    3. ``import_stream`` (target): install the copy and recover.  A
       failure wipes the copy and restores the target's prior fence
       tombstone *inside the worker*, then propagates -- the stream is
       still owned and served by the source.
    4. ``finish_migration`` (source): fence the source lineage one
       epoch ahead and release the in-memory session.  Only now is the
       move irreversible; a crash between 3 and 4 leaves both copies
       durable but the source authoritative (its fence has not moved),
       and the target's copy is wiped by the next precheck's guard
       instruction.
    """
    if source.shard_id == target.shard_id:
        raise MigrationError(
            "stream %r already lives on shard %r" % (stream, target.shard_id)
        )
    _emit_event(
        "migration.start",
        shard=source.shard_id,
        stream=stream,
        target=target.shard_id,
    )
    target._call("import_precheck", {"stream": stream})
    out = source._call(
        "migrate_out", {"stream": stream, "checkpoint": checkpoint}
    )
    _emit_event(
        "migration.exported",
        shard=source.shard_id,
        stream=stream,
        epoch=int(out["epoch"]),
        replayed_chunks=int(out["replayed_chunks"]),
    )
    scratch = DocumentStore()
    copy_stream_state(source.store, scratch, stream)
    sink = target._supervisor._request_sink()
    snapshot = codec.encode_blob(
        pickle.dumps(scratch.to_json_obj(), protocol=pickle.HIGHEST_PROTOCOL),
        sink,
    )
    imported = target._call(
        "import_stream",
        {
            "stream": stream,
            "snapshot": snapshot,
            "config": out["config"],
        },
        sink=sink,
    )
    _emit_event(
        "migration.imported",
        shard=target.shard_id,
        stream=stream,
        rows=int(imported["rows"]),
    )
    finished = source._call(
        "finish_migration", {"stream": stream, "target_shard": target.shard_id}
    )
    _emit_event(
        "migration.finished",
        shard=target.shard_id,
        stream=stream,
        fence_epoch=int(finished["fence_epoch"]),
    )
    return MigrationReport(
        stream=stream,
        source_shard=source.shard_id,
        target_shard=target.shard_id,
        epoch=int(out["epoch"]),
        fence_epoch=int(finished["fence_epoch"]),
        replayed_chunks=int(out["replayed_chunks"]),
        rows=int(imported["rows"]),
        watermark_s=float(imported["watermark_s"]),
    )
