"""Sharded serving fabric: placement, scatter-gather routing, migration.

Turns N independent :class:`~repro.core.system.FocusSystem` shards into
one logical service (the ROADMAP's horizontal-scaling layer):

* :mod:`repro.fabric.placement` -- deterministic rendezvous-hash
  placement of streams onto shards, kept as an explicit *versioned*
  table persisted in a document store (minimal movement on shard
  add/remove, migrations recorded as pins).
* :mod:`repro.fabric.shard` -- :class:`ShardNode`: one FocusSystem plus
  its own durable store (WAL journals, checkpoints, indexes) and GPU
  cluster.
* :mod:`repro.fabric.router` -- :class:`FabricRouter`: the full
  ``QueryService`` surface over the fleet, scatter-gathering per-shard
  plans and merging answers bit-identically to a single node.
* :mod:`repro.fabric.migration` -- live stream migration built on the
  WAL/epoch machinery: checkpoint -> copy -> recover -> fence, answers
  identical before and after, zombies fenced by ``StaleEpochError``.

See ``docs/SHARDING.md`` for the placement table format, routing flow,
and migration protocol.
"""

from repro.fabric.migration import MigrationError, MigrationReport, migrate_stream
from repro.fabric.placement import (
    PlacementConflictError,
    PlacementError,
    PlacementTable,
    rendezvous_shard,
)
from repro.fabric.router import FabricRouter
from repro.fabric.shard import ShardNode

__all__ = [
    "FabricRouter",
    "MigrationError",
    "MigrationReport",
    "PlacementConflictError",
    "PlacementError",
    "PlacementTable",
    "ShardNode",
    "migrate_stream",
    "rendezvous_shard",
]
