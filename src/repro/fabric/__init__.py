"""Sharded serving fabric: placement, scatter-gather routing, migration.

Turns N independent :class:`~repro.core.system.FocusSystem` shards into
one logical service (the ROADMAP's horizontal-scaling layer):

* :mod:`repro.fabric.placement` -- deterministic rendezvous-hash
  placement of streams onto shards, kept as an explicit *versioned*
  table persisted in a document store (minimal movement on shard
  add/remove, migrations recorded as pins).
* :mod:`repro.fabric.shard` -- :class:`ShardNode`: one FocusSystem plus
  its own durable store (WAL journals, checkpoints, indexes) and GPU
  cluster.
* :mod:`repro.fabric.router` -- :class:`FabricRouter`: the full
  ``QueryService`` surface over the fleet, scatter-gathering per-shard
  plans and merging answers bit-identically to a single node.
* :mod:`repro.fabric.migration` -- live stream migration built on the
  WAL/epoch machinery: checkpoint -> copy -> recover -> fence, answers
  identical before and after, zombies fenced by ``StaleEpochError``.
* :mod:`repro.fabric.worker` / :mod:`repro.fabric.protocol` /
  :mod:`repro.fabric.codec` -- the *parallel* mode: each shard in its
  own worker process behind a serialized command protocol
  (:class:`FabricSupervisor` spawns and restarts the fleet,
  :class:`ShardClient` duck-types the shard surface over queues), with
  answers still bit-identical to a single node.
* :mod:`repro.fabric.shm` -- the zero-copy data plane under the
  parallel mode: bulk payloads ride pooled ``multiprocessing``
  shared-memory segments referenced by descriptors, with a transparent
  pickle-inline fallback (``FabricSupervisor(use_shm=False)`` or small
  payloads).

See ``docs/SHARDING.md`` for the placement table format, routing flow,
migration protocol, and the worker process model.
"""

from repro.fabric.migration import MigrationError, MigrationReport, migrate_stream
from repro.fabric.placement import (
    PlacementConflictError,
    PlacementError,
    PlacementTable,
    rendezvous_shard,
)
from repro.fabric.protocol import (
    DEFAULT_DEADLINES,
    FAULT_COUNTER_KEYS,
    PROTOCOL_VERSION,
    WIRE_COUNTER_KEYS,
    DeadlineExceeded,
    ProtocolError,
    RemoteShardError,
    ShardFailed,
    StreamHandleInfo,
    WorkerCrashed,
)
from repro.fabric.shm import DEFAULT_SHM_THRESHOLD, shm_available
from repro.fabric.router import FabricRouter
from repro.fabric.shard import ShardNode
from repro.fabric.worker import (
    FabricSupervisor,
    FabricWatchdog,
    ShardClient,
    migrate_stream_remote,
)

__all__ = [
    "DEFAULT_DEADLINES",
    "DEFAULT_SHM_THRESHOLD",
    "DeadlineExceeded",
    "FAULT_COUNTER_KEYS",
    "FabricRouter",
    "FabricSupervisor",
    "FabricWatchdog",
    "MigrationError",
    "MigrationReport",
    "PROTOCOL_VERSION",
    "PlacementConflictError",
    "PlacementError",
    "PlacementTable",
    "ProtocolError",
    "RemoteShardError",
    "ShardClient",
    "ShardFailed",
    "ShardNode",
    "StreamHandleInfo",
    "WIRE_COUNTER_KEYS",
    "WorkerCrashed",
    "migrate_stream",
    "migrate_stream_remote",
    "rendezvous_shard",
    "shm_available",
]
