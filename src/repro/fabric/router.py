"""Scatter-gather routing over N shards, one logical service.

:class:`FabricRouter` gives a fleet of :class:`~repro.fabric.shard.ShardNode`
shards the full single-node ``QueryService`` surface -- ``query``,
``query_all``, ``query_batch``, ``checkpoint_streams`` -- plus stream
lifecycle (``open_stream``/``append``/``recover``) and live migration.
Requests are split by the versioned placement table
(:class:`~repro.fabric.placement.PlacementTable`), executed on the
owning shards, and the per-shard answers merged.

The router speaks only the shard *command surface* (the ``ShardNode``
methods mirrored by the worker protocol), never ``shard.system``
directly, so the same router runs over two kinds of shard:

* in-process :class:`~repro.fabric.shard.ShardNode` objects -- scatter
  legs execute serially in this interpreter;
* :class:`~repro.fabric.worker.ShardClient` handles -- each shard is
  its own OS process, and scatter legs are *pipelined*: the router
  submits every shard's leg before gathering any reply
  (``query_batch_submit``/``append_submit``/``checkpoint_submit``), so
  shards genuinely ingest and verify in parallel.

**Bit-identity.**  A stream's plan, verification verdicts, returned
frames, and segment metrics are pure functions of that stream's own
state -- sibling streams only share verification *batching*, which
changes counters and latency, never verdicts.  A fabric answer's
per-stream slices are therefore bit-identical to a single-node
``QueryService`` over the same streams; the tests assert it frame by
frame in both index modes.  Merged round statistics follow scatter-
gather semantics: ``gt_inferences``/``candidates``/``cache_hits``/
``duplicates_coalesced`` sum across the shards' independent rounds,
and ``latency_seconds`` is the *max* over shard rounds (shards verify
in parallel on their own GPU clusters).
"""

from __future__ import annotations

import time
from dataclasses import replace as _dc_replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import FocusConfig
from repro.core.streaming import ChunkReport
from repro.core.system import QueryAnswer, StreamHandle
from repro.fabric.migration import MigrationError, MigrationReport, migrate_stream
from repro.fabric.placement import PlacementTable, rendezvous_shard
from repro.fabric.protocol import (
    DeadlineExceeded,
    ShardFailed,
    WorkerCrashed,
)
from repro.fabric.shard import ShardNode
from repro.fabric.worker import ShardClient, migrate_stream_remote
from repro.obs.events import emit as _emit_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import finish_span, get_tracer, span, start_span
from repro.serve.cache import VerificationCache
from repro.serve.planner import QueryRequest
from repro.serve.service import (
    DegradedScope,
    MultiStreamAnswer,
    StreamCheckpoint,
    merge_counters,
)
from repro.storage.docstore import DocumentStore
from repro.video.classes import class_id as class_id_of
from repro.video.classes import class_name
from repro.video.synthesis import ObservationTable

#: leg failures the router may transparently heal: both guarantee the
#: command never happened durably (the mirror only advances with
#: acknowledged replies), so a restart-and-retry is idempotent -- see
#: docs/RESILIENCE.md's retry matrix
_RETRYABLE = (WorkerCrashed, DeadlineExceeded)


class _Ready:
    """An already-computed scatter leg, shaped like a ``PendingReply``.

    In-process shards execute their leg at submit time; wrapping the
    answer lets the gather loop treat both shard kinds identically.
    """

    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class _FailedLeg:
    """A scatter leg that already failed at submit time (dead worker).

    Carrying the exception into the gather phase keeps the scatter loop
    uniform: surviving shards' legs still gather, and the failure is
    handled (retried, degraded, or raised) where results are collected.
    """

    def __init__(self, exc: BaseException):
        self._exc = exc

    def result(self):
        raise self._exc


class FabricRouter:
    """N shards behind one logical Focus service.

    The router owns the authoritative placement table: streams opened
    or ingested *through the router* are placed (rendezvous) and
    routed; migration re-pins them.  Reaching around the router to a
    shard's system directly leaves placement stale -- adopt such
    streams at construction time (they are pinned where found) or keep
    all lifecycle calls on the router.

    ``meta_store`` optionally persists every placement version
    (:meth:`PlacementTable.save`), so a restarted router -- or a second
    one -- reloads the same mapping instead of re-deriving it.

    Over worker shards the router self-heals (``docs/RESILIENCE.md``):
    idempotent legs that die with ``WorkerCrashed``/``DeadlineExceeded``
    are transparently retried up to ``max_retries`` times against the
    worker ``FabricSupervisor.ensure_alive`` respawns
    (``recover_configs`` feeds the restart's WAL replay).  ``query_all``
    and ``query_batch`` additionally accept ``allow_partial=True`` to
    degrade instead of raising when a shard stays down -- the default
    everywhere is strict, and strict answers are bit-identical to a
    single node's.
    """

    def __init__(
        self,
        shards: Sequence[Union[ShardNode, ShardClient]],
        placement: Optional[PlacementTable] = None,
        meta_store: Optional[DocumentStore] = None,
        max_retries: int = 2,
        recover_configs: Optional[Mapping[str, FocusConfig]] = None,
    ):
        self.max_retries = int(max_retries)
        self._recover_configs = recover_configs
        #: router-side fault counters, folded into ``cost_summary``'s
        #: fleet total (per-shard keys stay zero: these incidents span
        #: shards, so per-shard attribution would be arbitrary)
        self._fault_counters: Dict[str, float] = {
            "retries": 0.0,
            "partial_answers": 0.0,
        }
        #: router-side metrics (scatter-leg latency); shard registries
        #: merge into it in :meth:`metrics_snapshot`
        self.metrics = MetricsRegistry()
        #: sample walk-in query batches (requests arriving untraced) at
        #: this fabric entry point; a front door stamping its own trace
        #: upstream simply arrives pre-traced and is never re-sampled
        self.trace_walkins = True
        if not shards:
            raise ValueError("a fabric needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate shard ids: %s" % ids)
        self._shards: Dict[str, Union[ShardNode, ShardClient]] = {
            s.shard_id: s for s in shards
        }
        self.meta_store = meta_store
        if placement is None and meta_store is not None:
            # a restarted router adopts the persisted authoritative
            # mapping (pins included) instead of re-deriving placement
            placement = PlacementTable.load(meta_store)
        if placement is None:
            placement = PlacementTable.build(ids)
        # reconcile the table with the constructed fleet: streams on a
        # shard this fabric does not have are unreachable data -- refuse
        # loudly; an added (or emptied-and-removed) shard is adopted so
        # new placements rendezvous over the actual fleet, while every
        # placed stream keeps the shard its data lives on
        orphaned = sorted(
            {
                shard
                for shard in placement.assignments.values()
                if shard not in self._shards
            }
        )
        if orphaned:
            raise ValueError(
                "placement assigns streams to shards not in this fabric: %s "
                "(migrate or recover them before dropping the shard)"
                % ", ".join(orphaned)
            )
        placement = placement.adopt_shards(ids)
        # adopt streams already living on the shards (ingested before
        # this router existed): they are where they are -- record that
        # as pinned fact rather than pretending rendezvous put them there
        for shard in shards:
            for stream in shard.streams():
                if stream not in placement.assignments:
                    placement = placement.with_streams(stream)
                if placement.shard_of(stream) != shard.shard_id:
                    placement = placement.pin(stream, shard.shard_id)
        self._placement = self._commit_placement(placement)

    # -- placement -----------------------------------------------------------
    @property
    def placement(self) -> PlacementTable:
        return self._placement

    def _commit_placement(self, table: PlacementTable) -> PlacementTable:
        """Persist a placement change (version-CAS), then return it.

        Persistence comes *first*: on :class:`PlacementConflictError`
        (another router advanced the store) the exception propagates
        before this router adopts the unpersisted table, so its next
        change still carries a stale version and keeps failing the CAS
        instead of leapfrogging the other writer's mapping.
        """
        if self.meta_store is not None:
            stored = PlacementTable.load(self.meta_store)
            if stored != table:
                table.save(self.meta_store)
        return table

    def _update_placement(self, table: PlacementTable) -> None:
        if table is self._placement:
            return
        self._placement = self._commit_placement(table)

    def shard_ids(self) -> List[str]:
        return sorted(self._shards)

    def shard(self, shard_id: str) -> ShardNode:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise KeyError(
                "no shard %r in this fabric (have: %s)"
                % (shard_id, ", ".join(self.shard_ids()))
            )

    def shard_of(self, stream: str) -> ShardNode:
        """The shard serving ``stream`` (KeyError when unplaced)."""
        return self.shard(self._placement.shard_of(stream))

    def streams(self) -> List[str]:
        return self._placement.streams()

    def _resolve_streams(self, streams: Optional[Sequence[str]]) -> List[str]:
        """Validate a requested stream set against placement.

        Unknown names raise one ``KeyError`` listing *all* of them --
        the fabric-level mirror of the planner's aggregated check, so a
        fan-out never dies on the first bad name deep inside a shard.
        """
        known = self._placement.assignments
        if streams is None:
            wanted = sorted(known)
        else:
            wanted = list(streams)
            missing = sorted({s for s in wanted if s not in known})
            if missing:
                raise KeyError(
                    "streams not ingested: %s" % ", ".join(missing)
                )
        if not wanted:
            raise ValueError("no streams to query; ingest or open some first")
        return wanted

    def _group_by_shard(self, streams: Sequence[str]) -> Dict[str, List[str]]:
        grouped: Dict[str, List[str]] = {}
        for stream in streams:
            grouped.setdefault(self._placement.shard_of(stream), []).append(stream)
        return grouped

    # -- self-healing --------------------------------------------------------
    def _failover(self, shard) -> bool:
        """Heal one failed worker shard via its supervisor's respawn
        door.  False when there is nothing to heal (in-process shard:
        its exceptions are never :data:`_RETRYABLE` anyway) or the
        shard's crash-loop breaker is tripped."""
        supervisor = getattr(shard, "_supervisor", None)
        if supervisor is None:
            return False
        try:
            supervisor.ensure_alive(
                shard.shard_id, configs=self._recover_configs
            )
        except ShardFailed:
            return False
        except _RETRYABLE:
            return False
        return True

    def _retry_leg(self, shard, fn):
        """Run one idempotent leg, transparently retried (up to
        ``max_retries``) against the respawned worker when it dies or
        blows its deadline.  Both failures guarantee the command never
        happened durably, so the retry cannot double-apply."""
        attempt = 0
        while True:
            try:
                return fn()
            except _RETRYABLE:
                attempt += 1
                if attempt > self.max_retries or not self._failover(shard):
                    raise
                self._fault_counters["retries"] += 1

    # -- stream lifecycle ----------------------------------------------------
    def ingest_stream(
        self, stream: Union[str, ObservationTable], **kwargs
    ) -> StreamHandle:
        """Place (rendezvous) and one-shot ingest a stream on its shard.

        Over in-process shards this returns the live ``StreamHandle``;
        over worker shards it returns the wire-safe
        :class:`~repro.fabric.protocol.StreamHandleInfo` summary (live
        handles are worker-local).
        """
        name = stream.stream if isinstance(stream, ObservationTable) else stream
        shard, placed = self._place(name)
        handle = shard.ingest_stream(stream, **kwargs)
        self._update_placement(placed)
        return handle

    def open_stream(self, stream: str, **kwargs) -> StreamHandle:
        """Place (rendezvous) and open a live session on the owning shard.

        Durable by default (the shard's own store journals the session)
        -- see :meth:`ShardNode.open_stream`.
        """
        shard, placed = self._place(stream)
        handle = shard.open_stream(stream, **kwargs)
        self._update_placement(placed)
        return handle

    def _place(self, stream: str) -> Tuple[ShardNode, PlacementTable]:
        """The stream's (owning shard, placement-after) -- computed but
        NOT committed: callers install the returned table only after the
        shard call succeeds, so a failed open/ingest never leaves a
        phantom placed-but-unserved stream behind (which would poison
        every later fleet-wide fan-out)."""
        placed = self._placement.with_streams(stream)
        return self.shard(placed.shard_of(stream)), placed

    def append(
        self,
        stream: str,
        chunk: ObservationTable,
        watermark_s: Optional[float] = None,
    ) -> ChunkReport:
        """Append one chunk, retried after failover: an unacknowledged
        append never reached the mirror (and the WAL's journal dedup
        collapses a same-seq duplicate), so the retry is at-most-once."""
        shard = self.shard_of(stream)
        return self._retry_leg(
            shard,
            lambda: shard.append(stream, chunk, watermark_s=watermark_s),
        )

    def append_many(
        self,
        chunks: Sequence[Tuple[str, ObservationTable]],
        watermarks: Optional[Mapping[str, float]] = None,
    ) -> List[ChunkReport]:
        """Append a batch of chunks, scattered to their owning shards.

        ``chunks`` is ``(stream, chunk)`` pairs; reports come back in
        input order.  Per stream the input order is preserved (a shard
        executes its legs FIFO); across *shards* the appends overlap --
        with worker-process shards every chunk is submitted before any
        report is gathered, which is the fabric's parallel ingest path.

        Mirror deltas are coalesced per round: every pipelined leg
        except a shard's last is submitted with ``defer_delta`` so the
        round ships one cumulative store delta per shard instead of one
        per chunk (worker-shard wire tax; reports are still per chunk).

        Failover granularity is a shard's *whole round*: deferred legs
        ship no delta, so a failure anywhere in a shard's round means
        the mirror holds none of it -- after the respawn every one of
        that shard's legs is replayed (in order, plain appends), and
        the reports land at their original indices.
        """
        for stream, _ in chunks:
            self._resolve_streams([stream])
        plan = []
        last_leg: Dict[int, int] = {}
        shard_legs: Dict[int, List[int]] = {}
        for i, (stream, chunk) in enumerate(chunks):
            shard = self.shard_of(stream)
            watermark_s = watermarks.get(stream) if watermarks else None
            submit = getattr(shard, "append_submit", None)
            if submit is not None:
                last_leg[id(shard)] = i
                shard_legs.setdefault(id(shard), []).append(i)
            plan.append((stream, chunk, shard, watermark_s, submit))
        legs = []
        #: id(shard) -> (shard, first failure) for rounds that died
        failed: Dict[int, Tuple[Union[ShardNode, ShardClient], BaseException]] = {}
        for i, (stream, chunk, shard, watermark_s, submit) in enumerate(plan):
            if id(shard) in failed:
                legs.append(None)  # round already poisoned; replayed below
                continue
            if submit is not None:
                try:
                    legs.append(
                        submit(
                            stream,
                            chunk,
                            watermark_s=watermark_s,
                            defer_delta=i != last_leg[id(shard)],
                        )
                    )
                except _RETRYABLE as exc:
                    failed[id(shard)] = (shard, exc)
                    legs.append(None)
            else:
                legs.append(
                    _Ready(shard.append(stream, chunk, watermark_s=watermark_s))
                )
        reports: List[Optional[ChunkReport]] = [None] * len(plan)
        for i, leg in enumerate(legs):
            shard = plan[i][2]
            if id(shard) in failed or leg is None:
                continue
            try:
                reports[i] = leg.result()
            except _RETRYABLE as exc:
                failed[id(shard)] = (shard, exc)
        for key, (shard, exc) in failed.items():
            if self.max_retries < 1 or not self._failover(shard):
                raise exc
            self._fault_counters["retries"] += 1
            for i in shard_legs[key]:
                stream, chunk, _, watermark_s, _ = plan[i]
                reports[i] = shard.append(stream, chunk, watermark_s=watermark_s)
        return reports

    def recover(
        self, configs: Optional[Mapping[str, "FocusConfig"]] = None
    ) -> List[str]:
        """Resume every shard's journaled sessions (fleet restart).

        ``configs`` (stream -> FocusConfig) is forwarded to each shard
        for streams whose specialized model the zoo cannot rebuild.
        """
        recovered: List[str] = []
        for sid in self.shard_ids():
            recovered.extend(self.shard(sid).recover(configs=configs))
        for stream in recovered:
            # a recovered stream lives where its durable state lives;
            # pin only when that disagrees with rendezvous (mirror of
            # construction-time adoption -- a needless pin would exempt
            # the stream from future rebalancing)
            holder = self._shard_holding(stream)
            placed = self._placement.with_streams(stream)
            if placed.shard_of(stream) != holder:
                placed = placed.pin(stream, holder)
            self._update_placement(placed)
        return sorted(recovered)

    def _shard_holding(self, stream: str) -> str:
        for sid in self.shard_ids():
            if stream in self.shard(sid).streams():
                return sid
        raise KeyError("stream %r is not held by any shard" % stream)

    # -- serving (the QueryService surface) ----------------------------------
    def query(
        self,
        stream: str,
        clazz: Union[int, str],
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryAnswer:
        """Single-stream query, routed to the owning shard (retried
        after failover: queries are read-only, hence idempotent)."""
        self._resolve_streams([stream])
        shard = self.shard_of(stream)
        return self._retry_leg(
            shard,
            lambda: shard.query(stream, clazz, kx=kx, time_range=time_range),
        )

    def query_all(
        self,
        clazz: Union[int, str],
        streams: Optional[Sequence[str]] = None,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
        allow_partial: bool = False,
    ) -> MultiStreamAnswer:
        """One class query scattered across every owning shard.

        ``allow_partial=True`` degrades instead of raising when shards
        stay down through the retry budget: the answer carries the
        surviving streams' (bit-identical) slices plus a ``degraded``
        marker naming exactly the lost shards and streams.
        """
        request = QueryRequest(
            clazz=clazz, streams=streams, kx=kx, time_range=time_range
        )
        return self.query_batch([request], allow_partial=allow_partial)[0]

    def query_batch(
        self,
        requests: Sequence[QueryRequest],
        allow_partial: bool = False,
    ) -> List[MultiStreamAnswer]:
        """Serve concurrent queries, scatter-gathered per shard.

        Each shard runs one verification round over the sub-batch of
        requests that touch its streams (in-flight dedup, verdict
        cache, GPU batching -- the single-node machinery, reused as
        is); the per-shard answers are then merged per request.

        A worker leg that dies or blows its deadline is retried against
        the respawned worker (queries are idempotent).  When a shard
        stays down: strict mode (default) raises; ``allow_partial=True``
        drops the lost legs and marks every touched answer ``degraded``
        with exactly the lost shards and their requested streams.
        """
        if not requests:
            return []
        if self.trace_walkins and all(r.trace is None for r in requests):
            # walk-in batch at a fabric entry point: consult the
            # process-global sampler exactly once for the whole batch
            ctx = get_tracer().sample()
            if ctx is not None:
                requests = [_dc_replace(r, trace=ctx) for r in requests]
        resolved = [self._resolve_streams(r.streams) for r in requests]
        # scatter: per shard, the sub-requests whose streams it owns
        per_shard: Dict[str, List[Tuple[int, QueryRequest]]] = {}
        for idx, (request, wanted) in enumerate(zip(requests, resolved)):
            for sid, subset in self._group_by_shard(wanted).items():
                per_shard.setdefault(sid, []).append(
                    (
                        idx,
                        QueryRequest(
                            clazz=request.clazz,
                            streams=subset,
                            kx=request.kx,
                            time_range=request.time_range,
                            # QoS fields ride to every leg so each
                            # shard's verification round forms batches
                            # in the same priority-then-deadline order
                            priority=request.priority,
                            deadline_s=request.deadline_s,
                            # the trace context crosses the scatter (and,
                            # over worker shards, the wire) with the leg
                            trace=request.trace,
                        ),
                    )
                )
        # execute + gather: every shard's leg is submitted before any
        # reply is gathered, so worker-process shards verify their
        # sub-batches concurrently (in-process shards run at submit)
        partial: List[List[MultiStreamAnswer]] = [[] for _ in requests]
        #: per request: lost shard -> the streams it owed that request
        lost_by_idx: List[Dict[str, Tuple[str, ...]]] = [{} for _ in requests]
        batch_ctx = next(
            (r.trace for r in requests if r.trace is not None), None
        )
        with span("router:query_batch", batch_ctx, n=len(requests)) as root:
            legs = []
            for sid in sorted(per_shard):
                entries = per_shard[sid]
                # one manual span per scatter leg (started at submit,
                # finished at gather -- the pipelined window a `with`
                # block cannot bracket); sub-requests carry its child
                # context so worker-side spans parent under the leg
                handle, leg_ctx = start_span(
                    "router:scatter", root, shard=sid, n=len(entries)
                )
                if leg_ctx is not None:
                    entries = [
                        (
                            idx,
                            _dc_replace(req, trace=leg_ctx)
                            if req.trace is not None
                            else req,
                        )
                        for idx, req in entries
                    ]
                started = time.perf_counter()
                try:
                    leg = self._submit_query_batch(self.shard(sid), entries)
                except _RETRYABLE as exc:
                    leg = _FailedLeg(exc)
                legs.append((sid, entries, leg, handle, started))
            for sid, entries, leg, handle, started in legs:
                shard = self.shard(sid)
                try:
                    try:
                        answers = leg.result()
                    except _RETRYABLE as exc:
                        answers = self._regather_query_batch(
                            shard,
                            [request for _, request in entries],
                            exc,
                            allow_partial,
                        )
                finally:
                    finish_span(handle)
                    self.metrics.observe(
                        "router.scatter_s", time.perf_counter() - started
                    )
                if answers is None:
                    # leg dropped (allow_partial): record exactly what
                    # each touched request lost; survivors still gather
                    for idx, sub_request in entries:
                        lost_by_idx[idx][sid] = tuple(sub_request.streams)
                    continue
                for (idx, _), answer in zip(entries, answers):
                    partial[idx].append(answer)
        out: List[MultiStreamAnswer] = []
        for idx, parts in enumerate(partial):
            missing = lost_by_idx[idx]
            degraded = None
            if missing:
                degraded = DegradedScope(
                    shards=tuple(sorted(missing)),
                    streams=tuple(
                        sorted({s for streams in missing.values() for s in streams})
                    ),
                )
                self._fault_counters["partial_answers"] += 1
                _emit_event(
                    "router.partial_answer",
                    shards=list(degraded.shards),
                    streams=list(degraded.streams),
                    trace_id=(batch_ctx or {}).get("trace_id"),
                )
            if parts:
                out.append(self._merge_answers(parts, degraded))
            else:
                # every leg of this request was lost: an empty but
                # well-shaped degraded answer (class resolved locally)
                out.append(self._empty_answer(requests[idx], degraded))
        return out

    def _regather_query_batch(
        self, shard, sub_requests, exc: BaseException, allow_partial: bool
    ) -> Optional[List[MultiStreamAnswer]]:
        """Retry one dead query-batch leg after failover (plain call:
        there is nothing left to pipeline against).  Returns ``None``
        when the leg is dropped under ``allow_partial`` after the retry
        budget; re-raises the last failure in strict mode."""
        attempt = 0
        while attempt < self.max_retries and self._failover(shard):
            attempt += 1
            self._fault_counters["retries"] += 1
            try:
                return shard.query_batch(sub_requests)
            except _RETRYABLE as retry_exc:
                exc = retry_exc
        if allow_partial:
            return None
        raise exc

    @staticmethod
    def _empty_answer(
        request: QueryRequest, degraded: Optional[DegradedScope]
    ) -> MultiStreamAnswer:
        cid = (
            class_id_of(request.clazz)
            if isinstance(request.clazz, str)
            else int(request.clazz)
        )
        return MultiStreamAnswer(
            class_id=cid,
            class_name=class_name(cid) if cid >= 0 else "OTHER",
            slices={},
            latency_seconds=0.0,
            gt_inferences=0,
            candidates=0,
            cache_hits=0,
            duplicates_coalesced=0,
            degraded=degraded,
        )

    @staticmethod
    def _submit_query_batch(shard, entries):
        sub_requests = [request for _, request in entries]
        submit = getattr(shard, "query_batch_submit", None)
        if submit is not None:
            return submit(sub_requests)
        return _Ready(shard.query_batch(sub_requests))

    @staticmethod
    def _merge_answers(
        parts: List[MultiStreamAnswer],
        degraded: Optional[DegradedScope] = None,
    ) -> MultiStreamAnswer:
        """Merge one request's per-shard answers into a fleet answer."""
        slices = {}
        for part in parts:
            slices.update(part.slices)
        return MultiStreamAnswer(
            class_id=parts[0].class_id,
            class_name=parts[0].class_name,
            slices=slices,
            # shards verify in parallel on their own clusters: the round
            # takes as long as its slowest shard
            latency_seconds=max(p.latency_seconds for p in parts),
            gt_inferences=sum(p.gt_inferences for p in parts),
            candidates=sum(p.candidates for p in parts),
            cache_hits=sum(p.cache_hits for p in parts),
            duplicates_coalesced=sum(p.duplicates_coalesced for p in parts),
            degraded=degraded,
        )

    # -- durability ----------------------------------------------------------
    def checkpoint_streams(
        self,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List[StreamCheckpoint]:
        """Checkpoint streams across the fleet, each into its own
        shard's store under its own epoch; outcomes sorted by stream."""
        wanted = self._resolve_streams(streams)
        grouped = self._group_by_shard(wanted)
        legs = []
        for sid in sorted(grouped):
            shard = self.shard(sid)
            submit = getattr(shard, "checkpoint_submit", None)
            if submit is not None:
                legs.append(submit(streams=grouped[sid], strict=strict))
            else:
                legs.append(
                    _Ready(shard.checkpoint(streams=grouped[sid], strict=strict))
                )
        outcomes: List[StreamCheckpoint] = []
        for leg in legs:
            outcomes.extend(leg.result())
        return sorted(outcomes, key=lambda o: o.stream)

    def checkpoint(
        self,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List[str]:
        """The committed stream names of a :meth:`checkpoint_streams` round."""
        return [
            o.stream
            for o in self.checkpoint_streams(streams=streams, strict=strict)
            if o.committed
        ]

    # -- migration -----------------------------------------------------------
    def migrate(
        self, stream: str, target_shard_id: str, checkpoint: bool = True
    ) -> MigrationReport:
        """Move a live stream to another shard, then re-pin placement.

        The data-plane move is :func:`~repro.fabric.migration.migrate_stream`
        (checkpoint -> copy -> fence -> recover); on success the
        placement table pins the stream to its new shard under a new
        version, persisted to ``meta_store`` when configured.
        """
        source = self.shard_of(stream)
        target = self.shard(target_shard_id)
        if source is target:
            raise MigrationError(
                "stream %r already lives on shard %r" % (stream, target_shard_id)
            )
        source_remote = isinstance(source, ShardClient)
        target_remote = isinstance(target, ShardClient)
        if source_remote != target_remote:
            raise MigrationError(
                "cannot migrate stream %r between fabric modes: source %r and "
                "target %r must both be in-process shards or both be worker "
                "processes" % (stream, source.shard_id, target.shard_id)
            )
        if source_remote:
            report = migrate_stream_remote(
                source, target, stream, checkpoint=checkpoint
            )
        else:
            report = migrate_stream(source, target, stream, checkpoint=checkpoint)
        # pin only when the move disagrees with rendezvous: a migration
        # onto the stream's natural winner leaves it rebalance-eligible
        # (same invariant as construction-time adoption and recover())
        natural = rendezvous_shard(stream, self._placement.shards)
        self._update_placement(
            self._placement.assign(
                stream, target_shard_id, pin=natural != target_shard_id
            )
        )
        return report

    # -- observability -------------------------------------------------------
    def cost_summary(self, per_shard: bool = False):
        """The fleet's merged cost/serving totals.

        Every ``ShardNode.cost_summary`` key is a summable total
        (GPU-seconds per ledger category, serving counters, journal
        counters), so the fleet view is a per-key sum.  With
        ``per_shard=True`` the answer is ``{"total": ..., "per_shard":
        {shard_id: ...}}`` -- the breakdown operators page shards with.
        """
        per = {
            sid: self._retry_leg(
                self.shard(sid), lambda sid=sid: self.shard(sid).cost_summary()
            )
            for sid in self.shard_ids()
        }
        total: Dict[str, float] = {}
        for summary in per.values():
            for key, value in summary.items():
                total[key] = total.get(key, 0.0) + float(value)
        # router-side incidents (fleet-scoped, not attributable to one
        # shard) land in the total on top of the shards' zeros
        for key, value in self._fault_counters.items():
            total[key] = total.get(key, 0.0) + float(value)
        if per_shard:
            # histograms ride as a sibling section: "total"/"per_shard"
            # stay flat float dicts (summable totals, the shape the
            # fleet-sum invariant is tested against)
            snaps = self.metrics_snapshot(per_shard=True)
            return {
                "total": total,
                "per_shard": per,
                "histograms": {
                    "total": MetricsRegistry.summarize(snaps["total"]),
                    "per_shard": {
                        sid: MetricsRegistry.summarize(snapshot)
                        for sid, snapshot in snaps["per_shard"].items()
                    },
                },
            }
        return total

    def cache_stats(self, per_shard: bool = False):
        """Fleet verification-cache statistics.

        Hit/miss/eviction/invalidation counters and resident sizes sum
        across shards; the hit rate is recomputed from the merged
        totals (:meth:`VerificationCache.merge_stats`).
        """
        per = {
            sid: self._retry_leg(
                self.shard(sid), lambda sid=sid: self.shard(sid).cache_stats()
            )
            for sid in self.shard_ids()
        }
        total = VerificationCache.merge_stats(per.values())
        if per_shard:
            return {"total": total, "per_shard": per}
        return total

    def counters(self) -> Dict[str, float]:
        """The fleet's merged serving counters (``QueryService.counters``
        summed under their declared semantics)."""
        return merge_counters(
            [
                self._retry_leg(
                    self.shard(sid),
                    lambda sid=sid: self.shard(sid).serving_counters(),
                )
                for sid in self.shard_ids()
            ]
        )

    def metrics_snapshot(self, per_shard: bool = False):
        """The fleet's merged metrics-registry snapshot.

        Counters and gauges sum; latency histograms merge by bucket
        counts (:meth:`MetricsRegistry.merge_snapshots`), so fleet
        p50/p95/p99 come from the *combined* distribution, not an
        average of per-shard quantiles.  The router's own registry
        (scatter-leg latency) folds into the total; with
        ``per_shard=True`` the answer also carries the raw per-shard
        snapshots.
        """
        per = {
            sid: self._retry_leg(
                self.shard(sid),
                lambda sid=sid: self.shard(sid).metrics_snapshot(),
            )
            for sid in self.shard_ids()
        }
        total = MetricsRegistry.merge_snapshots(
            list(per.values()) + [self.metrics.snapshot()]
        )
        if per_shard:
            return {"total": total, "per_shard": per}
        return total

    def load_report(self) -> Dict[str, Dict[str, float]]:
        """Per-shard load snapshot -- the rebalancer's input signal.

        One flat float dict per shard, built from the shard's counters
        and its metrics registry: placement weight (streams), committed
        GPU work and queue depth, and the count/p95 of its dispatch and
        journal-append histograms.  Identical over both fabric modes
        (the worker fabric serves ``metrics_snapshot`` as a wire op).
        """
        report: Dict[str, Dict[str, float]] = {}
        for sid in self.shard_ids():
            shard = self.shard(sid)
            counters = self._retry_leg(
                shard, lambda shard=shard: shard.counters()
            )
            summaries = MetricsRegistry.summarize(
                self._retry_leg(
                    shard, lambda shard=shard: shard.metrics_snapshot()
                )
            )
            dispatch = summaries.get("scheduler.dispatch_s", {})
            append = summaries.get("journal.append_s", {})
            report[sid] = {
                "streams": float(counters["streams"]),
                "live_streams": float(counters["live-streams"]),
                "busy_gpu_seconds": float(
                    counters["gpu"]["busy-gpu-seconds"]
                ),
                "gpu_queue_depth": float(counters["gpu"]["queue-depth"]),
                "dispatches": float(dispatch.get("count", 0.0)),
                "dispatch_p95_s": float(dispatch.get("p95_s", 0.0)),
                "journal_appends": float(append.get("count", 0.0)),
                "journal_append_p95_s": float(append.get("p95_s", 0.0)),
            }
        return report

    def gpu_depths(self) -> Dict[str, float]:
        """Per-shard committed GPU work (monotone ``busy-gpu-seconds``).

        The front door's ingest-backpressure signal (``docs/QOS.md``):
        sampled periodically, differenced into a leaky-bucket backlog
        estimate per shard, and compared against the high-water mark.
        Works identically over in-process nodes and worker clients (one
        wire round-trip per shard there -- sample on an interval, not
        per admission).
        """
        return {
            sid: float(
                self._retry_leg(
                    self.shard(sid),
                    lambda sid=sid: self.shard(sid).counters()["gpu"][
                        "busy-gpu-seconds"
                    ],
                )
            )
            for sid in self.shard_ids()
        }
