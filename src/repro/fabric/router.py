"""Scatter-gather routing over N shards, one logical service.

:class:`FabricRouter` gives a fleet of :class:`~repro.fabric.shard.ShardNode`
shards the full single-node ``QueryService`` surface -- ``query``,
``query_all``, ``query_batch``, ``checkpoint_streams`` -- plus stream
lifecycle (``open_stream``/``append``/``recover``) and live migration.
Requests are split by the versioned placement table
(:class:`~repro.fabric.placement.PlacementTable`), executed on the
owning shards, and the per-shard answers merged.

The router speaks only the shard *command surface* (the ``ShardNode``
methods mirrored by the worker protocol), never ``shard.system``
directly, so the same router runs over two kinds of shard:

* in-process :class:`~repro.fabric.shard.ShardNode` objects -- scatter
  legs execute serially in this interpreter;
* :class:`~repro.fabric.worker.ShardClient` handles -- each shard is
  its own OS process, and scatter legs are *pipelined*: the router
  submits every shard's leg before gathering any reply
  (``query_batch_submit``/``append_submit``/``checkpoint_submit``), so
  shards genuinely ingest and verify in parallel.

**Bit-identity.**  A stream's plan, verification verdicts, returned
frames, and segment metrics are pure functions of that stream's own
state -- sibling streams only share verification *batching*, which
changes counters and latency, never verdicts.  A fabric answer's
per-stream slices are therefore bit-identical to a single-node
``QueryService`` over the same streams; the tests assert it frame by
frame in both index modes.  Merged round statistics follow scatter-
gather semantics: ``gt_inferences``/``candidates``/``cache_hits``/
``duplicates_coalesced`` sum across the shards' independent rounds,
and ``latency_seconds`` is the *max* over shard rounds (shards verify
in parallel on their own GPU clusters).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import FocusConfig
from repro.core.streaming import ChunkReport
from repro.core.system import QueryAnswer, StreamHandle
from repro.fabric.migration import MigrationError, MigrationReport, migrate_stream
from repro.fabric.placement import PlacementTable, rendezvous_shard
from repro.fabric.shard import ShardNode
from repro.fabric.worker import ShardClient, migrate_stream_remote
from repro.serve.cache import VerificationCache
from repro.serve.planner import QueryRequest
from repro.serve.service import (
    MultiStreamAnswer,
    StreamCheckpoint,
    merge_counters,
)
from repro.storage.docstore import DocumentStore
from repro.video.synthesis import ObservationTable


class _Ready:
    """An already-computed scatter leg, shaped like a ``PendingReply``.

    In-process shards execute their leg at submit time; wrapping the
    answer lets the gather loop treat both shard kinds identically.
    """

    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class FabricRouter:
    """N shards behind one logical Focus service.

    The router owns the authoritative placement table: streams opened
    or ingested *through the router* are placed (rendezvous) and
    routed; migration re-pins them.  Reaching around the router to a
    shard's system directly leaves placement stale -- adopt such
    streams at construction time (they are pinned where found) or keep
    all lifecycle calls on the router.

    ``meta_store`` optionally persists every placement version
    (:meth:`PlacementTable.save`), so a restarted router -- or a second
    one -- reloads the same mapping instead of re-deriving it.
    """

    def __init__(
        self,
        shards: Sequence[Union[ShardNode, ShardClient]],
        placement: Optional[PlacementTable] = None,
        meta_store: Optional[DocumentStore] = None,
    ):
        if not shards:
            raise ValueError("a fabric needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate shard ids: %s" % ids)
        self._shards: Dict[str, Union[ShardNode, ShardClient]] = {
            s.shard_id: s for s in shards
        }
        self.meta_store = meta_store
        if placement is None and meta_store is not None:
            # a restarted router adopts the persisted authoritative
            # mapping (pins included) instead of re-deriving placement
            placement = PlacementTable.load(meta_store)
        if placement is None:
            placement = PlacementTable.build(ids)
        # reconcile the table with the constructed fleet: streams on a
        # shard this fabric does not have are unreachable data -- refuse
        # loudly; an added (or emptied-and-removed) shard is adopted so
        # new placements rendezvous over the actual fleet, while every
        # placed stream keeps the shard its data lives on
        orphaned = sorted(
            {
                shard
                for shard in placement.assignments.values()
                if shard not in self._shards
            }
        )
        if orphaned:
            raise ValueError(
                "placement assigns streams to shards not in this fabric: %s "
                "(migrate or recover them before dropping the shard)"
                % ", ".join(orphaned)
            )
        placement = placement.adopt_shards(ids)
        # adopt streams already living on the shards (ingested before
        # this router existed): they are where they are -- record that
        # as pinned fact rather than pretending rendezvous put them there
        for shard in shards:
            for stream in shard.streams():
                if stream not in placement.assignments:
                    placement = placement.with_streams(stream)
                if placement.shard_of(stream) != shard.shard_id:
                    placement = placement.pin(stream, shard.shard_id)
        self._placement = self._commit_placement(placement)

    # -- placement -----------------------------------------------------------
    @property
    def placement(self) -> PlacementTable:
        return self._placement

    def _commit_placement(self, table: PlacementTable) -> PlacementTable:
        """Persist a placement change (version-CAS), then return it.

        Persistence comes *first*: on :class:`PlacementConflictError`
        (another router advanced the store) the exception propagates
        before this router adopts the unpersisted table, so its next
        change still carries a stale version and keeps failing the CAS
        instead of leapfrogging the other writer's mapping.
        """
        if self.meta_store is not None:
            stored = PlacementTable.load(self.meta_store)
            if stored != table:
                table.save(self.meta_store)
        return table

    def _update_placement(self, table: PlacementTable) -> None:
        if table is self._placement:
            return
        self._placement = self._commit_placement(table)

    def shard_ids(self) -> List[str]:
        return sorted(self._shards)

    def shard(self, shard_id: str) -> ShardNode:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise KeyError(
                "no shard %r in this fabric (have: %s)"
                % (shard_id, ", ".join(self.shard_ids()))
            )

    def shard_of(self, stream: str) -> ShardNode:
        """The shard serving ``stream`` (KeyError when unplaced)."""
        return self.shard(self._placement.shard_of(stream))

    def streams(self) -> List[str]:
        return self._placement.streams()

    def _resolve_streams(self, streams: Optional[Sequence[str]]) -> List[str]:
        """Validate a requested stream set against placement.

        Unknown names raise one ``KeyError`` listing *all* of them --
        the fabric-level mirror of the planner's aggregated check, so a
        fan-out never dies on the first bad name deep inside a shard.
        """
        known = self._placement.assignments
        if streams is None:
            wanted = sorted(known)
        else:
            wanted = list(streams)
            missing = sorted({s for s in wanted if s not in known})
            if missing:
                raise KeyError(
                    "streams not ingested: %s" % ", ".join(missing)
                )
        if not wanted:
            raise ValueError("no streams to query; ingest or open some first")
        return wanted

    def _group_by_shard(self, streams: Sequence[str]) -> Dict[str, List[str]]:
        grouped: Dict[str, List[str]] = {}
        for stream in streams:
            grouped.setdefault(self._placement.shard_of(stream), []).append(stream)
        return grouped

    # -- stream lifecycle ----------------------------------------------------
    def ingest_stream(
        self, stream: Union[str, ObservationTable], **kwargs
    ) -> StreamHandle:
        """Place (rendezvous) and one-shot ingest a stream on its shard.

        Over in-process shards this returns the live ``StreamHandle``;
        over worker shards it returns the wire-safe
        :class:`~repro.fabric.protocol.StreamHandleInfo` summary (live
        handles are worker-local).
        """
        name = stream.stream if isinstance(stream, ObservationTable) else stream
        shard, placed = self._place(name)
        handle = shard.ingest_stream(stream, **kwargs)
        self._update_placement(placed)
        return handle

    def open_stream(self, stream: str, **kwargs) -> StreamHandle:
        """Place (rendezvous) and open a live session on the owning shard.

        Durable by default (the shard's own store journals the session)
        -- see :meth:`ShardNode.open_stream`.
        """
        shard, placed = self._place(stream)
        handle = shard.open_stream(stream, **kwargs)
        self._update_placement(placed)
        return handle

    def _place(self, stream: str) -> Tuple[ShardNode, PlacementTable]:
        """The stream's (owning shard, placement-after) -- computed but
        NOT committed: callers install the returned table only after the
        shard call succeeds, so a failed open/ingest never leaves a
        phantom placed-but-unserved stream behind (which would poison
        every later fleet-wide fan-out)."""
        placed = self._placement.with_streams(stream)
        return self.shard(placed.shard_of(stream)), placed

    def append(
        self,
        stream: str,
        chunk: ObservationTable,
        watermark_s: Optional[float] = None,
    ) -> ChunkReport:
        return self.shard_of(stream).append(stream, chunk, watermark_s=watermark_s)

    def append_many(
        self,
        chunks: Sequence[Tuple[str, ObservationTable]],
        watermarks: Optional[Mapping[str, float]] = None,
    ) -> List[ChunkReport]:
        """Append a batch of chunks, scattered to their owning shards.

        ``chunks`` is ``(stream, chunk)`` pairs; reports come back in
        input order.  Per stream the input order is preserved (a shard
        executes its legs FIFO); across *shards* the appends overlap --
        with worker-process shards every chunk is submitted before any
        report is gathered, which is the fabric's parallel ingest path.

        Mirror deltas are coalesced per round: every pipelined leg
        except a shard's last is submitted with ``defer_delta`` so the
        round ships one cumulative store delta per shard instead of one
        per chunk (worker-shard wire tax; reports are still per chunk).
        """
        for stream, _ in chunks:
            self._resolve_streams([stream])
        plan = []
        last_leg: Dict[int, int] = {}
        for i, (stream, chunk) in enumerate(chunks):
            shard = self.shard_of(stream)
            watermark_s = watermarks.get(stream) if watermarks else None
            submit = getattr(shard, "append_submit", None)
            if submit is not None:
                last_leg[id(shard)] = i
            plan.append((stream, chunk, shard, watermark_s, submit))
        legs = []
        for i, (stream, chunk, shard, watermark_s, submit) in enumerate(plan):
            if submit is not None:
                legs.append(
                    submit(
                        stream,
                        chunk,
                        watermark_s=watermark_s,
                        defer_delta=i != last_leg[id(shard)],
                    )
                )
            else:
                legs.append(
                    _Ready(shard.append(stream, chunk, watermark_s=watermark_s))
                )
        return [leg.result() for leg in legs]

    def recover(
        self, configs: Optional[Mapping[str, "FocusConfig"]] = None
    ) -> List[str]:
        """Resume every shard's journaled sessions (fleet restart).

        ``configs`` (stream -> FocusConfig) is forwarded to each shard
        for streams whose specialized model the zoo cannot rebuild.
        """
        recovered: List[str] = []
        for sid in self.shard_ids():
            recovered.extend(self.shard(sid).recover(configs=configs))
        for stream in recovered:
            # a recovered stream lives where its durable state lives;
            # pin only when that disagrees with rendezvous (mirror of
            # construction-time adoption -- a needless pin would exempt
            # the stream from future rebalancing)
            holder = self._shard_holding(stream)
            placed = self._placement.with_streams(stream)
            if placed.shard_of(stream) != holder:
                placed = placed.pin(stream, holder)
            self._update_placement(placed)
        return sorted(recovered)

    def _shard_holding(self, stream: str) -> str:
        for sid in self.shard_ids():
            if stream in self.shard(sid).streams():
                return sid
        raise KeyError("stream %r is not held by any shard" % stream)

    # -- serving (the QueryService surface) ----------------------------------
    def query(
        self,
        stream: str,
        clazz: Union[int, str],
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryAnswer:
        """Single-stream query, routed to the owning shard."""
        self._resolve_streams([stream])
        return self.shard_of(stream).query(
            stream, clazz, kx=kx, time_range=time_range
        )

    def query_all(
        self,
        clazz: Union[int, str],
        streams: Optional[Sequence[str]] = None,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> MultiStreamAnswer:
        """One class query scattered across every owning shard."""
        request = QueryRequest(
            clazz=clazz, streams=streams, kx=kx, time_range=time_range
        )
        return self.query_batch([request])[0]

    def query_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[MultiStreamAnswer]:
        """Serve concurrent queries, scatter-gathered per shard.

        Each shard runs one verification round over the sub-batch of
        requests that touch its streams (in-flight dedup, verdict
        cache, GPU batching -- the single-node machinery, reused as
        is); the per-shard answers are then merged per request.
        """
        if not requests:
            return []
        resolved = [self._resolve_streams(r.streams) for r in requests]
        # scatter: per shard, the sub-requests whose streams it owns
        per_shard: Dict[str, List[Tuple[int, QueryRequest]]] = {}
        for idx, (request, wanted) in enumerate(zip(requests, resolved)):
            for sid, subset in self._group_by_shard(wanted).items():
                per_shard.setdefault(sid, []).append(
                    (
                        idx,
                        QueryRequest(
                            clazz=request.clazz,
                            streams=subset,
                            kx=request.kx,
                            time_range=request.time_range,
                        ),
                    )
                )
        # execute + gather: every shard's leg is submitted before any
        # reply is gathered, so worker-process shards verify their
        # sub-batches concurrently (in-process shards run at submit)
        partial: List[List[MultiStreamAnswer]] = [[] for _ in requests]
        legs = [
            (per_shard[sid], self._submit_query_batch(self.shard(sid), per_shard[sid]))
            for sid in sorted(per_shard)
        ]
        for entries, leg in legs:
            for (idx, _), answer in zip(entries, leg.result()):
                partial[idx].append(answer)
        return [self._merge_answers(parts) for parts in partial]

    @staticmethod
    def _submit_query_batch(shard, entries):
        sub_requests = [request for _, request in entries]
        submit = getattr(shard, "query_batch_submit", None)
        if submit is not None:
            return submit(sub_requests)
        return _Ready(shard.query_batch(sub_requests))

    @staticmethod
    def _merge_answers(parts: List[MultiStreamAnswer]) -> MultiStreamAnswer:
        """Merge one request's per-shard answers into a fleet answer."""
        slices = {}
        for part in parts:
            slices.update(part.slices)
        return MultiStreamAnswer(
            class_id=parts[0].class_id,
            class_name=parts[0].class_name,
            slices=slices,
            # shards verify in parallel on their own clusters: the round
            # takes as long as its slowest shard
            latency_seconds=max(p.latency_seconds for p in parts),
            gt_inferences=sum(p.gt_inferences for p in parts),
            candidates=sum(p.candidates for p in parts),
            cache_hits=sum(p.cache_hits for p in parts),
            duplicates_coalesced=sum(p.duplicates_coalesced for p in parts),
        )

    # -- durability ----------------------------------------------------------
    def checkpoint_streams(
        self,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List[StreamCheckpoint]:
        """Checkpoint streams across the fleet, each into its own
        shard's store under its own epoch; outcomes sorted by stream."""
        wanted = self._resolve_streams(streams)
        grouped = self._group_by_shard(wanted)
        legs = []
        for sid in sorted(grouped):
            shard = self.shard(sid)
            submit = getattr(shard, "checkpoint_submit", None)
            if submit is not None:
                legs.append(submit(streams=grouped[sid], strict=strict))
            else:
                legs.append(
                    _Ready(shard.checkpoint(streams=grouped[sid], strict=strict))
                )
        outcomes: List[StreamCheckpoint] = []
        for leg in legs:
            outcomes.extend(leg.result())
        return sorted(outcomes, key=lambda o: o.stream)

    def checkpoint(
        self,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List[str]:
        """The committed stream names of a :meth:`checkpoint_streams` round."""
        return [
            o.stream
            for o in self.checkpoint_streams(streams=streams, strict=strict)
            if o.committed
        ]

    # -- migration -----------------------------------------------------------
    def migrate(
        self, stream: str, target_shard_id: str, checkpoint: bool = True
    ) -> MigrationReport:
        """Move a live stream to another shard, then re-pin placement.

        The data-plane move is :func:`~repro.fabric.migration.migrate_stream`
        (checkpoint -> copy -> fence -> recover); on success the
        placement table pins the stream to its new shard under a new
        version, persisted to ``meta_store`` when configured.
        """
        source = self.shard_of(stream)
        target = self.shard(target_shard_id)
        if source is target:
            raise MigrationError(
                "stream %r already lives on shard %r" % (stream, target_shard_id)
            )
        source_remote = isinstance(source, ShardClient)
        target_remote = isinstance(target, ShardClient)
        if source_remote != target_remote:
            raise MigrationError(
                "cannot migrate stream %r between fabric modes: source %r and "
                "target %r must both be in-process shards or both be worker "
                "processes" % (stream, source.shard_id, target.shard_id)
            )
        if source_remote:
            report = migrate_stream_remote(
                source, target, stream, checkpoint=checkpoint
            )
        else:
            report = migrate_stream(source, target, stream, checkpoint=checkpoint)
        # pin only when the move disagrees with rendezvous: a migration
        # onto the stream's natural winner leaves it rebalance-eligible
        # (same invariant as construction-time adoption and recover())
        natural = rendezvous_shard(stream, self._placement.shards)
        self._update_placement(
            self._placement.assign(
                stream, target_shard_id, pin=natural != target_shard_id
            )
        )
        return report

    # -- observability -------------------------------------------------------
    def cost_summary(self, per_shard: bool = False):
        """The fleet's merged cost/serving totals.

        Every ``ShardNode.cost_summary`` key is a summable total
        (GPU-seconds per ledger category, serving counters, journal
        counters), so the fleet view is a per-key sum.  With
        ``per_shard=True`` the answer is ``{"total": ..., "per_shard":
        {shard_id: ...}}`` -- the breakdown operators page shards with.
        """
        per = {sid: self.shard(sid).cost_summary() for sid in self.shard_ids()}
        total: Dict[str, float] = {}
        for summary in per.values():
            for key, value in summary.items():
                total[key] = total.get(key, 0.0) + float(value)
        if per_shard:
            return {"total": total, "per_shard": per}
        return total

    def cache_stats(self, per_shard: bool = False):
        """Fleet verification-cache statistics.

        Hit/miss/eviction/invalidation counters and resident sizes sum
        across shards; the hit rate is recomputed from the merged
        totals (:meth:`VerificationCache.merge_stats`).
        """
        per = {
            sid: self.shard(sid).cache_stats() for sid in self.shard_ids()
        }
        total = VerificationCache.merge_stats(per.values())
        if per_shard:
            return {"total": total, "per_shard": per}
        return total

    def counters(self) -> Dict[str, float]:
        """The fleet's merged serving counters (``QueryService.counters``
        summed under their declared semantics)."""
        return merge_counters(
            [self.shard(sid).serving_counters() for sid in self.shard_ids()]
        )
