"""Live stream migration between shards (checkpoint -> copy -> recover -> fence).

Moving a live, mid-ingest stream from one shard to another reuses the
PR-4 durability machinery end to end -- no new serialization format,
no state the WAL does not already cover:

1. **Checkpoint (source, epoch-CAS).**  The source session commits an
   atomic epoch-tagged checkpoint into its shard's store (optional but
   default: it bounds the journal suffix the target must replay; the
   WAL alone already carries everything).
2. **Copy.**  The stream's committed collections plus the journal
   suffix are cloned into the target shard's store
   (:func:`~repro.storage.journal.copy_stream_state`).
3. **Recover (target).**  The target shard recovers the session from
   the copied state: committed checkpoint restored, journal suffix
   replayed through the normal ingest stages.  The PR-4 recovery
   contract makes the resumed session bit-identical to one that never
   moved, in both index modes -- so query answers (frames *and*
   segment metrics) are unchanged by the move, and ingest resumes on
   the target with the next ``append``.  Recovery runs *before* any
   irreversible source-side step: a failure here wipes the copy and
   leaves the source serving.
4. **Fence (source).**  The source store's checkpoint marker is
   replaced by a fence tombstone one epoch ahead
   (:func:`~repro.storage.journal.fence_stream`) and the stale
   per-stream collections are dropped.  Any surviving source session
   now loses the epoch compare-and-swap on its next checkpoint --
   :class:`~repro.storage.journal.StaleEpochError` -- and the source
   shard's crash recovery skips the stream instead of resurrecting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.storage.journal import (
    CHECKPOINT_COLLECTION,
    backing_store,
    committed_checkpoint,
    copy_stream_state,
    fence_stream,
    journaled_streams,
    reset_stream,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import, no cycle at runtime
    from repro.fabric.shard import ShardNode


class MigrationError(RuntimeError):
    """A stream cannot be migrated as requested."""


@dataclass(frozen=True)
class MigrationReport:
    """What one completed migration did."""

    stream: str
    source_shard: str
    target_shard: str
    #: the committed epoch the target recovered from (0: journal-only)
    epoch: int
    #: the epoch the source store is fenced at (committed + 1)
    fence_epoch: int
    #: journal chunk records the target replayed past the checkpoint
    replayed_chunks: int
    rows: int
    watermark_s: float


def migrate_stream(
    source: "ShardNode",
    target: "ShardNode",
    stream: str,
    checkpoint: bool = True,
) -> MigrationReport:
    """Move one live durable stream from ``source`` to ``target``.

    Requires a live session journaled into the source shard's store
    (``ShardNode.open_stream(durable=True)``): the WAL is what makes
    the copy complete and the fence meaningful.  With
    ``checkpoint=False`` the move ships the last committed checkpoint
    plus the whole journal suffix instead of committing a fresh one --
    slower target recovery, same bit-identical result.

    On return the stream is live on the target (appendable, queryable)
    and gone from the source's serving set; the source store keeps only
    a fence tombstone.
    """
    handle = source.system.handle(stream)
    ingestor = handle.ingestor
    if ingestor is None or ingestor.journal is None:
        raise MigrationError(
            "stream %r is not a durable live session on shard %r; only "
            "sessions opened with ShardNode.open_stream(durable=True) "
            "carry the WAL state migration ships" % (stream, source.shard_id)
        )
    if backing_store(ingestor.journal.store) is not backing_store(source.store):
        raise MigrationError(
            "stream %r journals into a store that is not shard %r's own; "
            "migration copies from the shard store, so the two must match"
            % (stream, source.shard_id)
        )
    target_marker = committed_checkpoint(target.store, stream)
    if stream in journaled_streams(target.store) or (
        target_marker is not None and not target_marker.get("fenced")
    ):
        raise MigrationError(
            "target shard %r already holds durable state for stream %r; "
            "wipe it with repro.storage.journal.reset_stream before "
            "migrating onto it" % (target.shard_id, stream)
        )
    if stream in target.system.streams():
        raise MigrationError(
            "target shard %r is already serving stream %r" % (target.shard_id, stream)
        )

    # 1. epoch-CAS checkpoint on the source (strict: a failure -- or a
    # zombie losing the CAS -- aborts the migration before any copying)
    if checkpoint:
        source.system.checkpoint_outcomes(source.store, streams=[stream])
    marker = committed_checkpoint(source.store, stream)
    epoch = marker["epoch"] if marker else 0
    committed_seq = marker["journal_seq"] if marker else -1
    suffix = [
        record
        for record in ingestor.journal.records(after=committed_seq)
        if record.kind == "chunk"
    ]

    # 2. copy committed docs + journal suffix to the target store
    copy_stream_state(source.store, target.store, stream)

    # 3. recover on the target: committed state + journal suffix replay.
    # Deliberately *before* the irreversible source-side fence: if
    # recovery fails, the copied state is wiped and the source keeps
    # serving -- the stream is never left owned by no shard.  The live
    # config is handed over so sessions whose model the zoo cannot
    # rebuild (specialized CNNs) migrate too.
    try:
        target.system.recover(
            target.store, streams=[stream], configs={stream: handle.config}
        )
    except BaseException:
        reset_stream(target.store, stream)
        if target_marker is not None:
            # the copy replaced the target's own fence tombstone (a
            # prior migration away); put it back, or the zombie that
            # fence was holding off would win its epoch CAS again
            restored = {k: v for k, v in target_marker.items() if k != "_id"}
            target.store.collection(CHECKPOINT_COLLECTION).insert_one(restored)
        raise

    # 4. fence the source lineage and release its in-memory session
    fence_epoch = fence_stream(source.store, stream, migrated_to=target.shard_id)
    source.system.close_stream(stream)
    recovered = target.system.handle(stream)
    return MigrationReport(
        stream=stream,
        source_shard=source.shard_id,
        target_shard=target.shard_id,
        epoch=int(epoch),
        fence_epoch=int(fence_epoch),
        replayed_chunks=len(suffix),
        rows=len(recovered.table),
        watermark_s=float(recovered.watermark_s),
    )
