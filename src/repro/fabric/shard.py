"""One shard of the serving fabric: a FocusSystem plus its stores.

A :class:`ShardNode` is the unit of horizontal scale: it owns one
:class:`~repro.core.system.FocusSystem` (its own GPU cluster, ledger,
verification cache, and serving surface) and one
:class:`~repro.storage.docstore.DocumentStore` holding the durable
state -- WAL journals, epoch-tagged checkpoints, persisted indexes --
of every stream placed on it.  The shard knows nothing about placement
or siblings; the router (``repro.fabric.router``) owns the mapping and
scatter-gathers across shards, and migration
(``repro.fabric.migration``) moves a stream's durable state between
shard stores.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import FocusConfig
from repro.core.streaming import ChunkReport
from repro.core.system import FocusSystem, QueryAnswer, StreamHandle
from repro.fabric.protocol import (
    FAULT_COUNTER_KEYS,
    WIRE_COUNTER_KEYS,
    StreamHandleInfo,
)
from repro.serve.planner import QueryRequest
from repro.serve.service import MultiStreamAnswer, StreamCheckpoint
from repro.storage.docstore import DocumentStore
from repro.storage.journal import JOURNAL_PREFIX, fenced_streams, journaled_streams
from repro.obs.metrics import register_counters
from repro.video.synthesis import ObservationTable

#: WAL totals every shard publishes in ``cost_summary`` (summable
#: across shards, like everything else in that document)
JOURNAL_COUNTER_KEYS = register_counters(
    "sum", "journal-appends", "journal-records"
)


class ShardNode:
    """One fabric shard: a FocusSystem + its durable document store."""

    def __init__(
        self,
        shard_id: str,
        store: Optional[DocumentStore] = None,
        system: Optional[FocusSystem] = None,
        num_query_gpus: int = 4,
        **system_kwargs,
    ):
        if not shard_id:
            raise ValueError("shard_id must be non-empty")
        if system is not None and system_kwargs:
            raise ValueError(
                "pass either a prebuilt system or FocusSystem kwargs, not both"
            )
        self.shard_id = shard_id
        #: the shard's durable home: WAL journals, checkpoints, indexes
        self.store = store if store is not None else DocumentStore()
        #: the shard's serving system, with its *own* GPU cluster --
        #: shards never contend with each other for devices
        self.system = system or FocusSystem(
            num_query_gpus=num_query_gpus, **system_kwargs
        )
        # a shard is never a trace entry point: its router (or front
        # door) owns sampling, so a scatter leg whose sub-requests
        # arrive untraced must not start its own root trace
        self.system.service.trace_walkins = False

    def __repr__(self) -> str:
        return "ShardNode(%r, streams=%d)" % (self.shard_id, len(self.streams()))

    # -- stream lifecycle ----------------------------------------------------
    def streams(self) -> List[str]:
        return self.system.streams()

    def live_streams(self) -> List[str]:
        return [s for s in self.streams() if self.system.handle(s).live]

    def handle(self, stream: str) -> StreamHandle:
        return self.system.handle(stream)

    def handle_info(self, stream: str) -> StreamHandleInfo:
        """The stream's wire-safe handle summary.

        This is the shape lifecycle calls return in the fabric's
        worker-process mode (a live handle cannot cross the process
        boundary), offered in-process too so the two modes stay
        comparable field by field.
        """
        handle = self.handle(stream)
        return StreamHandleInfo(
            stream=handle.stream,
            live=handle.live,
            restored=handle.restored,
            watermark_s=float(handle.watermark_s),
            rows=len(handle.table),
            duration_s=float(handle.table.duration_s),
            fps=float(handle.table.fps),
        )

    def ingest_stream(
        self,
        stream: Union[str, ObservationTable],
        **kwargs,
    ) -> StreamHandle:
        """One-shot ingest on this shard (``FocusSystem.ingest_stream``)."""
        return self.system.ingest_stream(stream, **kwargs)

    def open_stream(
        self,
        stream: str,
        durable: bool = True,
        wal_reset: bool = False,
        **kwargs,
    ) -> StreamHandle:
        """Open a live session on this shard.

        ``durable=True`` (default) write-ahead journals into the
        shard's own store, so the session checkpoints atomically,
        recovers after a crash, and -- the fabric's reason to insist on
        it -- can be *migrated* to another shard mid-ingest.
        """
        wal = self.store if durable else None
        return self.system.open_stream(
            stream, wal_store=wal, wal_reset=wal_reset, **kwargs
        )

    def append(
        self,
        stream: str,
        chunk: ObservationTable,
        watermark_s: Optional[float] = None,
    ) -> ChunkReport:
        return self.system.append(stream, chunk, watermark_s=watermark_s)

    # -- serving -------------------------------------------------------------
    def query(
        self,
        stream: str,
        clazz: Union[int, str],
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> QueryAnswer:
        """Single-stream query against this shard's own system.

        Part of the shard *command surface* -- the exact set of
        operations that also crosses the worker-process wire
        (``repro.fabric.worker``), so the router never reaches into
        ``shard.system`` and both fabric modes speak the same verbs.
        """
        return self.system.query(stream, clazz, kx=kx, time_range=time_range)

    def query_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[MultiStreamAnswer]:
        """One verification round over this shard's sub-batch."""
        return self.system.query_batch(requests)

    def cache_stats(self) -> Dict[str, float]:
        """This shard's verification-cache statistics."""
        return self.system.service.cache_stats()

    def serving_counters(self) -> Dict[str, float]:
        """This shard's ``QueryService.counters()`` (every key classified
        in :data:`~repro.serve.service.COUNTER_KINDS` for fleet merges)."""
        return self.system.service.counters()

    # -- durability ----------------------------------------------------------
    def checkpoint(
        self,
        streams: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> List[StreamCheckpoint]:
        """Checkpoint this shard's streams into its own store, one
        independent epoch per stream; returns the full outcomes."""
        return self.system.checkpoint_outcomes(
            self.store, streams=streams, strict=strict
        )

    def recover(
        self,
        streams: Optional[Sequence[str]] = None,
        configs: Optional[Mapping[str, "FocusConfig"]] = None,
    ) -> List[str]:
        """Resume this shard's journaled sessions after a crash.

        Defaults to every stream with recoverable durable state in the
        shard's store; streams fenced by a migration away are *not*
        recoverable here (their durable home moved) and are skipped.
        ``configs`` passes per-stream ingest configurations through to
        :meth:`FocusSystem.recover` -- required for streams ingested
        with a specialized (non-zoo) model, whose config cannot be
        rebuilt from the journaled descriptor.
        """
        if streams is None:
            streams = journaled_streams(self.store)
            if not streams:
                return []
        return self.system.recover(self.store, streams=streams, configs=configs)

    def fenced(self) -> List[str]:
        """Streams migrated off this shard (fence tombstones in its store)."""
        return fenced_streams(self.store)

    # -- observability -------------------------------------------------------
    def journal_counters(self) -> Dict[str, float]:
        """This shard's WAL totals: appends by its live sessions plus
        records currently resident in its journal collections (both
        summable across shards)."""
        appends = 0
        for name in self.streams():
            ingestor = self.system.handle(name).ingestor
            if ingestor is not None and ingestor.journal is not None:
                appends += ingestor.journal.appends
        resident = sum(
            len(self.store.collection(name))
            for name in self.store.collection_names()
            if name.startswith(JOURNAL_PREFIX)
        )
        return {
            "journal-appends": float(appends),
            "journal-records": float(resident),
        }

    def cost_summary(self) -> Dict[str, float]:
        """``FocusSystem.cost_summary`` plus this shard's WAL counters.

        Every key is a summable total, so the router's fleet view is a
        plain per-key sum of the shards'.
        """
        out = self.system.cost_summary()
        out.update(self.journal_counters())
        # in-process shards have no wire and no worker to crash: report
        # the data-plane and fault counters as zeros so both fabric
        # modes stay key-compatible and the router's per-key sum never
        # KeyErrors on a mixed fleet
        out.update({key: 0.0 for key in WIRE_COUNTER_KEYS})
        out.update({key: 0.0 for key in FAULT_COUNTER_KEYS})
        return out

    def metrics_snapshot(self) -> Dict[str, object]:
        """This shard's metrics-registry snapshot (histograms in their
        mergeable wire encoding -- ``repro.obs.metrics``).

        Part of the shard command surface: the worker fabric serves the
        same shape over the wire (``metrics_snapshot`` control op), so
        ``FabricRouter.metrics_snapshot``/``load_report`` read one
        contract from both fabric modes.
        """
        return self.system.metrics.snapshot()

    def counters(self) -> Dict[str, object]:
        """The shard's full observability snapshot (per-shard view)."""
        return {
            "shard": self.shard_id,
            "streams": float(len(self.streams())),
            "live-streams": float(len(self.live_streams())),
            "cost": self.cost_summary(),
            "cache": self.system.service.cache_stats(),
            "gpu": self.system.cluster.counters(),
        }
