"""Shared-memory data plane for the fabric's worker protocol.

PR 6's wire moved *everything* through ``mp.Queue`` -- every
ObservationTable chunk, answer frame array, and store-mirror delta was
pickled whole, copied into a pipe, copied out, and unpickled.  This
module splits that wire in two:

* the **control plane** stays on the queues: small
  :class:`~repro.fabric.protocol.Request`/``Reply`` envelopes of plain
  primitives;
* the **data plane** moves bulk bytes through POSIX shared memory
  (``multiprocessing.shared_memory``): an envelope's payload field is
  replaced by a ``(segment, offset, nbytes)`` descriptor and the bytes
  themselves are written once into a mapped segment the peer reads
  directly -- no pickling of the bulk, no kernel-mediated copies
  through a pipe.

Three cooperating pieces:

* :class:`ShmSink` -- collects every bulk payload of ONE message
  (arrays, pickled blobs), then :meth:`ShmSink.seal` packs them into a
  single segment when their total crosses the crossover threshold.
  Below the threshold -- or when shared memory is unavailable, or
  allocation fails -- it transparently falls back to inlining the bytes
  in the envelope, so every consumer handles both shapes.
* :class:`ShmReader` -- resolves descriptors back to bytes.  Attachments
  can be cached across messages (workers re-read the supervisor's
  pooled segments) or owned-and-unlinked (the supervisor consumes each
  worker reply segment exactly once).
* :class:`ShmPool` -- the supervisor-owned allocator for request-plane
  segments: power-of-two sized segments, leased per in-flight command
  and recycled at gather, every lease reclaimed when a worker dies and
  every segment unlinked (and leak-checked) at shutdown.

Reply-plane segments are not pooled: the worker creates one per reply
under a *deterministic* name derived from the correlation id, which is
what makes crash reclamation possible -- a supervisor restarting a dead
worker probes the names of every unacknowledged command and unlinks the
orphans (:func:`unlink_segment`).

Resource-tracker discipline: the supervisor and its workers are one
process tree sharing ONE ``resource_tracker`` process (fork inherits
it; spawn is handed its fd), whose per-name cache is a *set* -- the
registration a create adds and the duplicate an attach adds collapse
into a single entry that exactly one ``unlink`` must consume.  So
nobody unregisters manually: the pool unlinks request segments at
:meth:`ShmPool.close`, the consuming supervisor unlinks each reply
segment after reading it (or reclaims orphans by name after a worker
death), and every other close is just an unmap.  A segment nobody
unlinks stays registered and the tracker's exit warning is the leak
signal, on purpose.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: per-message crossover: messages whose bulk payloads total fewer
#: bytes than this are inlined in the envelope (a queue round trip on a
#: few KB beats a segment create/attach)
DEFAULT_SHM_THRESHOLD = 32 * 1024

#: descriptor alignment inside a packed segment (decoded arrays keep
#: natural alignment for every dtype the tables use)
_ALIGN = 64

_availability: Optional[bool] = None


def tracker_unregister(name: str) -> None:
    """Drop a segment from the resource tracker without unlinking it.

    Escape hatch for code that must attach to a segment owned by an
    *unrelated* process tree (a different tracker).  Inside the fabric
    everything shares one tracker whose name cache is a set, so attach
    registrations dedupe against the create and no manual unregister is
    needed -- or wanted: a spurious one orphans the entry the eventual
    ``unlink`` consumes.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def shm_available() -> bool:
    """Can this host create, attach, and unlink a shared segment?"""
    global _availability
    if _availability is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=64)
            seg.buf[:4] = b"ok??"
            twin = shared_memory.SharedMemory(name=seg.name)
            ok = bytes(twin.buf[:2]) == b"ok"
            twin.close()
            seg.close()
            seg.unlink()
            _availability = bool(ok)
        except Exception:
            _availability = False
    return _availability


def create_segment(name: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create a named segment, replacing any stale leftover under the
    same name (a previous incarnation that died mid-handoff)."""
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    except FileExistsError:
        unlink_segment(name)
        return shared_memory.SharedMemory(name=name, create=True, size=nbytes)


def unlink_segment(name: str) -> bool:
    """Unlink a segment by name if it exists (orphan reclamation).

    Returns True when a segment was actually found and removed.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except Exception:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    return True


class ShmSink:
    """Collects one message's bulk payloads; seals them into one segment.

    Codec encoders hand each bulk payload (a contiguous ndarray or a
    ``bytes`` blob) to the sink together with the envelope dict it
    belongs to.  The envelope leaves the encoder *unresolved*;
    :meth:`seal` then either

    * packs every payload into a single shared segment and patches each
      envelope with a ``{"seg", "off", "n"}`` descriptor under
      ``"shm"``, or
    * inlines each payload as ``bytes`` under ``"data"`` -- the
      fallback when the message totals below the crossover threshold,
      shared memory is disabled, or allocation fails.

    ``alloc(nbytes)`` supplies the segment (pool lease or fresh named
    segment) and may return None to force the fallback.
    """

    def __init__(
        self,
        alloc: Optional[Callable[[int], Any]] = None,
        threshold: int = DEFAULT_SHM_THRESHOLD,
        enabled: bool = True,
    ):
        self._alloc = alloc
        self._threshold = threshold
        self._enabled = enabled and alloc is not None
        self._items: List[Tuple[Dict[str, Any], Any]] = []
        self._total = 0
        self._sealed = False
        #: set by seal(): the packed segment's name (None = inlined)
        self.segment_name: Optional[str] = None
        #: bulk bytes that went through shared memory (0 when inlined)
        self.sealed_nbytes = 0
        self._segment: Optional[Any] = None

    @property
    def nbytes(self) -> int:
        return self._total

    def add_array(self, envelope: Dict[str, Any], arr: np.ndarray) -> None:
        contiguous = np.ascontiguousarray(arr)
        self._items.append((envelope, contiguous))
        self._total += contiguous.nbytes

    def add_bytes(self, envelope: Dict[str, Any], data: bytes) -> None:
        self._items.append((envelope, data))
        self._total += len(data)

    def _inline_all(self) -> None:
        for envelope, payload in self._items:
            if isinstance(payload, np.ndarray):
                envelope["data"] = payload.tobytes()
            else:
                envelope["data"] = payload

    def seal(self) -> Optional[str]:
        """Resolve every collected envelope; returns the segment name
        when the payloads went to shared memory, else None."""
        if self._sealed:
            return self.segment_name
        self._sealed = True
        if not self._items:
            return None
        if not self._enabled or self._total < self._threshold:
            self._inline_all()
            return None
        offsets = []
        cursor = 0
        for _, payload in self._items:
            cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
            offsets.append(cursor)
            cursor += payload.nbytes if isinstance(payload, np.ndarray) else len(payload)
        segment = None
        try:
            segment = self._alloc(max(cursor, 1))
        except Exception:
            segment = None
        if segment is None:
            self._inline_all()
            return None
        buf = segment.buf
        for (envelope, payload), offset in zip(self._items, offsets):
            if isinstance(payload, np.ndarray):
                nbytes = payload.nbytes
                if nbytes:
                    dest = np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=offset)
                    dest[:] = payload.reshape(-1).view(np.uint8)
            else:
                nbytes = len(payload)
                if nbytes:
                    buf[offset : offset + nbytes] = payload
            envelope["shm"] = {"seg": segment.name, "off": offset, "n": nbytes}
        self.segment_name = segment.name
        self.sealed_nbytes = self._total
        self._segment = segment
        return self.segment_name

    def close_handoff(self) -> None:
        """Creator-side release after the message is enqueued: unmap
        this process's view.  The consuming peer owns the segment's
        lifetime from here and unlinks it after reading (the
        reply-plane contract; pool-leased request segments are released
        through the pool instead and never call this)."""
        seg = self._segment
        if seg is not None:
            self._segment = None
            seg.close()


class ShmReader:
    """Resolves ``{"seg", "off", "n"}`` descriptors back to bytes.

    Two lifetimes:

    * ``cache`` + ``owns=False`` -- the worker side: attachments go
      into a long-lived cache (the supervisor's pooled request segments
      recur under the same names command after command) and are
      unregistered from the resource tracker immediately -- the pool
      owns them.
    * ``owns=True`` -- the supervisor side: each reply's segment is
      consumed exactly once; :meth:`close` closes *and unlinks* every
      segment this reader attached.
    """

    def __init__(
        self,
        cache: Optional[Dict[str, shared_memory.SharedMemory]] = None,
        owns: bool = True,
    ):
        self._cache = {} if cache is None else cache
        self._owns = owns
        self._opened: List[str] = []
        #: bulk bytes resolved through shared memory by this reader
        self.total_nbytes = 0

    def _segment(self, name: str) -> shared_memory.SharedMemory:
        seg = self._cache.get(name)
        if seg is None:
            # attaching re-registers the name, but the fabric's shared
            # tracker dedupes it against the creator's registration --
            # lifetime stays with whoever unlinks (see module docstring)
            seg = shared_memory.SharedMemory(name=name)
            self._cache[name] = seg
            self._opened.append(name)
        return seg

    def bytes_at(self, desc: Dict[str, Any]) -> bytes:
        seg = self._segment(desc["seg"])
        off, n = desc["off"], desc["n"]
        self.total_nbytes += n
        return bytes(seg.buf[off : off + n])

    def array_at(self, desc: Dict[str, Any], dtype: np.dtype, shape) -> np.ndarray:
        seg = self._segment(desc["seg"])
        off, n = desc["off"], desc["n"]
        self.total_nbytes += n
        count = int(np.prod(shape)) if shape else 1
        arr = np.frombuffer(seg.buf, dtype=dtype, count=count, offset=off)
        return arr.reshape(shape).copy()  # owns its memory; segment is reusable

    def close(self) -> None:
        """Release this reader's attachments (and unlink them when this
        reader owns their lifetime -- the reply-plane contract)."""
        for name in self._opened:
            seg = self._cache.pop(name, None)
            if seg is None:
                continue
            seg.close()
            if self._owns:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        self._opened = []


class _FreeList:
    __slots__ = ("segments",)

    def __init__(self):
        self.segments: List[shared_memory.SharedMemory] = []


class ShmPool:
    """Supervisor-owned pooled allocator for request-plane segments.

    Segments are created in power-of-two sizes and recycled: a sealed
    request leases one for exactly the command's flight time (submit ->
    gather), after which :meth:`release` returns it to the free list --
    the worker executes commands strictly in order, so a gathered
    reply proves the worker is done reading the request's segment.

    Leases for a dead worker are reclaimed by the supervisor (no
    concurrent reader can exist), and :meth:`close` unlinks every
    segment, returning the names still leased -- the shutdown leak
    check the tests assert empty.
    """

    def __init__(self, prefix: str):
        self._prefix = prefix
        self._seq = 0
        self._free: Dict[int, _FreeList] = {}
        self._leased: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False

    def allocate(self, nbytes: int) -> Optional[shared_memory.SharedMemory]:
        """Lease a segment of at least ``nbytes`` (None on failure)."""
        if self._closed:
            return None
        size = max(4096, 1 << (int(nbytes) - 1).bit_length())
        free = self._free.get(size)
        if free is not None and free.segments:
            seg = free.segments.pop()
        else:
            name = "%s-p%d" % (self._prefix, self._seq)
            self._seq += 1
            try:
                seg = shared_memory.SharedMemory(name=name, create=True, size=size)
            except Exception:
                return None
        self._leased[seg.name] = seg
        return seg

    def release(self, name: str) -> None:
        """Return a leased segment to the free list (idempotent)."""
        seg = self._leased.pop(name, None)
        if seg is None:
            return
        # segments are created in power-of-two sizes >= 4096 (always
        # page multiples), so seg.size is its own size class
        self._free.setdefault(int(seg.size), _FreeList()).segments.append(seg)

    def leased_names(self) -> List[str]:
        return sorted(self._leased)

    def release_many(self, names: Sequence[str]) -> int:
        """Reclaim a batch of leases (idempotent); returns how many were
        actually returned to the free list.

        This is the failure-time reclamation path: when a worker dies or
        is deadline-killed, the supervisor condemns it and returns every
        request segment leased to that worker's in-flight commands *at
        detection time* -- no concurrent reader can exist (the only
        reader is dead), and waiting for a later restart would leak the
        leases for the whole outage.
        """
        reclaimed = 0
        for name in list(names):
            if name in self._leased:
                self.release(name)
                reclaimed += 1
        return reclaimed

    def close(self) -> List[str]:
        """Unlink every segment (free and leased); returns the names
        that were still leased -- a non-empty answer is a leak."""
        if self._closed:
            return []
        self._closed = True
        leaked = sorted(self._leased)
        doomed = list(self._leased.values())
        for free in self._free.values():
            doomed.extend(free.segments)
        self._leased.clear()
        self._free.clear()
        for seg in doomed:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        return leaked
