"""Deterministic, versioned stream->shard placement.

A sharded Focus deployment must answer "which shard owns this camera?"
identically from every router, across restarts, with no coordination.
Placement here is therefore an *explicit, versioned mapping* persisted
as documents -- in the spirit of VBI's indirection between names and
physical placement -- rather than an accident of which process happened
to ingest the stream:

* **Rendezvous (highest-random-weight) hashing** assigns each stream to
  the shard with the highest deterministic score for that (shard,
  stream) pair.  Adding or removing a shard moves only the streams
  whose winning shard changed -- on add, exactly the streams the new
  shard wins; on remove, exactly the removed shard's streams -- the
  minimal-movement property the tests assert.
* **The placement table is data, not a hash convention.**  Live
  migration (``repro.fabric.migration``) moves a stream *against* the
  hash, recorded as a pinned assignment; every change bumps the
  version; the whole table persists as one document per version in a
  document store, so routers can reload the authoritative mapping and a
  stale writer is rejected instead of silently rolling placement back.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.storage.docstore import DocumentStore

#: the collection one placement document per version lands in
PLACEMENT_COLLECTION = "fabric-placement"

#: how many trailing versions :meth:`PlacementTable.save` retains; older
#: documents are compacted away so the audit window -- and the CAS scan
#: -- stay O(1) per save instead of growing with every stream ever placed
HISTORY_KEEP = 32


class PlacementError(ValueError):
    """Raised for invalid placement-table operations."""


class PlacementConflictError(PlacementError):
    """A placement save lost the version race.

    The store already holds this version (or a newer one): another
    router updated placement since this table was loaded.  Reload and
    reapply instead of overwriting the newer mapping.
    """


def rendezvous_score(shard_id: str, stream: str) -> int:
    """The deterministic weight of ``shard_id`` for ``stream``.

    SHA-1 over the pair, so scores agree across processes and Python
    runs (the built-in ``hash`` is salted per process and would scatter
    streams differently on every router).
    """
    digest = hashlib.sha1(
        ("%s|%s" % (shard_id, stream)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_shard(stream: str, shards: Sequence[str]) -> str:
    """The shard that wins ``stream`` under rendezvous hashing."""
    if not shards:
        raise PlacementError("cannot place stream %r: no shards" % stream)
    # ties broken by shard id so the winner is total-ordered either way
    return max(shards, key=lambda sid: (rendezvous_score(sid, stream), sid))


@dataclass(frozen=True)
class PlacementTable:
    """One immutable version of the stream->shard mapping.

    ``assignments`` is authoritative for every placed stream; streams
    in ``pinned`` were placed explicitly (migration) and keep their
    shard across shard-set changes as long as it exists, while the rest
    follow rendezvous hashing.  Every mutation returns a *new* table
    with ``version + 1``.
    """

    version: int
    shards: Tuple[str, ...]
    assignments: Dict[str, str]
    pinned: FrozenSet[str]

    def __post_init__(self):
        if len(set(self.shards)) != len(self.shards):
            raise PlacementError("duplicate shard ids: %s" % (self.shards,))
        for stream, shard in self.assignments.items():
            if shard not in self.shards:
                raise PlacementError(
                    "stream %r assigned to unknown shard %r" % (stream, shard)
                )
        stray = self.pinned - set(self.assignments)
        if stray:
            raise PlacementError(
                "pinned streams without an assignment: %s" % sorted(stray)
            )

    # -- construction --------------------------------------------------------
    @classmethod
    def build(
        cls, shards: Sequence[str], streams: Iterable[str] = ()
    ) -> "PlacementTable":
        """Version-1 table placing ``streams`` by rendezvous hashing."""
        shards = tuple(shards)
        assignments = {
            stream: rendezvous_shard(stream, shards) for stream in streams
        }
        return cls(
            version=1,
            shards=shards,
            assignments=assignments,
            pinned=frozenset(),
        )

    # -- reads ---------------------------------------------------------------
    def streams(self) -> List[str]:
        return sorted(self.assignments)

    def shard_of(self, stream: str) -> str:
        try:
            return self.assignments[stream]
        except KeyError:
            raise KeyError("stream %r is not placed on any shard" % stream)

    def streams_on(self, shard_id: str) -> List[str]:
        return sorted(
            s for s, shard in self.assignments.items() if shard == shard_id
        )

    # -- versioned mutations -------------------------------------------------
    def _next(self, assignments: Dict[str, str], pinned: FrozenSet[str],
              shards: Optional[Tuple[str, ...]] = None) -> "PlacementTable":
        return PlacementTable(
            version=self.version + 1,
            shards=self.shards if shards is None else shards,
            assignments=assignments,
            pinned=pinned,
        )

    def with_streams(self, *streams: str) -> "PlacementTable":
        """Place new streams by rendezvous; already-placed ones keep
        their shard.  No-op calls return ``self`` unchanged (no version
        burn)."""
        fresh = [s for s in streams if s not in self.assignments]
        if not fresh:
            return self
        assignments = dict(self.assignments)
        for stream in fresh:
            assignments[stream] = rendezvous_shard(stream, self.shards)
        return self._next(assignments, self.pinned)

    def assign(
        self, stream: str, shard_id: str, pin: bool = True
    ) -> "PlacementTable":
        """Explicitly place a stream on ``shard_id``.

        ``pin=True`` (the default, and what :meth:`pin` delegates to)
        additionally exempts the stream from rendezvous: it stays on
        that shard across shard-set changes until the shard is removed.
        ``pin=False`` records the assignment without the exemption --
        used when an explicit move happens to land on the stream's
        rendezvous winner, which must stay rebalance-eligible.
        """
        if shard_id not in self.shards:
            raise PlacementError("cannot assign to unknown shard %r" % shard_id)
        assignments = dict(self.assignments)
        assignments[stream] = shard_id
        pinned = self.pinned | {stream} if pin else self.pinned - {stream}
        return self._next(assignments, pinned)

    def pin(self, stream: str, shard_id: str) -> "PlacementTable":
        """Explicitly move a stream to ``shard_id`` (migration record).

        The stream stops following rendezvous hashing: it stays on the
        pinned shard across shard-set changes until that shard is
        removed (then it falls back to rendezvous).
        """
        return self.assign(stream, shard_id, pin=True)

    def adopt_shards(self, shards: Sequence[str]) -> "PlacementTable":
        """Adopt a changed shard set *without* moving any placed stream.

        Every stream whose shard survives keeps it (its data lives
        there; only :func:`~repro.fabric.migration.migrate_stream`
        moves data) -- but *new* streams rendezvous over the adopted
        set, so an added shard starts receiving placements immediately.
        Streams orphaned by a removed shard are re-placed by rendezvous
        and lose their pin.  Contrast :meth:`with_shards`, which also
        re-places existing unpinned streams (a rebalance that must be
        paired with data migration).  No-op adoptions return ``self``.
        """
        shards = tuple(shards)
        if not shards:
            raise PlacementError("a placement needs at least one shard")
        if shards == self.shards:
            return self
        assignments: Dict[str, str] = {}
        pinned = set()
        for stream, shard in self.assignments.items():
            if shard in shards:
                assignments[stream] = shard
                if stream in self.pinned:
                    pinned.add(stream)
            else:
                assignments[stream] = rendezvous_shard(stream, shards)
        return self._next(assignments, frozenset(pinned), shards=shards)

    def with_shards(self, shards: Sequence[str]) -> "PlacementTable":
        """Re-place every stream over a changed shard set.

        Unpinned streams follow rendezvous hashing over the new set --
        minimal movement by construction.  Pinned streams keep their
        shard while it survives; a pinned stream whose shard was
        removed rejoins rendezvous (and loses its pin).
        """
        shards = tuple(shards)
        if not shards:
            raise PlacementError("a placement needs at least one shard")
        assignments: Dict[str, str] = {}
        pinned = set()
        for stream, shard in self.assignments.items():
            if stream in self.pinned and shard in shards:
                assignments[stream] = shard
                pinned.add(stream)
            else:
                assignments[stream] = rendezvous_shard(stream, shards)
        return self._next(assignments, frozenset(pinned), shards=shards)

    def moved_streams(self, other: "PlacementTable") -> Dict[str, Tuple[str, str]]:
        """Streams whose shard differs between two tables:
        ``{stream: (shard_here, shard_there)}`` (shared streams only)."""
        return {
            s: (self.assignments[s], other.assignments[s])
            for s in self.assignments
            if s in other.assignments and other.assignments[s] != self.assignments[s]
        }

    # -- persistence ---------------------------------------------------------
    def to_doc(self) -> Dict:
        return {
            "kind": "placement",
            "version": int(self.version),
            "shards": list(self.shards),
            "assignments": dict(self.assignments),
            "pinned": sorted(self.pinned),
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "PlacementTable":
        return cls(
            version=int(doc["version"]),
            shards=tuple(doc["shards"]),
            assignments=dict(doc["assignments"]),
            pinned=frozenset(doc["pinned"]),
        )

    def save(self, store: DocumentStore) -> None:
        """Append this version to the store's placement history.

        Version-CAS: if the store already holds this version or newer,
        another router won the race -- :class:`PlacementConflictError`
        is raised and nothing is written (mirror of the checkpoint
        epoch CAS; a stale table must never overwrite a newer one).

        History is compacted to the trailing :data:`HISTORY_KEEP`
        versions: each document carries the full assignments snapshot,
        so an unbounded history would make placement writes O(streams x
        versions) in both storage and CAS-scan cost.
        """
        coll = store.collection(PLACEMENT_COLLECTION)
        versions = [doc["version"] for doc in coll.find({"kind": "placement"})]
        if versions and max(versions) >= self.version:
            raise PlacementConflictError(
                "placement version %d is not newer than the store's %d; "
                "reload the table and reapply the change"
                % (self.version, max(versions))
            )
        coll.insert_one(self.to_doc())
        coll.delete_many(
            {"kind": "placement", "version": {"$lte": self.version - HISTORY_KEEP}}
        )

    @classmethod
    def load(cls, store: DocumentStore) -> Optional["PlacementTable"]:
        """The highest-version placement in ``store``, or None."""
        docs = store.collection(PLACEMENT_COLLECTION).find({"kind": "placement"})
        if not docs:
            return None
        return cls.from_doc(max(docs, key=lambda d: d["version"]))

    @classmethod
    def history(cls, store: DocumentStore) -> List["PlacementTable"]:
        """The retained versions, oldest first (the trailing
        :data:`HISTORY_KEEP`-deep placement audit log)."""
        docs = store.collection(PLACEMENT_COLLECTION).find({"kind": "placement"})
        return [cls.from_doc(d) for d in sorted(docs, key=lambda d: d["version"])]
