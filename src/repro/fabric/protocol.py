"""Request/reply envelopes for the fabric's worker processes.

The wire discipline between a :class:`~repro.fabric.worker.ShardClient`
(in the supervisor process) and its shard worker is deliberately tiny:

* every command travels as one :class:`Request` carrying a correlation
  id, an operation name, and a payload of already-encoded primitives
  (``repro.fabric.codec``);
* every command produces exactly one :class:`Reply` echoing the
  correlation id, carrying either an encoded value or a marshalled
  error, plus the *store delta* -- the shard store collections the
  command changed, shipped whole so the supervisor's mirror tracks the
  worker's durable state (see ``docs/SHARDING.md``);
* a worker processes requests strictly in order, so replies are FIFO
  per shard and a client that pipelines N requests gathers N replies in
  submission order -- no reordering, no windowing.

Version skew between a client and a worker (e.g. a supervisor restarted
onto newer code while old workers linger) is refused up front: a worker
rejects any request whose ``version`` is not its own
:data:`PROTOCOL_VERSION` with a :class:`ProtocolError` instead of
guessing at the payload's shape.

Errors cross the boundary by value.  :func:`encode_error` prefers
pickling the exception itself (so ``KeyError``/``MigrationError``/
``StaleEpochError`` re-raise client-side with their original type and
arguments); exceptions that refuse to pickle fall back to a marshalled
``(module, type, message)`` triple that :func:`raise_remote`
reconstructs, or wraps in :class:`RemoteShardError` when the type
cannot be rebuilt.  Either way the worker-side traceback travels along
as text and is attached to the raised exception as
``remote_traceback``.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import register_counters

#: bumped whenever the envelope or any codec payload shape changes
#: (v2: shared-memory data plane -- bulk payload fields may carry a
#: segment descriptor instead of inline bytes, and ``store_delta`` is a
#: blob envelope of doc-level collection deltas; v3: query-request
#: payloads carry the QoS fields ``priority``/``deadline_s`` used for
#: deadline-aware verification batch formation; v4: query-request
#: payloads may carry an optional ``trace`` context, replies may carry
#: worker-side ``spans``, and the ``metrics_snapshot`` control op
#: returns the shard registry's histogram snapshot)
PROTOCOL_VERSION = 4

#: the client-side wire counters every shard surfaces through
#: ``cost_summary`` (summable across shards; in-process ShardNodes
#: report them as zeros so the two fabric modes stay key-compatible).
#: Registered into the shared kind registry (``COUNTER_KINDS``) here,
#: the owning module.
WIRE_COUNTER_KEYS = register_counters(
    "sum",
    "wire_bytes_sent",
    "wire_bytes_received",
    "shm_bytes",
    "delta_docs_shipped",
    "delta_skipped_readonly",
)

#: the fault-tolerance counters every shard surfaces through
#: ``cost_summary`` (same key-parity rule as :data:`WIRE_COUNTER_KEYS`:
#: in-process ShardNodes report zeros).  ``worker_restarts`` and
#: ``deadline_exceeded`` are tracked per shard by the supervisor;
#: ``retries`` and ``partial_answers`` are router-side and land in the
#: fleet total only (see ``docs/RESILIENCE.md``).
FAULT_COUNTER_KEYS = register_counters(
    "sum",
    "worker_restarts",
    "deadline_exceeded",
    "retries",
    "partial_answers",
)

#: every command op classified into a deadline kind.  Queries and
#: control chatter must fail fast (they block scatter-gather rounds);
#: ingest moves real data; recovery/migration legs replay WALs and ship
#: snapshots, so they get the long leash.  Unknown ops (new chaos
#: hooks, future commands) default to ``"slow"`` -- a too-long deadline
#: degrades latency, a too-short one kills healthy workers.
OP_DEADLINE_KINDS: Dict[str, str] = {
    # control chatter
    "ping": "control",
    "streams": "control",
    "live_streams": "control",
    "fenced": "control",
    "handle_info": "control",
    "cache_stats": "control",
    "serving_counters": "control",
    "cost_summary": "control",
    "journal_counters": "control",
    "counters": "control",
    "metrics_snapshot": "control",
    "shutdown": "control",
    "inject_crash_after_journal": "control",
    "inject_crash_before_reply": "control",
    "inject_stall": "control",
    "inject_slow": "control",
    "inject_drop_reply": "control",
    # serving
    "query": "query",
    "query_batch": "query",
    # ingest / durability
    "open_stream": "ingest",
    "ingest_stream": "ingest",
    "append": "ingest",
    "checkpoint": "ingest",
    # recovery and migration legs
    "recover": "slow",
    "import_precheck": "control",
    "migrate_out": "slow",
    "import_stream": "slow",
    "finish_migration": "ingest",
}

#: default per-kind deadlines (seconds); override per supervisor via
#: ``FabricSupervisor(deadlines={"query": 5.0, ...})`` or per call via
#: ``deadline_s=`` on the client
DEFAULT_DEADLINES: Dict[str, float] = {
    "control": 30.0,
    "query": 60.0,
    "ingest": 120.0,
    "slow": 600.0,
}


def deadline_kind(op: str) -> str:
    """The deadline kind of one op (unknown ops get the long leash)."""
    return OP_DEADLINE_KINDS.get(op, "slow")


class ProtocolError(RuntimeError):
    """A request the worker cannot honor (version skew, unknown op)."""


class DeadlineExceeded(RuntimeError):
    """A command's reply did not arrive within its deadline.

    The worker is *condemned* on the spot: killed, its shm leases
    reclaimed, and its client refuses further traffic until
    ``FabricSupervisor.restart``/``ensure_alive`` respawns it from the
    mirror+WAL.  Like :class:`WorkerCrashed`, the expired command's
    effects never reached the mirror, so it never happened durably --
    the caller may retry it against the restarted worker.
    """


class ShardFailed(RuntimeError):
    """The crash-loop circuit breaker tripped: the shard racked up N
    consecutive failures without an intervening healthy reply and the
    supervisor stopped restarting it.  ``FabricSupervisor.reset_failed``
    re-arms the breaker after the underlying cause is fixed."""


class WorkerCrashed(RuntimeError):
    """The shard worker died before replying.

    The command's effects are not reflected in the supervisor's store
    mirror (deltas ship with the reply), so after a restart the shard
    recovers to its state as of the last *acknowledged* command --
    at-most-once semantics: an unacknowledged command simply never
    happened durably, and the caller may retry it.
    """


class RemoteShardError(RuntimeError):
    """A worker-side failure whose original exception type could not be
    reconstructed client-side."""


@dataclass(frozen=True)
class Request:
    """One command envelope: supervisor -> worker."""

    corr_id: int
    op: str
    payload: Dict[str, Any] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Reply:
    """One command's outcome: worker -> supervisor.

    ``store_delta`` is a ``"blob"`` codec envelope (inline bytes or a
    shared-memory descriptor) holding the pickled list of per-collection
    delta envelopes -- doc-level ``"cdelta"`` change sets when the
    mirror shares the collection's baseline, whole-collection
    ``"cfull"`` snapshots otherwise (see
    :meth:`repro.storage.docstore.Collection.delta_snapshot`);
    ``store_drops`` lists collections the command removed.  Read-only
    commands and deferred scatter legs ship no delta at all; errors
    ship the delta too -- a strict checkpoint that fails halfway still
    moved durable state, and the mirror must track the worker's truth,
    not the caller's wish.

    ``spans`` (v4) carries the worker-side trace spans the command
    produced -- plain dicts (``repro.obs.trace``), shipped only when
    the request was sampled, absorbed into the supervisor-side sink so
    one exported trace stitches across the process boundary.
    """

    corr_id: int
    ok: bool
    value: Any = None
    error: Optional[Dict[str, Any]] = None
    store_delta: Optional[Dict[str, Any]] = None
    store_drops: Tuple[str, ...] = ()
    spans: Tuple[Dict[str, Any], ...] = ()


@dataclass(frozen=True)
class StreamHandleInfo:
    """A stream handle's wire-safe summary.

    Live :class:`~repro.core.system.StreamHandle` objects hold the
    engine, the ingestor, and the accumulated table -- worker-local
    state that must not cross the process boundary.  Lifecycle commands
    (open/ingest/handle inspection) return this summary instead; it is
    also what :meth:`ShardNode.handle_info` returns in-process, so the
    two fabric modes stay comparable field by field.
    """

    stream: str
    live: bool
    restored: bool
    watermark_s: float
    rows: int
    duration_s: float
    fps: float


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """Marshal a worker-side exception for the reply envelope."""
    out: Dict[str, Any] = {
        "type": type(exc).__name__,
        "module": type(exc).__module__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)  # must survive the round trip, not just dumps
        out["pickled"] = payload
    except Exception:
        pass
    return out


def raise_remote(error: Dict[str, Any]) -> None:
    """Re-raise a marshalled worker-side exception client-side."""
    exc: BaseException
    payload = error.get("pickled")
    if payload is not None:
        try:
            exc = pickle.loads(payload)
        except Exception:
            payload = None
    if payload is None:
        exc = _rebuild(error)
    try:
        exc.remote_traceback = error.get("traceback")  # type: ignore[attr-defined]
    except Exception:
        pass
    raise exc


def _rebuild(error: Dict[str, Any]) -> BaseException:
    """Best-effort reconstruction of an unpicklable exception."""
    try:
        module = __import__(error["module"], fromlist=[error["type"]])
        cls = getattr(module, error["type"])
        if isinstance(cls, type) and issubclass(cls, BaseException):
            return cls(error["message"])
    except Exception:
        pass
    return RemoteShardError(
        "%s.%s: %s" % (error.get("module"), error.get("type"), error.get("message"))
    )
