"""Request/reply envelopes for the fabric's worker processes.

The wire discipline between a :class:`~repro.fabric.worker.ShardClient`
(in the supervisor process) and its shard worker is deliberately tiny:

* every command travels as one :class:`Request` carrying a correlation
  id, an operation name, and a payload of already-encoded primitives
  (``repro.fabric.codec``);
* every command produces exactly one :class:`Reply` echoing the
  correlation id, carrying either an encoded value or a marshalled
  error, plus the *store delta* -- the shard store collections the
  command changed, shipped whole so the supervisor's mirror tracks the
  worker's durable state (see ``docs/SHARDING.md``);
* a worker processes requests strictly in order, so replies are FIFO
  per shard and a client that pipelines N requests gathers N replies in
  submission order -- no reordering, no windowing.

Version skew between a client and a worker (e.g. a supervisor restarted
onto newer code while old workers linger) is refused up front: a worker
rejects any request whose ``version`` is not its own
:data:`PROTOCOL_VERSION` with a :class:`ProtocolError` instead of
guessing at the payload's shape.

Errors cross the boundary by value.  :func:`encode_error` prefers
pickling the exception itself (so ``KeyError``/``MigrationError``/
``StaleEpochError`` re-raise client-side with their original type and
arguments); exceptions that refuse to pickle fall back to a marshalled
``(module, type, message)`` triple that :func:`raise_remote`
reconstructs, or wraps in :class:`RemoteShardError` when the type
cannot be rebuilt.  Either way the worker-side traceback travels along
as text and is attached to the raised exception as
``remote_traceback``.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: bumped whenever the envelope or any codec payload shape changes
#: (v2: shared-memory data plane -- bulk payload fields may carry a
#: segment descriptor instead of inline bytes, and ``store_delta`` is a
#: blob envelope of doc-level collection deltas)
PROTOCOL_VERSION = 2

#: the client-side wire counters every shard surfaces through
#: ``cost_summary`` (summable across shards; in-process ShardNodes
#: report them as zeros so the two fabric modes stay key-compatible)
WIRE_COUNTER_KEYS = (
    "wire_bytes_sent",
    "wire_bytes_received",
    "shm_bytes",
    "delta_docs_shipped",
    "delta_skipped_readonly",
)


class ProtocolError(RuntimeError):
    """A request the worker cannot honor (version skew, unknown op)."""


class WorkerCrashed(RuntimeError):
    """The shard worker died before replying.

    The command's effects are not reflected in the supervisor's store
    mirror (deltas ship with the reply), so after a restart the shard
    recovers to its state as of the last *acknowledged* command --
    at-most-once semantics: an unacknowledged command simply never
    happened durably, and the caller may retry it.
    """


class RemoteShardError(RuntimeError):
    """A worker-side failure whose original exception type could not be
    reconstructed client-side."""


@dataclass(frozen=True)
class Request:
    """One command envelope: supervisor -> worker."""

    corr_id: int
    op: str
    payload: Dict[str, Any] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Reply:
    """One command's outcome: worker -> supervisor.

    ``store_delta`` is a ``"blob"`` codec envelope (inline bytes or a
    shared-memory descriptor) holding the pickled list of per-collection
    delta envelopes -- doc-level ``"cdelta"`` change sets when the
    mirror shares the collection's baseline, whole-collection
    ``"cfull"`` snapshots otherwise (see
    :meth:`repro.storage.docstore.Collection.delta_snapshot`);
    ``store_drops`` lists collections the command removed.  Read-only
    commands and deferred scatter legs ship no delta at all; errors
    ship the delta too -- a strict checkpoint that fails halfway still
    moved durable state, and the mirror must track the worker's truth,
    not the caller's wish.
    """

    corr_id: int
    ok: bool
    value: Any = None
    error: Optional[Dict[str, Any]] = None
    store_delta: Optional[Dict[str, Any]] = None
    store_drops: Tuple[str, ...] = ()


@dataclass(frozen=True)
class StreamHandleInfo:
    """A stream handle's wire-safe summary.

    Live :class:`~repro.core.system.StreamHandle` objects hold the
    engine, the ingestor, and the accumulated table -- worker-local
    state that must not cross the process boundary.  Lifecycle commands
    (open/ingest/handle inspection) return this summary instead; it is
    also what :meth:`ShardNode.handle_info` returns in-process, so the
    two fabric modes stay comparable field by field.
    """

    stream: str
    live: bool
    restored: bool
    watermark_s: float
    rows: int
    duration_s: float
    fps: float


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """Marshal a worker-side exception for the reply envelope."""
    out: Dict[str, Any] = {
        "type": type(exc).__name__,
        "module": type(exc).__module__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)  # must survive the round trip, not just dumps
        out["pickled"] = payload
    except Exception:
        pass
    return out


def raise_remote(error: Dict[str, Any]) -> None:
    """Re-raise a marshalled worker-side exception client-side."""
    exc: BaseException
    payload = error.get("pickled")
    if payload is not None:
        try:
            exc = pickle.loads(payload)
        except Exception:
            payload = None
    if payload is None:
        exc = _rebuild(error)
    try:
        exc.remote_traceback = error.get("traceback")  # type: ignore[attr-defined]
    except Exception:
        pass
    raise exc


def _rebuild(error: Dict[str, Any]) -> BaseException:
    """Best-effort reconstruction of an unpicklable exception."""
    try:
        module = __import__(error["module"], fromlist=[error["type"]])
        cls = getattr(module, error["type"])
        if isinstance(cls, type) and issubclass(cls, BaseException):
            return cls(error["message"])
    except Exception:
        pass
    return RemoteShardError(
        "%s.%s: %s" % (error.get("module"), error.get("type"), error.get("message"))
    )
