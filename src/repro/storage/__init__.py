"""Embedded document store.

The paper's ingest workers persist the top-K index in MongoDB for
efficient retrieval at query time (Section 5).  Offline, we substitute
a small embedded document store with the same operational surface:
named collections, document insertion, equality/range queries,
secondary indexes, and JSON persistence to disk.
"""

from repro.storage.docstore import Collection, DocumentStore, DocStoreError

__all__ = ["Collection", "DocumentStore", "DocStoreError"]
