"""Embedded document store, WAL journal, and fault injection.

The paper's ingest workers persist the top-K index in MongoDB for
efficient retrieval at query time (Section 5).  Offline, we substitute
a small embedded document store with the same operational surface:
named collections, document insertion, equality/range queries,
secondary indexes, JSON persistence to disk -- plus the durability
layer live ingest needs: an append-only checksummed ingest journal,
atomic epoch-tagged checkpoints (staged collections swapped on
commit), and a deterministic fault-injection wrapper for chaos drills.
"""

from repro.storage.docstore import Collection, DocumentStore, DocStoreError
from repro.storage.faults import FaultInjected, FaultyStore
from repro.storage.journal import (
    CheckpointWriter,
    IngestJournal,
    JournalCorruption,
    JournalError,
    StaleEpochError,
    committed_checkpoint,
    copy_stream_state,
    fence_stream,
    fenced_streams,
    journaled_streams,
    load_ingest_state,
    reset_stream,
)

__all__ = [
    "copy_stream_state",
    "fence_stream",
    "fenced_streams",
    "Collection",
    "DocumentStore",
    "DocStoreError",
    "FaultInjected",
    "FaultyStore",
    "CheckpointWriter",
    "IngestJournal",
    "JournalCorruption",
    "JournalError",
    "StaleEpochError",
    "committed_checkpoint",
    "journaled_streams",
    "load_ingest_state",
    "reset_stream",
]
