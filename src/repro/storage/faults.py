"""Deterministic fault injection for document-store writes.

:class:`FaultyStore` wraps a :class:`~repro.storage.docstore.DocumentStore`
and injects storage failures at exact, reproducible points:

* **crash after N writes** -- every mutating operation (document
  insert/update/delete, collection drop, staged commit) increments a
  write counter; once the budget is exhausted, further writes raise
  :class:`FaultInjected` *before* touching the store.  Because
  ``insert_many`` decomposes into per-document inserts, a budget that
  runs out mid-batch produces a genuinely *torn* multi-document write.
* **duplicated appends** -- inserts into matching collections (by
  default the ingest journal) are applied twice, simulating an
  at-least-once producer whose acknowledgment was lost and retried.
  Journal readers must deduplicate; see
  :meth:`repro.storage.journal.IngestJournal.records`.

The wrapper is a product feature, not test scaffolding: point a chaos
drill at a live store, give it a write budget, and verify the service
recovers -- the new recovery test suite is simply the first consumer.

The atomicity model matches real storage: a single document insert and
a staged-commit swap are indivisible (a crash lands before or after,
never inside), everything larger can tear.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.storage.docstore import Collection, DocumentStore
from repro.storage.journal import JOURNAL_PREFIX


class FaultInjected(RuntimeError):
    """The injected storage fault: the simulated machine crashed here."""

    def __init__(self, op: str, target: str, write_index: int):
        super().__init__(
            "injected fault at write #%d (%s on %r)" % (write_index, op, target)
        )
        self.op = op
        self.target = target
        self.write_index = write_index


class FaultyCollection:
    """Collection proxy that meters (and can refuse) every write."""

    def __init__(self, store: "FaultyStore", inner: Collection):
        self._store = store
        self._inner = inner

    # -- writes (metered) ---------------------------------------------------
    def insert_one(self, doc: Dict[str, Any]) -> int:
        self._store._spend("insert_one", self._inner.name)
        doc_id = self._inner.insert_one(doc)
        if self._store._duplicates(self._inner.name):
            # the retry lands as its own document (fresh _id), exactly
            # like a re-sent append after a lost acknowledgment
            self._store._spend("insert_one[dup]", self._inner.name)
            self._inner.insert_one({k: v for k, v in doc.items() if k != "_id"})
        return doc_id

    def insert_many(self, docs: Iterable[Dict[str, Any]]) -> List[int]:
        # per-document inserts: an exhausted budget tears the batch
        return [self.insert_one(d) for d in docs]

    def update_one(self, doc_id: int, fields: Dict[str, Any]) -> None:
        self._store._spend("update_one", self._inner.name)
        self._inner.update_one(doc_id, fields)

    def delete(self, doc_id: int) -> None:
        self._store._spend("delete", self._inner.name)
        self._inner.delete(doc_id)

    def delete_many(self, query: Optional[Dict[str, Any]] = None) -> int:
        doomed = [doc["_id"] for doc in self._inner.find(query)]
        for doc_id in doomed:
            self.delete(doc_id)
        return len(doomed)

    # -- reads / maintenance (free) -----------------------------------------
    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str):
        # reads (find, find_one, get, count, ...) and index maintenance
        # pass through unmetered; only mutations above can fault
        return getattr(self._inner, name)


class FaultyStore:
    """A :class:`DocumentStore` wrapper that injects write faults.

    Args:
        inner: the real store every surviving write lands in.
        fail_after_writes: crash budget -- the N+1-th write raises
            :class:`FaultInjected`.  ``None`` disables crashing (useful
            for profiling a workload's write trace first).
        duplicate_collections: name prefixes whose ``insert_one`` is
            applied twice (at-least-once delivery).  Defaults to no
            duplication; pass ``(JOURNAL_PREFIX,)`` to duplicate
            journal appends.

    The write counter and per-write operation log are exposed so a
    crash-point sweep can first profile a clean run, then re-run with
    ``fail_after_writes`` pinned to each observed write index.
    """

    def __init__(
        self,
        inner: DocumentStore,
        fail_after_writes: Optional[int] = None,
        duplicate_collections: Iterable[str] = (),
    ):
        self.inner = inner
        self.fail_after_writes = fail_after_writes
        self.duplicate_prefixes = tuple(duplicate_collections)
        self.writes_applied = 0
        self.faults_injected = 0
        #: (op, collection-or-store target) per applied write, in order
        self.write_log: List[tuple] = []

    # -- fault engine --------------------------------------------------------
    def _spend(self, op: str, target: str) -> None:
        if (
            self.fail_after_writes is not None
            and self.writes_applied >= self.fail_after_writes
        ):
            self.faults_injected += 1
            raise FaultInjected(op, target, self.writes_applied)
        self.writes_applied += 1
        self.write_log.append((op, target))

    def _duplicates(self, name: str) -> bool:
        return any(name.startswith(p) for p in self.duplicate_prefixes)

    @classmethod
    def duplicating_journal(cls, inner: DocumentStore) -> "FaultyStore":
        """A store whose journal appends land twice (lost-ack retries)."""
        return cls(inner, duplicate_collections=(JOURNAL_PREFIX,))

    # -- DocumentStore surface ----------------------------------------------
    def collection(self, name: str) -> FaultyCollection:
        return FaultyCollection(self, self.inner.collection(name))

    def drop(self, name: str) -> None:
        self._spend("drop", name)
        self.inner.drop(name)

    def collection_names(self) -> List[str]:
        return self.inner.collection_names()

    # -- staged commits ------------------------------------------------------
    def stage(self, name: str) -> FaultyCollection:
        # staging happens off to the side; creating the clone is not a
        # durable write, but every mutation of the clone is metered
        return FaultyCollection(self, self.inner.stage(name))

    def drop_staged(self, name: str) -> None:
        self.inner.drop_staged(name)

    def staged_names(self) -> List[str]:
        return self.inner.staged_names()

    def commit_staged(self, names: Optional[Iterable[str]] = None) -> List[str]:
        # one indivisible write: the fault (if due) fires before the
        # swap, so a crash never lands between two collection swaps
        self._spend("commit_staged", ",".join(sorted(names)) if names else "*")
        return self.inner.commit_staged(names)

    def discard_staged(self, names: Optional[Iterable[str]] = None) -> List[str]:
        return self.inner.discard_staged(names)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> None:
        self.inner.save(path)
