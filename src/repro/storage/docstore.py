"""A small embedded document store (MongoDB stand-in).

Supports the subset of operations Focus's index needs:

* ``insert_one`` / ``insert_many`` with auto-assigned ``_id``
* ``find`` / ``find_one`` with equality and ``$in`` / ``$gte`` / ``$lt``
  operators
* hash-based secondary indexes on single fields (``create_index``)
* ``save`` / ``load`` JSON persistence

Documents are plain dicts whose values must be JSON-serializable.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple


class DocStoreError(Exception):
    """Raised for invalid document-store operations."""


#: process-unique tokens naming delta-snapshot baselines (see
#: :meth:`Collection.delta_snapshot`); only ever compared within one
#: process, like fingerprints
_DELTA_TOKENS = itertools.count(1)


def _in_op(value, arg):
    """$in: matches scalar membership, or any-element overlap for
    list-valued (multikey) fields, as MongoDB does."""
    if isinstance(value, list):
        return any(v in arg for v in value)
    return value in arg


_OPERATORS = {
    "$in": _in_op,
    "$gte": lambda value, arg: value is not None and value >= arg,
    "$gt": lambda value, arg: value is not None and value > arg,
    "$lte": lambda value, arg: value is not None and value <= arg,
    "$lt": lambda value, arg: value is not None and value < arg,
    "$ne": lambda value, arg: value != arg,
}


def _matches(doc: Dict[str, Any], query: Dict[str, Any]) -> bool:
    for field, condition in query.items():
        value = doc.get(field)
        if isinstance(condition, dict):
            for op, arg in condition.items():
                try:
                    fn = _OPERATORS[op]
                except KeyError:
                    raise DocStoreError("unsupported operator %r" % op)
                if not fn(value, arg):
                    return False
        else:
            if value != condition:
                return False
    return True


class Collection:
    """A named collection of documents with optional hash indexes."""

    def __init__(self, name: str):
        self.name = name
        self._docs: Dict[int, Dict[str, Any]] = {}
        self._next_id = 0
        self._indexes: Dict[str, Dict[Any, set]] = {}
        #: write counters, exposed so callers (e.g. incremental index
        #: checkpoints) can verify how many documents were touched
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        #: doc ids touched since the last delta snapshot -- the basis of
        #: doc-level mirror deltas (membership in ``_docs`` at snapshot
        #: time tells upsert from remove)
        self._dirty: set = set()
        #: names the baseline the dirty set is relative to; None until
        #: the first snapshot (ships whole)
        self._delta_token: Optional[int] = None
        #: fingerprint-keyed cache of the docs list ``to_json_obj``
        #: returns, so repeated snapshots of an unchanged collection
        #: cost O(1) instead of O(docs)
        self._snapshot: Optional[Tuple[Tuple[int, int, int, int, int], List[Dict[str, Any]]]] = None

    def __len__(self) -> int:
        return len(self._docs)

    # -- index maintenance --------------------------------------------------
    @staticmethod
    def _index_keys(value: Any) -> Iterable[Any]:
        """Keys a value contributes to a hash index (multikey for lists)."""
        if isinstance(value, list):
            return value
        return (value,)

    def _index_add(self, index: Dict[Any, set], value: Any, doc_id: int) -> None:
        for key in self._index_keys(value):
            index.setdefault(key, set()).add(doc_id)

    def _index_remove(self, index: Dict[Any, set], value: Any, doc_id: int) -> None:
        for key in self._index_keys(value):
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del index[key]

    # -- writes -----------------------------------------------------------
    def insert_one(self, doc: Dict[str, Any]) -> int:
        if not isinstance(doc, dict):
            raise DocStoreError("documents must be dicts")
        doc_id = self._next_id
        self._next_id += 1
        stored = dict(doc)
        stored["_id"] = doc_id
        self._docs[doc_id] = stored
        for field, index in self._indexes.items():
            if field in stored:
                self._index_add(index, stored[field], doc_id)
        self.inserts += 1
        self._dirty.add(doc_id)
        return doc_id

    def insert_many(self, docs: Iterable[Dict[str, Any]]) -> List[int]:
        return [self.insert_one(d) for d in docs]

    def delete(self, doc_id: int) -> None:
        doc = self._docs.pop(doc_id, None)
        if doc is None:
            raise DocStoreError("no document with _id=%r" % doc_id)
        for field, index in self._indexes.items():
            if field in doc:
                self._index_remove(index, doc[field], doc_id)
        self.deletes += 1
        self._dirty.add(doc_id)

    def delete_many(self, query: Optional[Dict[str, Any]] = None) -> int:
        """Delete every document matching ``query``; returns the count.

        An empty/None query clears the collection (ids are not reused).
        """
        doomed = [doc["_id"] for doc in self.find(query)]
        for doc_id in doomed:
            self.delete(doc_id)
        return len(doomed)

    def update_one(self, doc_id: int, fields: Dict[str, Any]) -> None:
        """Merge ``fields`` into a document, copy-on-write.

        The stored document dict is never mutated: a merged copy is
        built, the index keys it will contribute are validated (dry
        run), and only then are the indexes and the document slot
        swapped to the new version.  A fault anywhere before the final
        installation leaves both the document and every index exactly
        as they were -- and clones sharing document dicts (staged
        checkpoints) never see a half-applied update.
        """
        doc = self._docs.get(doc_id)
        if doc is None:
            raise DocStoreError("no document with _id=%r" % doc_id)
        if "_id" in fields and fields["_id"] != doc_id:
            raise DocStoreError("_id is immutable")
        updated = dict(doc)
        updated.update(fields)
        updated["_id"] = doc_id
        # dry-run the new index keys: an unhashable value must fault
        # before any stored state moves
        staged_adds = []
        for field, index in self._indexes.items():
            if field in fields:
                for key in self._index_keys(updated[field]):
                    hash(key)
                staged_adds.append((index, updated[field]))
        for field, index in self._indexes.items():
            if field in fields and field in doc:
                self._index_remove(index, doc[field], doc_id)
        for index, value in staged_adds:
            self._index_add(index, value, doc_id)
        self._docs[doc_id] = updated
        self.updates += 1
        self._dirty.add(doc_id)

    # -- indexes ------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Build (or rebuild) a hash index over a single field.

        List-valued fields are multikey-indexed, as in MongoDB: each
        element points back at the document.
        """
        index: Dict[Any, set] = {}
        for doc_id, doc in self._docs.items():
            if field not in doc:
                continue
            value = doc[field]
            if isinstance(value, list):
                for element in value:
                    index.setdefault(element, set()).add(doc_id)
            else:
                index.setdefault(value, set()).add(doc_id)
        self._indexes[field] = index

    def has_index(self, field: str) -> bool:
        return field in self._indexes

    # -- reads -------------------------------------------------------------
    def get(self, doc_id: int) -> Dict[str, Any]:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise DocStoreError("no document with _id=%r" % doc_id)

    def find(self, query: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        query = query or {}
        candidates = self._candidate_ids(query)
        if candidates is None:
            docs = self._docs.values()
        else:
            docs = (self._docs[i] for i in sorted(candidates))
        return [d for d in docs if _matches(d, query)]

    def find_one(self, query: Optional[Dict[str, Any]] = None) -> Optional[Dict[str, Any]]:
        results = self.find(query)
        return results[0] if results else None

    def count(self, query: Optional[Dict[str, Any]] = None) -> int:
        return len(self.find(query))

    def _candidate_ids(self, query: Dict[str, Any]) -> Optional[set]:
        """Use the first applicable equality/$in index to narrow the scan."""
        for field, condition in query.items():
            index = self._indexes.get(field)
            if index is None:
                continue
            if isinstance(condition, dict):
                if "$in" in condition:
                    ids: set = set()
                    for value in condition["$in"]:
                        ids |= index.get(value, set())
                    return ids
                continue
            return set(index.get(condition, set()))
        return None

    # -- cloning -------------------------------------------------------------
    def clone(self) -> "Collection":
        """A structural copy sharing (immutable) document dicts.

        The basis of staged checkpoints: the clone starts with the same
        documents and indexes, but inserts, deletes, and (copy-on-write)
        updates applied to either side never leak to the other.  Cost is
        O(docs + index entries) pointer copies -- no document content is
        duplicated.
        """
        twin = Collection(self.name)
        twin._docs = dict(self._docs)
        twin._next_id = self._next_id
        twin._indexes = {
            field: {key: set(bucket) for key, bucket in index.items()}
            for field, index in self._indexes.items()
        }
        twin.inserts = self.inserts
        twin.updates = self.updates
        twin.deletes = self.deletes
        # a clone continues the original's delta lineage: a staged
        # checkpoint committed over the live name still qualifies for a
        # doc-level delta against the same shipped baseline
        twin._dirty = set(self._dirty)
        twin._delta_token = self._delta_token
        twin._snapshot = self._snapshot
        return twin

    def fingerprint(self) -> Tuple[int, int, int, int, int]:
        """A cheap change detector: ``(docs, next_id, inserts, updates,
        deletes)``.

        The write counters are monotonic, so *any* mutation -- including
        a delete/re-insert pair that restores the document count --
        changes the tuple.  The fabric's worker processes diff these
        fingerprints after every command to decide which collections to
        ship back to the supervisor's mirror; the comparison is only
        ever between fingerprints taken inside one process, so the fact
        that :meth:`from_json_obj` restarts the counters at zero does
        not matter.
        """
        return (
            len(self._docs),
            self._next_id,
            self.inserts,
            self.updates,
            self.deletes,
        )

    # -- doc-level deltas ----------------------------------------------------
    @property
    def delta_token(self) -> Optional[int]:
        """The baseline the dirty set is relative to (None = never
        snapshotted; the next delta ships the collection whole)."""
        return self._delta_token

    def mark_delta_clean(self) -> int:
        """Start a fresh delta baseline (dirty set cleared); returns the
        new baseline token.  Fabric workers call this at startup for
        every collection the supervisor's seed snapshot already holds."""
        self._dirty.clear()
        self._delta_token = next(_DELTA_TOKENS)
        return self._delta_token

    def delta_snapshot(
        self, basis_token: Optional[int] = None
    ) -> Tuple[Dict[str, Any], int]:
        """One shippable change set since ``basis_token``, plus the new
        baseline token.

        When ``basis_token`` matches this collection's current
        :attr:`delta_token` (the caller's mirror was built from that
        exact baseline -- clones carry the token across staged
        commits), the envelope is *doc-level*: only dirty documents
        travel, as upserts (still present) and removes (gone).  Any
        mismatch -- a fresh collection, a ``from_json_obj`` rebuild, a
        wholesale ``drop_staged`` replacement -- falls back to shipping
        the collection whole.  Either way the dirty set resets and a
        new baseline begins.
        """
        if basis_token is not None and basis_token == self._delta_token:
            upsert_ids = sorted(i for i in self._dirty if i in self._docs)
            envelope: Dict[str, Any] = {
                "kind": "cdelta",
                "name": self.name,
                "next_id": self._next_id,
                "indexes": list(self._indexes),
                "upserts": [self._docs[i] for i in upsert_ids],
                "removes": sorted(i for i in self._dirty if i not in self._docs),
            }
        else:
            envelope = {"kind": "cfull", "name": self.name, "coll": self.to_json_obj()}
        return envelope, self.mark_delta_clean()

    def apply_delta(self, envelope: Dict[str, Any]) -> int:
        """Apply a ``"cdelta"`` envelope (mirror side); returns the
        number of documents touched.

        Upserts land in ascending id order and updates replace in
        place, so the mirror's document order matches the producer's
        insertion order exactly -- a restart snapshot built from the
        mirror replays scans in the same order the worker would.
        """
        if envelope.get("kind") != "cdelta" or envelope.get("name") != self.name:
            raise DocStoreError(
                "not a %r delta envelope: %r" % (self.name, envelope.get("kind"))
            )
        for doc_id in envelope["removes"]:
            if doc_id in self._docs:
                self.delete(doc_id)
        for doc in envelope["upserts"]:
            stored = dict(doc)
            doc_id = stored["_id"]
            old = self._docs.get(doc_id)
            if old is not None:
                for field, index in self._indexes.items():
                    if field in old:
                        self._index_remove(index, old[field], doc_id)
                self.updates += 1
            else:
                self.inserts += 1
            self._docs[doc_id] = stored
            for field, index in self._indexes.items():
                if field in stored:
                    self._index_add(index, stored[field], doc_id)
            self._dirty.add(doc_id)
        self._next_id = int(envelope["next_id"])
        for field in envelope.get("indexes", []):
            if field not in self._indexes:
                self.create_index(field)
        return len(envelope["upserts"]) + len(envelope["removes"])

    # -- persistence --------------------------------------------------------
    def to_json_obj(self) -> Dict[str, Any]:
        """The collection as one JSON-serializable object.

        The docs list is cached under the collection's fingerprint:
        snapshotting an unchanged collection (supervisor mirrors are
        re-serialized on every worker respawn) is O(1), and any write
        invalidates the cache because the fingerprint's counters are
        monotonic.  Callers must treat the returned object as frozen.
        """
        fp = self.fingerprint()
        cached = self._snapshot
        if cached is None or cached[0] != fp:
            cached = (fp, list(self._docs.values()))
            self._snapshot = cached
        return {
            "name": self.name,
            "next_id": self._next_id,
            "docs": cached[1],
            "indexes": list(self._indexes),
        }

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "Collection":
        coll = cls(obj["name"])
        coll._next_id = obj["next_id"]
        for doc in obj["docs"]:
            coll._docs[doc["_id"]] = dict(doc)
        for field in obj.get("indexes", []):
            coll.create_index(field)
        return coll


class DocumentStore:
    """A set of named collections, persistable as one JSON file.

    Beyond plain collections, the store offers a *staged commit*
    primitive for atomic multi-collection checkpoints: :meth:`stage`
    clones a collection into a private staging area, writers mutate the
    clones freely, and :meth:`commit_staged` swaps every staged clone
    over its live name in one indivisible step.  A crash anywhere
    before the commit leaves the live collections untouched; staging
    leftovers are garbage, discarded by :meth:`discard_staged`.
    """

    def __init__(self):
        self._collections: Dict[str, Collection] = {}
        self._staged: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def drop(self, name: str) -> None:
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def copy_collection_to(self, name: str, target: "DocumentStore") -> bool:
        """Install a clone of collection ``name`` into ``target``.

        The target's previous collection under that name (if any) is
        replaced wholesale; document ids, hash indexes, and the id
        cursor all carry over, so readers of the copy see exactly the
        documents the source held at copy time.  Later writes on either
        side never leak to the other (:meth:`Collection.clone`).
        Returns False when the source has no such collection (the
        target is left untouched).

        This is the store-to-store primitive under live stream
        migration (``repro.fabric``): a stream's journal, ingest state,
        and index collections are copied between shard stores with it.
        """
        source = self._collections.get(name)
        if source is None:
            return False
        target._collections[name] = source.clone()
        return True

    def replace_collection(self, name: str, collection: Collection) -> None:
        """Install ``collection`` wholesale under ``name``.

        The previous collection (if any) is discarded.  This is the
        apply-side of the fabric's store mirroring: a worker process
        ships whole changed collections back to its supervisor, which
        installs them here so the parent's mirror tracks the worker's
        durable state.
        """
        self._collections[name] = collection

    # -- staged commits ------------------------------------------------------
    def stage(self, name: str) -> Collection:
        """A staged clone of collection ``name`` (created on first call).

        Repeated calls return the same staged collection, so a writer
        can accumulate changes across several operations before one
        atomic :meth:`commit_staged`.
        """
        if name not in self._staged:
            if name in self._collections:
                self._staged[name] = self._collections[name].clone()
            else:
                self._staged[name] = Collection(name)
        return self._staged[name]

    def drop_staged(self, name: str) -> None:
        """Stage a wholesale replacement: the staged clone becomes empty
        (the live collection is untouched until commit)."""
        self._staged[name] = Collection(name)

    def staged_names(self) -> List[str]:
        return sorted(self._staged)

    def commit_staged(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """Atomically swap staged collections over their live names.

        The swap is indivisible: either every named staged collection
        replaces its live counterpart, or (if a name was never staged)
        nothing happens and ``DocStoreError`` is raised.  Fault
        injection (:class:`~repro.storage.faults.FaultyStore`) counts a
        commit as a single write -- a simulated crash lands either
        before the swap (staging discarded, live state intact) or after
        it (checkpoint fully visible), never in between, mirroring an
        atomic rename on a real filesystem.
        """
        wanted = self.staged_names() if names is None else list(names)
        missing = [n for n in wanted if n not in self._staged]
        if missing:
            raise DocStoreError(
                "cannot commit unstaged collection(s): %s" % ", ".join(sorted(missing))
            )
        for name in wanted:
            self._collections[name] = self._staged.pop(name)
        return wanted

    def discard_staged(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """Drop staged clones without committing (crash-recovery cleanup)."""
        wanted = self.staged_names() if names is None else list(names)
        dropped = [n for n in wanted if self._staged.pop(n, None) is not None]
        return dropped

    def to_json_obj(self) -> Dict[str, Any]:
        """The store's whole committed state as one JSON-serializable
        object (staged clones excluded -- staging is private to an
        in-flight checkpoint and never part of a snapshot)."""
        return {
            "collections": [c.to_json_obj() for c in self._collections.values()]
        }

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "DocumentStore":
        store = cls()
        for cobj in obj.get("collections", []):
            store._collections[cobj["name"]] = Collection.from_json_obj(cobj)
        return store

    def save(self, path: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(self.to_json_obj(), f)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "DocumentStore":
        with open(path) as f:
            payload = json.load(f)
        return cls.from_json_obj(payload)
