"""Write-ahead ingest journal and atomic epoch-tagged checkpoints.

The durability layer under live ingest (``repro.core.streaming``):

* :class:`IngestJournal` -- an append-only journal of ingest chunks in
  a document store.  Every record is sequence-numbered and checksummed;
  readers verify integrity (torn/truncated payloads, sequence gaps) and
  deduplicate at-least-once replays, so a producer that retries an
  unacknowledged append cannot double-ingest a chunk.
* :class:`CheckpointWriter` -- an atomic multi-collection checkpoint.
  All checkpoint writes (index delta, ingest state, stream metadata,
  the commit marker itself) land in *staged* clones of the live
  collections and become visible in one indivisible
  :meth:`~repro.storage.docstore.DocumentStore.commit_staged` swap.  A
  crash at any earlier point leaves the previous committed checkpoint
  fully intact.
* Per-stream *epochs*: each committed checkpoint carries a
  monotonically increasing epoch, committed compare-and-swap style.  A
  zombie session (pre-crash survivor) that tries to checkpoint over a
  newer session's commit is rejected with :class:`StaleEpochError`
  instead of silently corrupting the snapshot.

Recovery contract: a stream's durable state is the last committed
checkpoint plus every journal record with a later sequence number.
Because ingest is deterministic, replaying those records through a
restored :class:`~repro.core.streaming.StreamIngestor` reproduces the
uninterrupted in-memory state bit for bit (see ``docs/DURABILITY.md``).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.storage.docstore import Collection, DocStoreError, DocumentStore


class JournalError(DocStoreError):
    """Raised for invalid journal operations."""


class JournalCorruption(JournalError):
    """The journal's on-store bytes fail verification.

    Raised when a record's checksum does not match its payload (torn or
    truncated write), when the sequence numbering has a gap, or when
    two records claim the same sequence number with different contents.
    """


class StaleEpochError(JournalError):
    """A checkpoint commit lost the epoch compare-and-swap.

    A newer session already committed this stream's next epoch; the
    caller's view of the store is stale and its staged writes are
    discarded rather than merged over the newer snapshot.
    """


JOURNAL_PREFIX = "journal:"
STATE_PREFIX = "ingest-state:"
CHECKPOINT_COLLECTION = "checkpoints"

#: the accumulated per-row columns a chunk record carries, with their
#: exact dtypes -- the digest hashes raw array bytes, so serialization
#: round-trips bit-exactly (JSON floats round-trip via repr)
CHUNK_COLUMNS = (
    ("track_id", np.int64),
    ("class_id", np.int64),
    ("time_s", np.float64),
    ("frame_idx", np.int64),
    ("difficulty", np.float64),
    ("appearance_seed", np.int64),
    ("obs_in_track", np.int64),
)


# -- checksums ---------------------------------------------------------------

def payload_digest(payload: Dict[str, Any]) -> str:
    """Checksum of an arbitrary JSON-serializable payload (canonical)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()


def chunk_digest(seq: int, payload: Dict[str, Any]) -> str:
    """Fast checksum of a chunk record: hashes raw column bytes.

    Journal appends sit on the live ingest hot path, so the digest
    avoids a canonical-JSON round trip of every row: column data is
    hashed as fixed-dtype array bytes.  Readers recompute the digest
    from the deserialized lists -- ``np.asarray(list, dtype)`` restores
    the exact bytes, so verification is deterministic.
    """
    h = hashlib.sha1()
    h.update(
        repr(
            (
                int(seq),
                payload["stream"],
                float(payload["fps"]),
                payload.get("watermark_s"),
                int(payload["rows"]),
            )
        ).encode("utf-8")
    )
    columns = payload["columns"]
    for name, dtype in CHUNK_COLUMNS:
        h.update(np.asarray(columns[name], dtype=dtype).tobytes())
    return h.hexdigest()


def _record_digest(seq: int, kind: str, payload: Dict[str, Any]) -> str:
    if kind == "chunk":
        return chunk_digest(seq, payload)
    return payload_digest({"seq": int(seq), "kind": kind, "payload": payload})


# -- chunk (de)serialization -------------------------------------------------

def chunk_to_payload(chunk, watermark_s: Optional[float]) -> Dict[str, Any]:
    """Serialize one observation chunk into a journal-record payload."""
    return {
        "stream": chunk.stream,
        "fps": float(chunk.fps),
        "watermark_s": None if watermark_s is None else float(watermark_s),
        "rows": len(chunk),
        "columns": {
            name: np.asarray(getattr(chunk, name), dtype=dtype).tolist()
            for name, dtype in CHUNK_COLUMNS
        },
    }


def chunk_from_payload(payload: Dict[str, Any]):
    """Rebuild the observation chunk a journal record carries.

    Raises :class:`JournalCorruption` when any column's length
    disagrees with the recorded row count (a truncated payload whose
    checksum was somehow also mangled consistently is still caught by
    the digest; this guard gives a sharper error for the common case).
    """
    from repro.video.synthesis import ObservationTable

    rows = int(payload["rows"])
    columns = {}
    for name, dtype in CHUNK_COLUMNS:
        data = payload["columns"].get(name)
        if data is None or len(data) != rows:
            raise JournalCorruption(
                "chunk payload column %r is truncated (%s of %d rows)"
                % (name, "missing" if data is None else len(data), rows)
            )
        columns[name] = np.asarray(data, dtype=dtype)
    duration = float(columns["time_s"].max()) if rows else 0.0
    if payload.get("watermark_s") is not None:
        duration = max(duration, float(payload["watermark_s"]))
    return ObservationTable(
        payload["stream"],
        float(payload["fps"]),
        duration,
        columns["track_id"],
        columns["class_id"],
        columns["time_s"],
        columns["frame_idx"],
        columns["difficulty"],
        columns["appearance_seed"],
        columns["obs_in_track"],
    )


# -- journal -----------------------------------------------------------------

@dataclass(frozen=True)
class JournalRecord:
    """One verified journal record."""

    seq: int
    kind: str
    payload: Dict[str, Any]


class IngestJournal:
    """Append-only, checksummed journal of one stream's ingest chunks.

    Records live in collection ``journal:<stream>`` of a document
    store.  :meth:`append` is a single document insert (atomic in the
    store's fault model); :meth:`records` returns the verified,
    deduplicated suffix past a given sequence number and raises
    :class:`JournalCorruption` on checksum mismatches or sequence gaps.
    """

    def __init__(
        self,
        store: DocumentStore,
        stream: str,
        metrics: Optional[Any] = None,
    ):
        self.store = store
        self.stream = stream
        #: optional ``repro.obs.metrics.MetricsRegistry`` recording an
        #: append-latency histogram (``journal.append_s``); None keeps
        #: the journal dependency-free for tests and bare callers
        self.metrics = metrics
        self.collection_name = JOURNAL_PREFIX + stream
        #: the next sequence number this writer will assign.  Numbering
        #: must never restart within a lineage: post-checkpoint
        #: compaction can leave the journal *empty*, so a writer
        #: attached at recovery continues from the committed marker's
        #: sequence as well as from any surviving records -- otherwise a
        #: recovered session would journal below the committed cursor
        #: and a second recovery would silently filter its chunks out.
        committed = committed_checkpoint(store, stream)
        committed_seq = committed["journal_seq"] if committed else -1
        self._next_seq = max(self.last_seq(), committed_seq) + 1
        self.appends = 0

    @property
    def collection(self) -> Collection:
        return self.store.collection(self.collection_name)

    # -- writes --------------------------------------------------------------
    def append(self, kind: str, payload: Dict[str, Any]) -> int:
        """Append one record; returns its sequence number.

        The record is checksummed over (seq, kind, payload), so any
        later truncation or mutation of the stored document is
        detectable.  The insert either lands whole or not at all; a
        crash mid-append therefore loses at most the unacknowledged
        record, never a prefix.
        """
        started = time.perf_counter() if self.metrics is not None else 0.0
        seq = self._next_seq
        doc = {
            "seq": seq,
            "kind": kind,
            "payload": payload,
            "checksum": _record_digest(seq, kind, payload),
        }
        self.collection.insert_one(doc)
        self._next_seq = seq + 1
        self.appends += 1
        if self.metrics is not None:
            self.metrics.observe(
                "journal.append_s", time.perf_counter() - started
            )
        return seq

    def append_chunk(self, chunk, watermark_s: Optional[float] = None) -> int:
        """Journal one observation chunk (the WAL step of a push)."""
        return self.append("chunk", chunk_to_payload(chunk, watermark_s))

    def truncate_through(self, seq: int) -> int:
        """Drop records with sequence <= ``seq`` (post-checkpoint
        compaction); returns how many were removed."""
        return self.collection.delete_many({"seq": {"$lte": int(seq)}})

    # -- reads ---------------------------------------------------------------
    def last_seq(self) -> int:
        """Highest stored sequence number, or -1 for an empty journal."""
        seqs = [doc["seq"] for doc in self.collection.find()]
        return max(seqs) if seqs else -1

    def records(self, after: int = -1) -> List[JournalRecord]:
        """Verified records with seq > ``after``, in sequence order.

        Verification per record: the stored checksum must match a
        recomputation over the stored payload.  Across records: exact
        duplicates (same seq, same checksum -- an at-least-once retry
        that landed twice) collapse to one; conflicting duplicates and
        sequence gaps raise :class:`JournalCorruption`.
        """
        by_seq: Dict[int, Dict] = {}
        for doc in self.collection.find():
            seq = int(doc["seq"])
            if seq <= after:
                continue
            expected = doc.get("checksum")
            actual = _record_digest(seq, doc.get("kind", ""), doc.get("payload", {}))
            if expected != actual:
                raise JournalCorruption(
                    "journal %s: record seq=%d fails its checksum "
                    "(torn or truncated write)" % (self.collection_name, seq)
                )
            prior = by_seq.get(seq)
            if prior is not None:
                if prior["checksum"] != expected:
                    raise JournalCorruption(
                        "journal %s: two conflicting records claim seq=%d"
                        % (self.collection_name, seq)
                    )
                continue  # duplicated replay of the same append: idempotent
            by_seq[seq] = doc
        ordered = sorted(by_seq)
        for a, b in zip(ordered, ordered[1:]):
            if b != a + 1:
                raise JournalCorruption(
                    "journal %s: sequence gap between %d and %d "
                    "(lost or truncated records)" % (self.collection_name, a, b)
                )
        return [
            JournalRecord(seq=s, kind=by_seq[s]["kind"], payload=by_seq[s]["payload"])
            for s in ordered
        ]


def backing_store(store) -> DocumentStore:
    """The real store behind a (possibly wrapped) store handle.

    Fault-injection wrappers (``FaultyStore``) expose their wrapped
    store as ``.inner``; identity checks between store handles must
    compare the backing stores, not the wrappers.
    """
    return getattr(store, "inner", store)


def reset_stream(store: DocumentStore, stream: str) -> None:
    """Destroy a stream's durable state (journal, checkpoints, index,
    stream metadata).

    A fresh ingest session under an existing stream name starts a new
    lineage; mixing its journal with a predecessor's records would be
    corruption by construction, so the caller must wipe (or recover)
    explicitly -- nothing is deleted implicitly.  Stream metadata is
    wiped too: a stale previous-lineage ``stream-meta`` document could
    otherwise pair self-consistently with the new lineage's index and
    send ``load_indexes`` to a wrong-but-checksum-valid table.
    """
    store.drop(JOURNAL_PREFIX + stream)
    store.drop(STATE_PREFIX + stream)
    store.drop("clusters:%s" % stream)
    store.collection(CHECKPOINT_COLLECTION).delete_many({"stream": stream})
    store.collection("index-meta").delete_many({"stream": stream})
    store.collection("stream-meta").delete_many({"stream": stream})


def journaled_streams(store: DocumentStore) -> List[str]:
    """Streams with recoverable durable state in ``store``: a journal or
    a committed checkpoint.  Fence tombstones left behind by a stream
    migration (:func:`fence_stream`) are not recoverable state -- the
    stream's durable home is its new shard's store -- so they are
    excluded."""
    names = {
        name[len(JOURNAL_PREFIX):]
        for name in store.collection_names()
        if name.startswith(JOURNAL_PREFIX)
    }
    fenced = set()
    for doc in store.collection(CHECKPOINT_COLLECTION).find():
        if doc.get("fenced"):
            fenced.add(doc["stream"])
        else:
            names.add(doc["stream"])
    # a fence tombstone overrides a journal collection under the same
    # name: a zombie session appending after the fence recreates the
    # collection, but those records belong to the dead lineage
    return sorted(names - fenced)


#: the collections holding one stream's durable state wholesale
#: (shared collections like ``checkpoints`` hold per-stream documents)
_STREAM_COLLECTION_PREFIXES = (JOURNAL_PREFIX, STATE_PREFIX, "clusters:")
_SHARED_STREAM_COLLECTIONS = (CHECKPOINT_COLLECTION, "index-meta", "stream-meta")


def copy_stream_state(
    source: DocumentStore, target: DocumentStore, stream: str
) -> List[str]:
    """Copy one stream's complete durable state between stores.

    Clones the stream's wholesale collections (journal, ingest state,
    index clusters) into ``target`` and re-inserts its documents from
    the shared collections (checkpoint marker, index meta, stream
    meta), replacing whatever ``target`` previously held for the
    stream.  The copy is everything :meth:`StreamIngestor.recover`
    needs: committed checkpoint plus journal suffix.  Returns the
    collection names that were written.

    The source is read-only here -- fencing it against zombie writers
    is a separate step (:func:`fence_stream`); stream migration
    (``repro.fabric.migration``) sequences the two.
    """
    touched: List[str] = []
    for prefix in _STREAM_COLLECTION_PREFIXES:
        name = prefix + stream
        if source.copy_collection_to(name, target):
            touched.append(name)
    for name in _SHARED_STREAM_COLLECTIONS:
        docs = source.collection(name).find({"stream": stream})
        coll = target.collection(name)
        coll.delete_many({"stream": stream})
        for doc in docs:
            clean = dict(doc)
            clean.pop("_id", None)
            coll.insert_one(clean)
        if docs:
            touched.append(name)
    return touched


def fence_stream(
    store: DocumentStore, stream: str, migrated_to: Optional[str] = None
) -> int:
    """Fence a stream's lineage in ``store`` after migrating it away.

    Replaces the stream's checkpoint marker with a *fence tombstone*
    one epoch past the committed one and drops the now-stale journal,
    ingest-state, and index collections.  Any surviving pre-migration
    session still holds the old committed epoch, so its next durable
    checkpoint loses the epoch compare-and-swap and raises
    :class:`StaleEpochError` instead of resurrecting the stream on its
    old shard.  Returns the fence epoch.
    """
    marker = committed_checkpoint(store, stream)
    epoch = (marker["epoch"] if marker else 0) + 1
    journal_seq = marker["journal_seq"] if marker else -1
    reset_stream(store, stream)
    store.collection(CHECKPOINT_COLLECTION).insert_one(
        {
            "stream": stream,
            "epoch": epoch,
            "journal_seq": journal_seq,
            "fenced": True,
            "migrated_to": migrated_to,
        }
    )
    return epoch


def fenced_streams(store: DocumentStore) -> List[str]:
    """Streams whose marker in ``store`` is a migration fence tombstone."""
    return sorted(
        doc["stream"]
        for doc in store.collection(CHECKPOINT_COLLECTION).find()
        if doc.get("fenced")
    )


# -- checkpoint markers ------------------------------------------------------

def committed_checkpoint(store: DocumentStore, stream: str) -> Optional[Dict]:
    """The stream's committed checkpoint marker, or None.

    The marker is the atom of the commit protocol: it lands in the same
    staged swap as the checkpoint's collections, so its ``epoch`` and
    ``journal_seq`` always describe a complete, consistent snapshot.
    """
    return store.collection(CHECKPOINT_COLLECTION).find_one({"stream": stream})


class CheckpointWriter:
    """One stream's atomic checkpoint: staged writes, epoch-CAS commit.

    Duck-types the two store methods the index layer's persistence path
    uses (``collection`` / ``drop``), so
    ``TopKIndex.to_docstore(writer, incremental=True)`` streams its
    delta straight into staging.  :meth:`commit` then validates the
    epoch compare-and-swap and swaps every staged collection -- plus
    the checkpoint marker -- into place as one indivisible operation.

    A writer whose ``expected_epoch`` no longer matches the store's
    committed marker (another session checkpointed in between) raises
    :class:`StaleEpochError` at commit and discards its staging, so a
    crashed-and-recovered stream can never be corrupted by a zombie
    writer from before the crash.
    """

    def __init__(
        self,
        store: DocumentStore,
        stream: str,
        expected_epoch: int,
        journal_seq: int,
    ):
        self.store = store
        self.stream = stream
        self.expected_epoch = int(expected_epoch)
        self.epoch = int(expected_epoch) + 1
        self.journal_seq = int(journal_seq)
        self._staged: set = set()
        self._done = False

    # -- store-view surface (used by index persistence) ----------------------
    def collection(self, name: str) -> Collection:
        if name not in self._staged:
            # a crashed earlier checkpoint may have left a stale staged
            # clone behind; this writer must start from committed state
            self.store.discard_staged([name])
            self._staged.add(name)
        return self.store.stage(name)

    def drop(self, name: str) -> None:
        self._staged.add(name)
        self.store.drop_staged(name)

    # -- protocol ------------------------------------------------------------
    def write_state(self, payload: Dict[str, Any]) -> None:
        """Stage the stream's resumable ingest state (one checksummed doc)."""
        state = self.collection(STATE_PREFIX + self.stream)
        state.delete_many({})
        state.insert_one(
            {
                "stream": self.stream,
                "epoch": self.epoch,
                "journal_seq": self.journal_seq,
                "payload": payload,
                "checksum": payload_digest(payload),
            }
        )

    def commit(self, extra: Optional[Dict[str, Any]] = None) -> int:
        """Atomically publish the checkpoint; returns the new epoch.

        The epoch CAS: the store's committed epoch for this stream must
        still equal ``expected_epoch``.  On success the marker document
        and every staged collection become visible together.
        """
        if self._done:
            raise JournalError("checkpoint writer already committed/aborted")
        committed = committed_checkpoint(self.store, self.stream)
        current = committed["epoch"] if committed else 0
        if current != self.expected_epoch:
            self.abort()
            raise StaleEpochError(
                "stream %r: checkpoint epoch %d expected committed epoch %d "
                "but the store is at %d (a newer session already "
                "checkpointed); discard this session and recover"
                % (self.stream, self.epoch, self.expected_epoch, current)
            )
        marker = self.collection(CHECKPOINT_COLLECTION)
        marker.delete_many({"stream": self.stream})
        doc = {
            "stream": self.stream,
            "epoch": self.epoch,
            "journal_seq": self.journal_seq,
        }
        if extra:
            doc.update(extra)
        marker.insert_one(doc)
        self.store.commit_staged(sorted(self._staged))
        self._done = True
        return self.epoch

    def abort(self) -> None:
        """Discard every staged write (the live store is untouched)."""
        self.store.discard_staged(sorted(self._staged))
        self._staged.clear()
        self._done = True


def load_ingest_state(store: DocumentStore, stream: str) -> Optional[Dict]:
    """The committed resumable-state document for ``stream``, verified.

    Returns None when the stream has no committed durable checkpoint.
    Raises :class:`JournalCorruption` when the state document's
    checksum fails (truncated/mutated store) or when it disagrees with
    the committed marker's epoch -- either way the snapshot cannot be
    trusted and recovery must fall back to a full journal replay or
    fail loudly.
    """
    marker = committed_checkpoint(store, stream)
    if marker is None:
        return None
    if marker.get("fenced"):
        target = marker.get("migrated_to")
        raise StaleEpochError(
            "stream %r was migrated away from this store (fenced at epoch "
            "%d%s); recover it from its new shard's store, or wipe the "
            "fence with repro.storage.journal.reset_stream to start a "
            "fresh lineage here"
            % (stream, marker["epoch"], ", now on %r" % target if target else "")
        )
    doc = store.collection(STATE_PREFIX + stream).find_one({"stream": stream})
    if doc is None:
        raise JournalCorruption(
            "stream %r: committed checkpoint marker (epoch %d) but no "
            "ingest-state document -- the store is missing part of an "
            "atomic commit" % (stream, marker["epoch"])
        )
    if doc["epoch"] != marker["epoch"] or doc["journal_seq"] != marker["journal_seq"]:
        raise JournalCorruption(
            "stream %r: ingest-state document (epoch %d, seq %d) disagrees "
            "with the committed marker (epoch %d, seq %d)"
            % (
                stream,
                doc["epoch"],
                doc["journal_seq"],
                marker["epoch"],
                marker["journal_seq"],
            )
        )
    if payload_digest(doc["payload"]) != doc["checksum"]:
        raise JournalCorruption(
            "stream %r: ingest-state checksum mismatch (truncated or "
            "corrupted state payload)" % stream
        )
    return doc
