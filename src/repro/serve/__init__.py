"""Multi-stream, multi-tenant query serving (Section 5, served).

The paper's deployment queries "some or all" of an organization's
camera streams at once.  This package turns the single-stream query
engine into a service: a planner fans cross-stream queries into
per-shard index lookups, a batch scheduler coalesces concurrent
queries' centroid verification (dedup + LRU verdict cache + fixed-size
GPU batches) onto the cluster's per-device work queues, and the service
facade assembles per-stream answers with accuracy metrics and serving
counters.
"""

from repro.serve.cache import VerificationCache
from repro.serve.frontdoor import (
    AdmissionRejected,
    FrontDoor,
    IngestBackpressure,
    TenantBudget,
)
from repro.serve.planner import QueryPlan, QueryPlanner, QueryRequest, ShardPlan
from repro.serve.scheduler import BatchVerificationScheduler, VerificationReport
from repro.serve.service import (
    COUNTER_KINDS,
    DegradedScope,
    MultiStreamAnswer,
    QueryService,
    StreamSlice,
    merge_counters,
)

__all__ = [
    "AdmissionRejected",
    "COUNTER_KINDS",
    "DegradedScope",
    "FrontDoor",
    "IngestBackpressure",
    "TenantBudget",
    "merge_counters",
    "VerificationCache",
    "QueryPlan",
    "QueryPlanner",
    "QueryRequest",
    "ShardPlan",
    "BatchVerificationScheduler",
    "VerificationReport",
    "MultiStreamAnswer",
    "QueryService",
    "StreamSlice",
]
