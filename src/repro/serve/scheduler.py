"""Batched GT-CNN verification across concurrent queries (QT3 at scale).

The paper verifies cluster centroids with the GT-CNN at query time;
when many queries are in flight (one user querying all cameras, or many
users querying overlapping windows), their candidate centroids are
coalesced before touching a GPU:

1. **dedup** -- a centroid requested by several in-flight shards is
   classified once;
2. **cache** -- a centroid verified by an earlier batch is not
   re-classified at all (:class:`~repro.serve.cache.VerificationCache`);
3. **batch** -- surviving centroids are packed into fixed-size GPU
   batches and dispatched onto the cluster's per-device work queues, in
   priority-then-deadline order (plans carry the front door's QoS
   stamps; see ``docs/QOS.md``) so a bulk sweep's batches never start
   ahead of an interactive query's.

Only the fresh centroids are charged to the GPU ledger, so
``cost_summary()`` reflects the work actually scheduled -- a round that
aborts mid-verdict refunds its unverified remainder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cnn.model import ClassifierModel
from repro.core.costmodel import CostCategory, GPULedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.sched.cluster import DispatchReport, QueryCoordinator
from repro.serve.cache import CacheKey, VerificationCache
from repro.serve.planner import QueryPlan

#: (stream, cluster_id) -- a centroid's identity within one GT model.
CentroidKey = Tuple[str, int]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one coalesced verification round.

    ``verdicts`` maps every requested centroid to the GT-CNN's class;
    ``fresh`` lists the keys that were actually classified this round
    (the rest came from the cache or were duplicates).
    """

    verdicts: Dict[CentroidKey, int]
    fresh: Set[CentroidKey]
    fresh_inferences: int
    cache_hits: int
    duplicates_coalesced: int
    latency_seconds: float
    gpu_seconds: float
    num_batches: int


class BatchVerificationScheduler:
    """Coalesces centroid verification work from concurrent query plans."""

    def __init__(
        self,
        coordinator: QueryCoordinator,
        gt_model: ClassifierModel,
        ledger: GPULedger,
        cache: Optional[VerificationCache] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.coordinator = coordinator
        self.gt_model = gt_model
        self.ledger = ledger
        # explicit None check: an empty VerificationCache is falsy
        self.cache = cache if cache is not None else VerificationCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def _cache_key(self, key: CentroidKey) -> CacheKey:
        stream, cluster_id = key
        return (stream, cluster_id, self.gt_model.name)

    @staticmethod
    def _formation_groups(
        plans: Sequence[QueryPlan],
    ) -> List[Tuple[Tuple[int, float], List[int]]]:
        """Plan indices grouped in batch-formation order.

        Priority class first (lower is more urgent), tighter deadline
        next, arrival order last -- so a low-priority bulk sweep's
        centroids are enqueued on the GPU queues *behind* an
        interactive query's, never ahead of them (``docs/QOS.md``).
        Plans sharing a (priority, deadline) class form one group and
        batch together, exactly like the pre-QoS scheduler.
        """
        def klass(i: int) -> Tuple[int, float]:
            plan = plans[i]
            deadline = (
                plan.deadline_s if plan.deadline_s is not None else float("inf")
            )
            return (plan.priority, deadline)

        order = sorted(range(len(plans)), key=lambda i: (klass(i), i))
        groups: List[Tuple[Tuple[int, float], List[int]]] = []
        for i in order:
            if groups and groups[-1][0] == klass(i):
                groups[-1][1].append(i)
            else:
                groups.append((klass(i), [i]))
        return groups

    def verify(self, plans: Sequence[QueryPlan]) -> VerificationReport:
        """Run one verification round over all shards of all plans.

        Batches form in priority-then-deadline order; ordering decides
        only *when* a plan's fresh centroids reach the GPU queues within
        the round -- verdicts (and therefore answers) are bit-identical
        under any ordering, which is what lets the front door stamp
        priorities without breaking the no-front-door reference.
        """
        groups = self._formation_groups(plans)

        # 1. dedup: formation order, one slot per unique centroid; a
        # centroid wanted by several groups is owned by (and dispatched
        # with) the most urgent one
        unique: Dict[CentroidKey, object] = {}
        duplicates = 0
        group_keys: List[List[CentroidKey]] = []
        for _, indices in groups:
            mine: List[CentroidKey] = []
            for i in indices:
                for shard in plans[i].shards:
                    for key in shard.keys():
                        if key in unique:
                            duplicates += 1
                        else:
                            unique[key] = shard.engine
                            mine.append(key)
            group_keys.append(mine)

        # 2. cache: split into already-verified and fresh (per group)
        verdicts: Dict[CentroidKey, int] = {}
        fresh: List[Tuple[CentroidKey, object]] = []
        group_fresh: List[int] = []
        cache_hits = 0
        for keys in group_keys:
            n_before = len(fresh)
            for key in keys:
                cached = self.cache.get(self._cache_key(key))
                if cached is not None:
                    verdicts[key] = cached
                    cache_hits += 1
                else:
                    fresh.append((key, unique[key]))
            group_fresh.append(len(fresh) - n_before)

        # 3. batch + dispatch fresh work onto the per-GPU queues, one
        # dispatch per formation group so urgent groups' batches start
        # (and finish) first; the simulated GT model answers the
        # centroid's true class, and the ledger charges exactly the
        # centroids scheduled
        reports: List[DispatchReport] = []
        if fresh:
            for ((prio, deadline), indices), n_group in zip(groups, group_fresh):
                if not n_group:
                    continue
                if len(groups) == 1:
                    label = "verify x%d (%d queries)" % (len(fresh), len(plans))
                else:
                    label = "verify x%d p%d%s" % (
                        n_group,
                        prio,
                        "" if deadline == float("inf") else " d%.3gs" % deadline,
                    )
                # the group's trace context (if any member was sampled)
                # brackets its GPU dispatch; the histogram is always on
                ctx = next(
                    (plans[i].trace for i in indices if plans[i].trace is not None),
                    None,
                )
                started = time.perf_counter()
                with span(
                    "scheduler:dispatch", ctx, batch=n_group, priority=prio
                ):
                    reports.append(
                        self.coordinator.dispatch(
                            self.gt_model, n_group, label=label
                        )
                    )
                self.metrics.observe(
                    "scheduler.dispatch_s", time.perf_counter() - started
                )
            self.ledger.record(
                CostCategory.QUERY_GT,
                self.gt_model,
                len(fresh),
                note="batched verification: %d fresh, %d cached, %d deduped"
                % (len(fresh), cache_hits, duplicates),
            )
        # 4. verdicts: on a mid-round failure (cluster retired/migrated
        # between plan and verify) refund the *unverified* remainder of
        # the ledger charge -- completed verdicts stay charged and
        # cached, so accounting and cache agree on exactly the work done
        completed = 0
        try:
            for key, engine in fresh:
                _, cluster_id = key
                gt_class = int(engine.index.cluster(cluster_id).centroid_class)
                verdicts[key] = gt_class
                self.cache.put(self._cache_key(key), gt_class)
                completed += 1
        except Exception:
            remainder = len(fresh) - completed
            if remainder:
                self.ledger.refund(
                    CostCategory.QUERY_GT,
                    self.gt_model,
                    remainder,
                    note="verification round aborted: %d of %d unverified"
                    % (remainder, len(fresh)),
                )
            raise

        return VerificationReport(
            verdicts=verdicts,
            fresh={key for key, _ in fresh},
            fresh_inferences=len(fresh),
            cache_hits=cache_hits,
            duplicates_coalesced=duplicates,
            latency_seconds=(
                max(r.end for r in reports) - min(r.start for r in reports)
                if reports
                else 0.0
            ),
            gpu_seconds=sum(r.gpu_seconds for r in reports),
            num_batches=sum(len(r.scheduled) for r in reports),
        )
