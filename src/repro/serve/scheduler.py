"""Batched GT-CNN verification across concurrent queries (QT3 at scale).

The paper verifies cluster centroids with the GT-CNN at query time;
when many queries are in flight (one user querying all cameras, or many
users querying overlapping windows), their candidate centroids are
coalesced before touching a GPU:

1. **dedup** -- a centroid requested by several in-flight shards is
   classified once;
2. **cache** -- a centroid verified by an earlier batch is not
   re-classified at all (:class:`~repro.serve.cache.VerificationCache`);
3. **batch** -- surviving centroids are packed into fixed-size GPU
   batches and dispatched onto the cluster's per-device work queues.

Only the fresh centroids are charged to the GPU ledger, so
``cost_summary()`` reflects the work actually scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cnn.model import ClassifierModel
from repro.core.costmodel import CostCategory, GPULedger
from repro.sched.cluster import DispatchReport, QueryCoordinator
from repro.serve.cache import CacheKey, VerificationCache
from repro.serve.planner import QueryPlan

#: (stream, cluster_id) -- a centroid's identity within one GT model.
CentroidKey = Tuple[str, int]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one coalesced verification round.

    ``verdicts`` maps every requested centroid to the GT-CNN's class;
    ``fresh`` lists the keys that were actually classified this round
    (the rest came from the cache or were duplicates).
    """

    verdicts: Dict[CentroidKey, int]
    fresh: Set[CentroidKey]
    fresh_inferences: int
    cache_hits: int
    duplicates_coalesced: int
    latency_seconds: float
    gpu_seconds: float
    num_batches: int


class BatchVerificationScheduler:
    """Coalesces centroid verification work from concurrent query plans."""

    def __init__(
        self,
        coordinator: QueryCoordinator,
        gt_model: ClassifierModel,
        ledger: GPULedger,
        cache: Optional[VerificationCache] = None,
    ):
        self.coordinator = coordinator
        self.gt_model = gt_model
        self.ledger = ledger
        # explicit None check: an empty VerificationCache is falsy
        self.cache = cache if cache is not None else VerificationCache()

    def _cache_key(self, key: CentroidKey) -> CacheKey:
        stream, cluster_id = key
        return (stream, cluster_id, self.gt_model.name)

    def verify(self, plans: Sequence[QueryPlan]) -> VerificationReport:
        """Run one verification round over all shards of all plans."""
        # 1. dedup: first-requested order, one slot per unique centroid
        unique: Dict[CentroidKey, object] = {}
        duplicates = 0
        for plan in plans:
            for shard in plan.shards:
                for key in shard.keys():
                    if key in unique:
                        duplicates += 1
                    else:
                        unique[key] = shard.engine

        # 2. cache: split into already-verified and fresh
        verdicts: Dict[CentroidKey, int] = {}
        fresh: List[Tuple[CentroidKey, object]] = []
        cache_hits = 0
        for key, engine in unique.items():
            cached = self.cache.get(self._cache_key(key))
            if cached is not None:
                verdicts[key] = cached
                cache_hits += 1
            else:
                fresh.append((key, engine))

        # 3. batch + dispatch fresh work onto the per-GPU queues; the
        # simulated GT model answers the centroid's true class, and the
        # ledger charges exactly the centroids scheduled
        report: Optional[DispatchReport] = None
        if fresh:
            report = self.coordinator.dispatch(
                self.gt_model,
                len(fresh),
                label="verify x%d (%d queries)" % (len(fresh), len(plans)),
            )
            self.ledger.record(
                CostCategory.QUERY_GT,
                self.gt_model,
                len(fresh),
                note="batched verification: %d fresh, %d cached, %d deduped"
                % (len(fresh), cache_hits, duplicates),
            )
        for key, engine in fresh:
            _, cluster_id = key
            gt_class = int(engine.index.cluster(cluster_id).centroid_class)
            verdicts[key] = gt_class
            self.cache.put(self._cache_key(key), gt_class)

        return VerificationReport(
            verdicts=verdicts,
            fresh={key for key, _ in fresh},
            fresh_inferences=len(fresh),
            cache_hits=cache_hits,
            duplicates_coalesced=duplicates,
            latency_seconds=report.makespan if report else 0.0,
            gpu_seconds=report.gpu_seconds if report else 0.0,
            num_batches=len(report.scheduled) if report else 0,
        )
