"""Cross-stream query planning (service-level QT2).

A cross-stream query ("find every frame with a bus on these cameras
between t0 and t1") fans out into one *shard plan* per stream: the
stream's top-K index is consulted for candidate clusters (cheap, CPU
only), and the per-shard candidate lists are handed to the batch
verification scheduler, which owns all GT-CNN work.  Planning touches
no GPU, so a service can plan many concurrent queries before deciding
how to batch their verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.query import QueryEngine
from repro.video.classes import class_id as class_id_of


#: default QoS class for requests that never met a front door: between
#: interactive (0) and bulk (larger); see ``docs/QOS.md``
DEFAULT_PRIORITY = 1


@dataclass(frozen=True)
class QueryRequest:
    """One user query before planning.

    Attributes:
        clazz: class id or name (e.g. ``"car"``).
        streams: streams to search; None means every ingested stream.
        kx: dynamic query-time K, clamped per shard to that index's K.
        time_range: optional [start, end) seconds restriction.
        priority: QoS class (lower is more urgent); stamped by the
            front door from the tenant's declared budget.  Affects only
            verification *batch formation order*, never the answer.
        deadline_s: optional soft deadline (seconds) used to order
            batch formation within a priority class; not an SLA and
            never alters the answer.
        trace: optional trace context (``repro.obs.trace``) stamped by
            the front door (or a ``query_*`` entry point) when the
            request was sampled.  Excluded from equality -- a traced
            request *is* its untraced twin -- and spans record only ids
            and timestamps, so tracing can never alter the answer.
    """

    clazz: Union[int, str]
    streams: Optional[Sequence[str]] = None
    kx: Optional[int] = None
    time_range: Optional[Tuple[float, float]] = None
    priority: int = DEFAULT_PRIORITY
    deadline_s: Optional[float] = None
    trace: Optional[Dict] = field(default=None, compare=False)


@dataclass
class ShardPlan:
    """One stream's slice of a query: its candidate clusters."""

    stream: str
    engine: QueryEngine
    class_id: int
    token: int
    candidates: List[int]
    kx: Optional[int]
    time_range: Optional[Tuple[float, float]]

    def keys(self) -> List[Tuple[str, int]]:
        """(stream, cluster) verification keys this shard needs."""
        return [(self.stream, cid) for cid in self.candidates]


@dataclass
class QueryPlan:
    """A planned cross-stream query: one shard plan per stream.

    ``priority`` and ``deadline_s`` ride along from the request so the
    batch verification scheduler can form GPU batches in
    priority-then-deadline order (``docs/QOS.md``).
    """

    class_id: int
    shards: List[ShardPlan]
    kx: Optional[int] = None
    time_range: Optional[Tuple[float, float]] = None
    priority: int = DEFAULT_PRIORITY
    deadline_s: Optional[float] = None
    trace: Optional[Dict] = field(default=None, compare=False)

    @property
    def streams(self) -> List[str]:
        return [s.stream for s in self.shards]

    @property
    def num_candidates(self) -> int:
        """Total candidate centroids before dedup/caching."""
        return sum(len(s.candidates) for s in self.shards)


class QueryPlanner:
    """Resolves user queries into per-shard index lookups.

    ``engines`` is a live provider (stream -> QueryEngine) so the
    planner always sees the system's current set of ingested streams,
    including ones restored via ``FocusSystem.load_indexes``.
    """

    def __init__(self, engines: Callable[[], Mapping[str, QueryEngine]]):
        self._engines = engines

    def available_streams(self) -> List[str]:
        return sorted(self._engines())

    def plan(self, request: QueryRequest) -> QueryPlan:
        """Fan one request out into per-stream shard plans."""
        engines = self._engines()
        if request.streams is None:
            streams = sorted(engines)
        else:
            streams = list(request.streams)
            missing = [s for s in streams if s not in engines]
            if missing:
                raise KeyError(
                    "streams not ingested: %s" % ", ".join(sorted(missing))
                )
        if not streams:
            raise ValueError("no streams to query; ingest or load some first")
        cid = (
            class_id_of(request.clazz)
            if isinstance(request.clazz, str)
            else int(request.clazz)
        )
        if request.kx is not None and request.kx < 1:
            raise ValueError("kx must be >= 1")

        shards: List[ShardPlan] = []
        for stream in streams:
            engine = engines[stream]
            # per-shard clamp: indexes tuned per stream may have K
            # smaller than the requested query-time Kx
            kx = request.kx
            if kx is not None:
                kx = min(kx, engine.index.k)
            token, candidates = engine.plan(
                cid, kx=kx, time_range=request.time_range
            )
            shards.append(
                ShardPlan(
                    stream=stream,
                    engine=engine,
                    class_id=cid,
                    token=token,
                    candidates=candidates,
                    kx=kx,
                    time_range=request.time_range,
                )
            )
        return QueryPlan(
            class_id=cid,
            shards=shards,
            kx=request.kx,
            time_range=request.time_range,
            priority=request.priority,
            deadline_s=request.deadline_s,
            trace=request.trace,
        )

    def plan_batch(self, requests: Sequence[QueryRequest]) -> List[QueryPlan]:
        """Plan several concurrent queries (verification is batched later).

        Unknown stream names anywhere in the batch are rejected up
        front with one ``KeyError`` naming *all* missing streams across
        all requests -- not just the first request's, and never from a
        lookup deep inside per-shard planning.
        """
        engines = self._engines()
        missing = sorted(
            {
                s
                for request in requests
                if request.streams is not None
                for s in request.streams
                if s not in engines
            }
        )
        if missing:
            raise KeyError("streams not ingested: %s" % ", ".join(missing))
        return [self.plan(r) for r in requests]
