"""LRU cache of GT-CNN centroid verdicts.

The GT-CNN's answer for a cluster centroid is a pure function of
(stream, cluster, GT model), so once a centroid has been verified for
*any* query its verdict can be reused by every later query that touches
the same cluster -- repeated queries, overlapping classes sharing
clusters through the top-K index, and cross-stream sweeps re-visiting a
shard.  The cache stores the GT-CNN's predicted class (not a boolean),
so a hit serves queries for any class.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.obs.metrics import kind_registry, register_keys

#: (stream, cluster_id, gt_model_name)
CacheKey = Tuple[str, int, str]

#: merge semantics of :meth:`VerificationCache.stats` keys across many
#: caches (one per shard): ``"sum"`` -- monotone totals, add; ``"level"``
#: -- point-in-time amounts that add into a fleet total (resident
#: entries, total capacity); ``"derived"`` -- ratios recomputed from the
#: merged sums, never averaged.  The keys live in the shared kind
#: registry (:mod:`repro.obs.metrics`) under their own namespace --
#: cache stats carry merge kinds serving counters must never have, so
#: they are deliberately *not* part of ``COUNTER_KINDS``.
STAT_KINDS = kind_registry("cache-stats")

register_keys("cache-stats", "sum", "hits", "misses", "evictions", "invalidations")
register_keys("cache-stats", "level", "size", "capacity")
register_keys("cache-stats", "derived", "hit_rate")


class VerificationCache:
    """Bounded LRU map of centroid verification results."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, int]" = OrderedDict()
        #: per-stream view of the resident keys, so stream-scoped
        #: invalidation walks only that stream's entries, not the whole
        #: cache (a production cache holds many streams' verdicts)
        self._by_stream: Dict[str, Set[CacheKey]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[int]:
        """The cached GT class for ``key``, or None; counts hit/miss."""
        try:
            verdict = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return verdict

    def put(self, key: CacheKey, gt_class: int) -> None:
        """Insert (or refresh) a verdict, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = int(gt_class)
        self._by_stream.setdefault(key[0], set()).add(key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._discard_stream_key(evicted)
            self.evictions += 1

    def _discard_stream_key(self, key: CacheKey) -> None:
        keys = self._by_stream.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_stream[key[0]]

    def invalidate_stream(self, stream: str) -> int:
        """Drop every entry of one stream (e.g. after re-ingest).

        O(entries of that stream): the per-stream key set avoids
        scanning the whole cache.
        """
        stale = self._by_stream.pop(stream, set())
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def invalidate_clusters(self, stream: str, cluster_ids: Iterable[int]) -> int:
        """Drop the verdicts of specific clusters of one stream.

        Live ingest uses this: appending to a stream only touches the
        clusters whose centroid changed (in practice, ids being reused
        by a fresh session), so the rest of the stream's verdicts keep
        serving queries mid-ingest.
        """
        wanted = {int(c) for c in cluster_ids}
        keys = self._by_stream.get(stream)
        if not keys or not wanted:
            return 0
        stale = [k for k in keys if k[1] in wanted]
        for key in stale:
            del self._entries[key]
            keys.discard(key)
        if not keys:
            del self._by_stream[stream]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._by_stream.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
            "hit_rate": self.hit_rate,
        }

    @staticmethod
    def merge_stats(per_cache: Iterable[Dict[str, float]]) -> Dict[str, float]:
        """Aggregate many caches' :meth:`stats` into one fleet view.

        Sums and levels add per :data:`STAT_KINDS`; the hit rate is
        recomputed from the merged hit/miss totals (averaging per-cache
        rates would weight an idle shard like a busy one).
        """
        merged = {key: 0.0 for key in STAT_KINDS if STAT_KINDS[key] != "derived"}
        for stats in per_cache:
            for key, value in stats.items():
                kind = STAT_KINDS.get(key)
                if kind is None:
                    raise KeyError(
                        "cache stat %r has no merge semantics; classify it "
                        "in repro.serve.cache.STAT_KINDS" % key
                    )
                if kind in ("sum", "level"):
                    merged[key] += float(value)
        total = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / total if total else 0.0
        return merged
