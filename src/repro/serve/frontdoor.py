"""Admission control in front of the query service (ROADMAP item 2).

The paper's deployment answers low-latency queries on machines that are
simultaneously ingesting live streams; at "millions of users" scale
nothing may drive the GPU work queues at unbounded rates.  The front
door puts a declared-policy layer in front of ``QueryService`` /
``FocusSystem`` / ``FabricRouter``:

* **per-tenant budgets** -- each tenant declares a token-bucket rate
  (sustained QPS + burst), an inflight cap, and a priority class, once;
  enforcement happens at admission, far cheaper than the GPU work it
  gates.  Over-budget requests fail fast with a typed
  :class:`AdmissionRejected` carrying a retry-after hint.
* **ingest backpressure** -- per-shard committed GPU work
  (``busy-gpu-seconds`` from ``GPUCluster.counters``) is sampled on an
  interval and differenced into a leaky-bucket backlog estimate; when a
  shard's backlog crosses the high-water mark, ``append`` /
  ``append_many`` legs are throttled *before* any query is -- the
  paper's ingest-vs-query contention tradeoff, enforced at the door.
* **deadline-aware dispatch** -- admitted queries are stamped with the
  tenant's priority class (and an optional deadline), which the batch
  verification scheduler uses to form GPU batches in
  priority-then-deadline order.

The front door never alters an admitted request's answer: stamping
priority/deadline reorders batch *formation*, not verdicts, and every
other field is forwarded verbatim -- only *which* requests run changes,
never their results (test-enforced bit-identity, both fabric modes).

See ``docs/QOS.md`` for the budget format and the rules in full.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.events import EventLog, default_events
from repro.obs.metrics import MetricsRegistry, register_counters
from repro.obs.trace import Tracer, get_tracer, span
from repro.serve.planner import QueryRequest

__all__ = [
    "ADMISSION_COUNTER_KEYS",
    "AdmissionRejected",
    "FrontDoor",
    "IngestBackpressure",
    "TenantBudget",
]

#: admission outcome totals (sum across doors) -- declared here, the
#: owning module, into the shared kind registry behind ``COUNTER_KINDS``
ADMISSION_COUNTER_KEYS = register_counters(
    "sum",
    "admission-admitted",
    "admission-rejected-rate",
    "admission-rejected-inflight",
    "admission-rejected-backpressure",
) + register_counters("gauge", "admission-inflight")


class AdmissionRejected(RuntimeError):
    """A request the front door refused to run.

    Carries enough structure for a well-behaved client to back off:
    ``tenant``, the ``op`` it tried ("query" / "ingest" / "control"),
    the ``reason`` ("rate" | "inflight" | "backpressure") and
    ``retry_after_s`` -- the earliest moment a retry could be admitted
    (0.0 when it depends on other requests completing).
    """

    def __init__(
        self, tenant: str, op: str, reason: str, retry_after_s: float
    ):
        self.tenant = tenant
        self.op = op
        self.reason = reason
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            "tenant %r %s rejected (%s); retry after %.3fs"
            % (tenant, op, reason, self.retry_after_s)
        )


@dataclass(frozen=True)
class TenantBudget:
    """One tenant's declared budget (see ``docs/QOS.md``).

    ``qps`` is the sustained admitted-request rate (token-bucket refill);
    ``burst`` the bucket size (default: one second of refill, at least
    1); ``max_inflight`` caps concurrently admitted requests;
    ``priority`` is the QoS class stamped onto queries (lower is more
    urgent: 0 interactive, larger is bulkier); ``slo_p99_ms`` is the
    tenant's *declared* p99 target -- reported against by the load
    generator, never enforced at admission.
    """

    qps: float
    burst: Optional[float] = None
    max_inflight: int = 8
    priority: int = 1
    slo_p99_ms: Optional[float] = None

    def __post_init__(self):
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be >= 1 token")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.priority < 0:
            raise ValueError("priority must be >= 0")

    @property
    def bucket_size(self) -> float:
        return self.burst if self.burst is not None else max(1.0, self.qps)


class _TokenBucket:
    """Classic token bucket against an injectable monotonic clock."""

    def __init__(self, qps: float, size: float, now: float):
        self.qps = qps
        self.size = size
        self.tokens = size
        self.last = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last)
        self.tokens = min(self.size, self.tokens + elapsed * self.qps)
        self.last = now

    def peek(self, now: float) -> float:
        """0.0 when a token is available, else seconds until one is."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.qps

    def take(self) -> None:
        """Consume one token (call only after ``peek`` returned 0)."""
        self.tokens -= 1.0


class _TenantState:
    def __init__(self, budget: TenantBudget, now: float):
        self.budget = budget
        self.bucket = _TokenBucket(budget.qps, budget.bucket_size, now)
        self.inflight = 0
        self.admitted = 0
        self.rejected: Dict[str, int] = {
            "rate": 0, "inflight": 0, "backpressure": 0,
        }


class IngestBackpressure:
    """Per-shard GPU backlog estimate driving ingest throttling.

    ``depth_fn`` returns each shard's cumulative committed GPU seconds
    (``busy-gpu-seconds`` -- monotone); the delta since the previous
    sample feeds a per-shard leaky bucket that drains at ``drain_rate``
    GPU-seconds per wall second.  A shard whose bucket level exceeds
    ``high_water_s`` throttles ingest; queries are never throttled by
    this signal (appends are shed *before* queries, per the paper's
    contention tradeoff).  Sampling is rate-limited to
    ``sample_interval_s`` so the admission decision stays far cheaper
    than the work it gates (worker-fabric sampling is a wire round-trip
    per shard).
    """

    def __init__(
        self,
        depth_fn: Callable[[], Mapping[str, float]],
        high_water_s: float = 30.0,
        drain_rate: float = 1.0,
        sample_interval_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        if high_water_s <= 0:
            raise ValueError("high_water_s must be positive")
        if drain_rate <= 0:
            raise ValueError("drain_rate must be positive")
        self.depth_fn = depth_fn
        self.high_water_s = high_water_s
        self.drain_rate = drain_rate
        self.sample_interval_s = sample_interval_s
        self.clock = clock
        self._levels: Dict[str, float] = {}
        self._committed: Dict[str, float] = {}
        self._last_sample: Optional[float] = None
        self._last_drain: Optional[float] = None
        # baseline now: committed GPU history predating the door is not
        # backlog -- only deltas observed from here on count against the
        # high-water mark
        self._observe(self.clock())

    def _observe(self, now: float) -> None:
        if (
            self._last_sample is not None
            and now - self._last_sample < self.sample_interval_s
        ):
            return
        self._last_sample = now
        for shard, committed in self.depth_fn().items():
            committed = float(committed)
            previous = self._committed.get(shard)
            if previous is not None:
                self._levels[shard] = (
                    self._levels.get(shard, 0.0) + max(0.0, committed - previous)
                )
            else:
                self._levels.setdefault(shard, 0.0)
            self._committed[shard] = committed

    def _drain(self, now: float) -> None:
        if self._last_drain is not None:
            drained = max(0.0, now - self._last_drain) * self.drain_rate
            for shard in self._levels:
                self._levels[shard] = max(0.0, self._levels[shard] - drained)
        self._last_drain = now

    def levels(self) -> Dict[str, float]:
        """Current per-shard backlog estimate (GPU seconds)."""
        now = self.clock()
        self._observe(now)
        self._drain(now)
        return dict(self._levels)

    def check(self) -> Tuple[bool, float]:
        """(throttle ingest?, retry-after seconds)."""
        levels = self.levels()
        worst = max(levels.values(), default=0.0)
        if worst <= self.high_water_s:
            return False, 0.0
        return True, (worst - self.high_water_s) / self.drain_rate


def _default_depth_fn(
    service: Any,
) -> Optional[Callable[[], Mapping[str, float]]]:
    """Infer the per-shard committed-GPU-seconds sampler for a service.

    A ``FabricRouter`` exposes :meth:`~repro.fabric.router.FabricRouter.
    gpu_depths`; a ``FocusSystem`` has one local ``cluster``.  Anything
    else (e.g. a bare ``QueryService``) has no ingest surface to
    protect, so backpressure is disabled.
    """
    if hasattr(service, "gpu_depths"):
        return service.gpu_depths
    cluster = getattr(service, "cluster", None)
    if cluster is not None and hasattr(cluster, "counters"):
        return lambda: {"local": cluster.counters()["busy-gpu-seconds"]}
    return None


class FrontDoor:
    """Admission control wrapping a query/ingest service.

    ``service`` is duck-typed: anything with the ``QueryService``
    surface (``query_batch``; optionally ``query_all``, ``query``,
    ``append``, ``append_many``, ``open_stream``) -- a ``FocusSystem``,
    a ``FabricRouter`` over either fabric mode, or a bare
    ``QueryService``.  Admitted calls forward verbatim (queries gain
    only the tenant's priority stamp and optional deadline), so answers
    are bit-identical to a no-front-door run.

    ``tenants`` maps tenant name to :class:`TenantBudget`; requests
    from unknown tenants are refused with ``KeyError`` unless a
    ``default_budget`` is given.  ``clock`` is injectable for
    deterministic tests.  ``backpressure`` defaults to an
    :class:`IngestBackpressure` sampling the service's per-shard GPU
    counters; pass your own to tune the high-water mark, or ``False``
    to disable ingest throttling entirely.
    """

    def __init__(
        self,
        service: Any,
        tenants: Mapping[str, TenantBudget],
        default_budget: Optional[TenantBudget] = None,
        clock: Callable[[], float] = time.monotonic,
        backpressure: Union[IngestBackpressure, None, bool] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.service = service
        self.clock = clock
        self.default_budget = default_budget
        #: per-door registry: admitted-op wall-latency histograms
        #: (``frontdoor.query_s`` / ``frontdoor.ingest_s`` /
        #: ``frontdoor.control_s``) feeding ``metrics_snapshot``
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events = events
        self._tracer = tracer
        self._tenants: Dict[str, _TenantState] = {}
        for name, budget in tenants.items():
            self._tenants[name] = _TenantState(budget, clock())
        if backpressure is None:
            depth_fn = _default_depth_fn(service)
            backpressure = (
                IngestBackpressure(depth_fn, clock=clock)
                if depth_fn is not None
                else False
            )
        self.backpressure: Optional[IngestBackpressure] = (
            backpressure if backpressure is not False else None
        )

    @property
    def events(self) -> EventLog:
        """The lifecycle event log (process-wide default unless set)."""
        return self._events if self._events is not None else default_events()

    @property
    def tracer(self) -> Tracer:
        """The trace sampler (process-wide default unless set)."""
        return self._tracer if self._tracer is not None else get_tracer()

    # -- admission ---------------------------------------------------------
    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            if self.default_budget is None:
                raise KeyError(
                    "unknown tenant %r (declare a budget or pass "
                    "default_budget)" % tenant
                )
            state = _TenantState(self.default_budget, self.clock())
            self._tenants[tenant] = state
        return state

    def _admit(self, tenant: str, op: str) -> _TenantState:
        """Admit or raise; on admission the tenant's inflight slot and
        token are consumed (release the slot via ``_release``).

        Checks are ordered cheapest-first and nothing is consumed until
        every check passes, so a rejected request charges zero cost
        anywhere -- no token, no inflight slot, no ledger or GPU work.
        """
        state = self._state(tenant)
        now = self.clock()
        retry_after = state.bucket.peek(now)
        if retry_after > 0.0:
            state.rejected["rate"] += 1
            self._reject(tenant, op, "rate", retry_after)
        if state.inflight >= state.budget.max_inflight:
            state.rejected["inflight"] += 1
            # no schedule to predict: retry when an inflight completes
            self._reject(tenant, op, "inflight", 0.0)
        if op == "ingest" and self.backpressure is not None:
            throttled, retry_after = self.backpressure.check()
            if throttled:
                state.rejected["backpressure"] += 1
                self._reject(tenant, op, "backpressure", retry_after)
        state.bucket.take()
        state.inflight += 1
        state.admitted += 1
        return state

    def _reject(
        self, tenant: str, op: str, reason: str, retry_after_s: float
    ) -> None:
        self.events.emit(
            "admission.rejected",
            tenant=tenant,
            op=op,
            reason=reason,
            retry_after_s=round(retry_after_s, 6),
        )
        raise AdmissionRejected(tenant, op, reason, retry_after_s)

    @staticmethod
    def _release(state: _TenantState) -> None:
        state.inflight -= 1

    def _stamp(
        self, request: QueryRequest, budget: TenantBudget,
        deadline_s: Optional[float],
        trace: Optional[Dict[str, Any]] = None,
    ) -> QueryRequest:
        """Stamp the tenant's QoS class onto an admitted query request.

        Only ``priority``, ``deadline_s``, and (when the request was
        sampled) the ``trace`` context change -- fields that reorder
        verification batch formation or record timestamps but can never
        alter a verdict -- so the admitted answer stays bit-identical
        to a no-front-door run of the same request.
        """
        return replace(
            request,
            priority=budget.priority,
            deadline_s=(
                request.deadline_s if request.deadline_s is not None else deadline_s
            ),
            trace=request.trace if request.trace is not None else trace,
        )

    # -- the service surface, gated ----------------------------------------
    def query_batch(
        self,
        tenant: str,
        requests: Sequence[QueryRequest],
        deadline_s: Optional[float] = None,
        **kwargs: Any,
    ) -> List[Any]:
        state = self._admit(tenant, "query")
        started = time.perf_counter()
        ctx = self.tracer.sample()
        try:
            with span(
                "frontdoor:query", ctx, tenant=tenant, n=len(requests)
            ) as child:
                stamped = [
                    self._stamp(r, state.budget, deadline_s, trace=child)
                    for r in requests
                ]
                return self.service.query_batch(stamped, **kwargs)
        finally:
            self._release(state)
            self.metrics.observe(
                "frontdoor.query_s", time.perf_counter() - started
            )

    def query_all(
        self,
        tenant: str,
        clazz: Union[int, str],
        streams: Optional[Sequence[str]] = None,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
        deadline_s: Optional[float] = None,
        **kwargs: Any,
    ) -> Any:
        request = QueryRequest(
            clazz=clazz, streams=streams, kx=kx, time_range=time_range
        )
        return self.query_batch(
            tenant, [request], deadline_s=deadline_s, **kwargs
        )[0]

    def append(
        self, tenant: str, stream: str, chunk: Any, **kwargs: Any
    ) -> Any:
        state = self._admit(tenant, "ingest")
        started = time.perf_counter()
        ctx = self.tracer.sample()
        try:
            with span("frontdoor:ingest", ctx, tenant=tenant, stream=stream):
                return self.service.append(stream, chunk, **kwargs)
        finally:
            self._release(state)
            self.metrics.observe(
                "frontdoor.ingest_s", time.perf_counter() - started
            )

    def append_many(
        self, tenant: str, chunks: Sequence[Tuple[str, Any]], **kwargs: Any
    ) -> Any:
        state = self._admit(tenant, "ingest")
        started = time.perf_counter()
        ctx = self.tracer.sample()
        try:
            with span("frontdoor:ingest", ctx, tenant=tenant, n=len(chunks)):
                return self.service.append_many(chunks, **kwargs)
        finally:
            self._release(state)
            self.metrics.observe(
                "frontdoor.ingest_s", time.perf_counter() - started
            )

    def open_stream(self, tenant: str, stream: str, **kwargs: Any) -> Any:
        state = self._admit(tenant, "control")
        started = time.perf_counter()
        try:
            return self.service.open_stream(stream, **kwargs)
        finally:
            self._release(state)
            self.metrics.observe(
                "frontdoor.control_s", time.perf_counter() - started
            )

    # -- observability -----------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Admission totals, classified in ``COUNTER_KINDS`` like every
        serving counter (``admission-inflight`` is a gauge)."""
        admitted = rejected_rate = rejected_inflight = rejected_bp = 0
        inflight = 0
        for state in self._tenants.values():
            admitted += state.admitted
            rejected_rate += state.rejected["rate"]
            rejected_inflight += state.rejected["inflight"]
            rejected_bp += state.rejected["backpressure"]
            inflight += state.inflight
        return {
            "admission-admitted": float(admitted),
            "admission-rejected-rate": float(rejected_rate),
            "admission-rejected-inflight": float(rejected_inflight),
            "admission-rejected-backpressure": float(rejected_bp),
            "admission-inflight": float(inflight),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """This door's registry snapshot (admitted-op latency
        histograms in their mergeable wire encoding)."""
        return self.metrics.snapshot()

    def tenant_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant admission outcomes against the declared budget
        (the load generator's SLO report reads from this)."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, state in sorted(self._tenants.items()):
            out[name] = {
                "qps_budget": state.budget.qps,
                "max_inflight": state.budget.max_inflight,
                "priority": state.budget.priority,
                "slo_p99_ms": state.budget.slo_p99_ms,
                "admitted": state.admitted,
                "rejected": dict(state.rejected),
                "inflight": state.inflight,
            }
        return out
