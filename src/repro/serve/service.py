"""The multi-stream query service (Section 5 deployment, served).

Ties the serving layers together: the planner fans each query out into
per-stream shard plans, the batch scheduler coalesces all in-flight
shards' centroids into deduplicated, cached, GPU-batched verification
work, and the service assembles per-stream answers with accuracy
metrics.  ``query_batch`` is the multi-tenant entry point -- every
request in the batch shares one verification round, so concurrent
queries over overlapping video pay for the GT-CNN once.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.cnn.model import ClassifierModel
from repro.core.costmodel import GPULedger
from repro.core.metrics import SegmentMetrics, segment_metrics_in_range
from repro.core.query import QueryEngine, QueryResult
from repro.obs.metrics import MetricsRegistry, counter_kinds, register_counters
from repro.obs.trace import get_tracer, span
from repro.sched.cluster import QueryCoordinator
from repro.serve.cache import VerificationCache
from repro.serve.planner import QueryPlan, QueryPlanner, QueryRequest
from repro.serve.scheduler import BatchVerificationScheduler, VerificationReport
from repro.storage.docstore import DocumentStore
from repro.storage.journal import committed_checkpoint
from repro.video.classes import class_name


#: merge semantics of :meth:`QueryService.counters` keys when values
#: from many nodes (shards) are aggregated into one fleet view:
#: ``"sum"`` marks a monotone total that adds across nodes;
#: ``"gauge"`` marks a point-in-time level that is only meaningful per
#: node and must be reported per shard (or recomputed), never summed.
#: Every key ``counters()`` returns MUST be classified here -- the
#: fabric's aggregation (``repro.fabric.router``) and the serve tests
#: enforce the invariant, so an unclassified counter cannot silently
#: get summed (or dropped) by a multi-shard merge.
#:
#: This is the *live* kind registry from :mod:`repro.obs.metrics`
#: (``kind_registry("counters")``): each key is declared exactly once,
#: at the module that owns it -- the serve keys below, the data-plane
#: wire keys and fault-tolerance keys in :mod:`repro.fabric.protocol`
#: (``WIRE_COUNTER_KEYS`` / ``FAULT_COUNTER_KEYS``), the admission
#: keys in :mod:`repro.serve.frontdoor`, the GPU-ledger categories in
#: :mod:`repro.core.costmodel`, and the WAL totals in
#: :mod:`repro.fabric.shard` -- and appears here the moment its owning
#: module imports.
COUNTER_KINDS: Dict[str, str] = counter_kinds()

register_counters(
    "sum",
    "verification-cache-hits",
    "verification-cache-misses",
    "verification-cache-invalidations",
    "queries-served",
)


def merge_counters(per_node: Sequence[Mapping[str, float]]) -> Dict[str, float]:
    """Merge many nodes' ``counters()`` dicts into one fleet total.

    ``"sum"``-classified keys add across nodes; ``"gauge"`` keys are
    skipped (a fleet-level gauge is meaningless -- read them from the
    per-node breakdown instead).  Unclassified keys raise ``KeyError``
    so a new counter cannot be aggregated with unstated semantics.
    """
    merged: Dict[str, float] = {}
    for counters in per_node:
        for key, value in counters.items():
            kind = COUNTER_KINDS.get(key)
            if kind is None:
                raise KeyError(
                    "counter %r has no merge semantics; classify it in "
                    "repro.serve.service.COUNTER_KINDS" % key
                )
            if kind == "sum":
                merged[key] = merged.get(key, 0.0) + float(value)
    return merged


@dataclass(frozen=True)
class StreamCheckpoint:
    """Outcome of one stream's slot in a multi-stream checkpoint round.

    ``epoch`` is the committed per-stream epoch for durable sessions
    (``None`` for legacy in-place checkpoints).  ``error`` is set only
    in non-strict rounds, for streams whose checkpoint attempt raised.
    A failure can land *after* the atomic commit (e.g. during journal
    compaction), so an errored outcome still reports the store's
    actual committed epoch: ``epoch`` is the authoritative answer to
    "did this round's snapshot land", ``committed`` to "does the
    stream's durable state reflect this round".
    """

    stream: str
    epoch: Optional[int]
    durable: bool
    error: Optional[str] = None
    #: whether this round's snapshot is the store's committed state
    #: (True for clean commits and for post-commit failures alike)
    landed: bool = True

    @property
    def committed(self) -> bool:
        return self.landed


@dataclass
class StreamSlice:
    """One stream's portion of a cross-stream answer."""

    stream: str
    result: QueryResult
    metrics: Optional[SegmentMetrics]

    @property
    def frames(self) -> np.ndarray:
        return self.result.returned_frames

    @property
    def precision(self) -> float:
        return self.metrics.precision if self.metrics else float("nan")

    @property
    def recall(self) -> float:
        return self.metrics.recall if self.metrics else float("nan")


@dataclass(frozen=True)
class DegradedScope:
    """What a partial answer is missing (see ``docs/RESILIENCE.md``).

    Attached to :class:`MultiStreamAnswer` when a fabric router ran
    with ``allow_partial=True`` and some shards stayed down through the
    retry budget: ``shards`` names exactly the lost shards and
    ``streams`` the requested streams that lived on them -- their
    slices are absent, every surviving slice is still bit-identical to
    the strict answer's.  A ``None`` marker means the answer is whole.
    """

    shards: Tuple[str, ...]
    streams: Tuple[str, ...]


@dataclass
class MultiStreamAnswer:
    """A cross-stream query answer with serving statistics attached.

    ``gt_inferences`` counts the GT-CNN classifications *this* query
    contributed to its verification round -- candidates served from the
    cache or coalesced with other in-flight queries cost nothing.

    ``cache_hits`` and ``duplicates_coalesced`` are *round-level*
    statistics: when several requests are served by one ``query_batch``
    round, every answer of that round reports the same values (a cached
    or deduplicated centroid benefits all queries that asked for it, so
    per-query attribution would be arbitrary).  Do not sum them across
    a batch.
    """

    class_id: int
    class_name: str
    slices: Dict[str, StreamSlice]
    latency_seconds: float
    gt_inferences: int
    candidates: int
    cache_hits: int
    duplicates_coalesced: int
    #: set only by a fabric router's ``allow_partial=True`` path when
    #: shards stayed down: names what is missing; None -> whole answer
    degraded: Optional[DegradedScope] = None

    @property
    def is_degraded(self) -> bool:
        return self.degraded is not None

    @property
    def streams(self) -> List[str]:
        return sorted(self.slices)

    @property
    def total_frames(self) -> int:
        return sum(len(s.frames) for s in self.slices.values())

    def frames_by_stream(self) -> Dict[str, np.ndarray]:
        return {name: s.frames for name, s in self.slices.items()}

    @property
    def precision(self) -> float:
        return self._aggregate(lambda m: m.precision, lambda m: m.returned_segments)

    @property
    def recall(self) -> float:
        return self._aggregate(lambda m: m.recall, lambda m: m.true_segments)

    def _aggregate(self, value_fn, weight_fn) -> float:
        scored = [s.metrics for s in self.slices.values() if s.metrics is not None]
        if not scored:
            return float("nan")
        # weight by evidence (true/returned segments); streams where the
        # class is absent report a vacuous 1.0 and must not dilute the
        # aggregate, so zero-weight metrics are excluded -- unless every
        # stream is evidence-free, in which case the answer is vacuous
        # everywhere and the plain mean (1.0) is the honest value
        weights = [weight_fn(m) for m in scored]
        total = sum(weights)
        if total == 0:
            return sum(value_fn(m) for m in scored) / len(scored)
        return sum(value_fn(m) * w for m, w in zip(scored, weights)) / total


class QueryService:
    """Multi-tenant serving facade over a set of per-stream engines."""

    def __init__(
        self,
        engines: Callable[[], Mapping[str, QueryEngine]],
        gt_model: ClassifierModel,
        coordinator: QueryCoordinator,
        ledger: GPULedger,
        cache_capacity: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.planner = QueryPlanner(engines)
        self.cache = VerificationCache(cache_capacity)
        self.scheduler = BatchVerificationScheduler(
            coordinator, gt_model, ledger, cache=self.cache,
            metrics=self.metrics,
        )
        self.gt_model = gt_model
        self.queries_served = 0
        #: whether this service is a trace *entry point* -- True for a
        #: standalone ``FocusSystem`` (walk-in queries sample here), set
        #: False by ``ShardNode``, whose router/front door owns sampling
        #: (a scatter leg must never start its own root trace)
        self.trace_walkins = True

    # -- serving -----------------------------------------------------------
    def query_all(
        self,
        clazz: Union[int, str],
        streams: Optional[Sequence[str]] = None,
        kx: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> MultiStreamAnswer:
        """Answer one class query across many streams."""
        request = QueryRequest(
            clazz=clazz, streams=streams, kx=kx, time_range=time_range
        )
        return self.query_batch([request])[0]

    def query_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[MultiStreamAnswer]:
        """Serve concurrent queries through one verification round.

        All requests' candidate centroids are deduplicated and batched
        together before any GT-CNN work is scheduled, so overlapping
        queries share cost the way the paper's idle-worker
        parallelization shares GPUs.
        """
        if not requests:
            return []
        # walk-in sampling: a batch that never met a front door or
        # router can still be traced; a scatter leg's sub-requests
        # either already carry their root's context or were left
        # unsampled by it (trace_walkins is False on shard services)
        if self.trace_walkins and all(r.trace is None for r in requests):
            ctx = get_tracer().sample()
            if ctx is not None:
                requests = [replace(r, trace=ctx) for r in requests]
        batch_ctx = next((r.trace for r in requests if r.trace is not None), None)
        with span("service:query_batch", batch_ctx, n=len(requests)) as child:
            if child is not None:
                requests = [
                    replace(r, trace=child) if r.trace is not None else r
                    for r in requests
                ]
            plans = self.planner.plan_batch(requests)
            report = self.scheduler.verify(plans)
            # fresh verifications are attributed to the first query (and
            # shard) that requested each centroid, so per-query
            # gt_inferences sum to the round's fresh total
            charged: set = set()
            answers = [self._assemble(plan, report, charged) for plan in plans]
        self.queries_served += len(requests)
        return answers

    def _assemble(
        self, plan: QueryPlan, report: VerificationReport, charged: set
    ) -> MultiStreamAnswer:
        """QT4 per shard, with verdicts from the shared round."""
        slices: Dict[str, StreamSlice] = {}
        per_inference = self.gt_model.cost_seconds(1)
        plan_fresh = 0
        for shard in plan.shards:
            matched = [
                cid
                for cid in shard.candidates
                if report.verdicts[(shard.stream, cid)] == plan.class_id
            ]
            rows, frames = shard.engine.collect(matched, time_range=shard.time_range)
            # attribute each fresh verification to the first shard (in
            # plan order) that requested it, so per-stream costs sum to
            # the round total
            shard_fresh = [
                k for k in shard.keys() if k in report.fresh and k not in charged
            ]
            charged.update(shard_fresh)
            plan_fresh += len(shard_fresh)
            result = QueryResult(
                class_id=plan.class_id,
                token=shard.token,
                candidate_clusters=shard.candidates,
                matched_clusters=matched,
                returned_rows=rows,
                returned_frames=frames,
                gt_inferences=len(shard_fresh),
                gpu_seconds=len(shard_fresh) * per_inference,
            )
            table = shard.engine.table
            metrics = (
                segment_metrics_in_range(
                    table, plan.class_id, rows, time_range=shard.time_range
                )
                if table is not None
                else None
            )
            slices[shard.stream] = StreamSlice(
                stream=shard.stream, result=result, metrics=metrics
            )
        return MultiStreamAnswer(
            class_id=plan.class_id,
            class_name=class_name(plan.class_id) if plan.class_id >= 0 else "OTHER",
            slices=slices,
            latency_seconds=report.latency_seconds,
            gt_inferences=plan_fresh,
            candidates=plan.num_candidates,
            cache_hits=report.cache_hits,
            duplicates_coalesced=report.duplicates_coalesced,
        )

    # -- durability ---------------------------------------------------------
    def checkpoint_streams(
        self,
        store: DocumentStore,
        handles: Mapping[str, Any],
        streams: Optional[Sequence[str]] = None,
        meta_docs: Optional[Mapping[str, Dict]] = None,
        strict: bool = True,
    ) -> List["StreamCheckpoint"]:
        """Checkpoint many streams, one independent epoch per stream.

        Each stream's checkpoint is its own atomic unit: a durable live
        session commits through the staged epoch-tagged protocol
        (:meth:`~repro.core.streaming.StreamIngestor.checkpoint`),
        everything else takes the legacy in-place index delta.  Because
        staging and the commit marker are per stream, a crash -- or an
        injected fault -- while checkpointing stream A can never leave
        sibling B's committed snapshot half-written: B either committed
        its own epoch earlier in the loop or still stands at its
        previous one.

        ``strict=True`` (default) re-raises the first failure after
        discarding its staging; ``strict=False`` records the failure in
        the returned report and continues with the remaining siblings
        (the chaos-drill mode).
        """
        wanted = sorted(handles) if streams is None else list(streams)
        outcomes: List[StreamCheckpoint] = []
        for name in wanted:
            handle = handles[name]
            meta = dict(meta_docs[name]) if meta_docs and name in meta_docs else None
            ingestor = getattr(handle, "ingestor", None)
            durable = ingestor is not None and ingestor.journal is not None
            epoch_before = ingestor.committed_epoch if durable else None
            started = _time.perf_counter()
            try:
                if durable:
                    epoch = ingestor.checkpoint(store, stream_meta=meta)
                else:
                    handle.index.to_docstore(store, incremental=True)
                    if meta is not None:
                        coll = store.collection("stream-meta")
                        coll.delete_many({"stream": name})
                        coll.insert_one(meta)
                    epoch = None
                outcomes.append(
                    StreamCheckpoint(stream=name, epoch=epoch, durable=durable)
                )
                self.metrics.observe(
                    "checkpoint.commit_s", _time.perf_counter() - started
                )
            except Exception as exc:
                if strict:
                    raise
                # the failed stream's staging is garbage; drop it so the
                # next sibling stages from clean committed state
                store.discard_staged()
                # a failure can land *after* the atomic commit (journal
                # compaction): report the store's actual committed epoch
                # so operators and retry logic key off the truth
                marker = committed_checkpoint(store, name) if durable else None
                epoch_now = marker["epoch"] if marker else None
                landed = durable and ingestor.committed_epoch > epoch_before
                outcomes.append(
                    StreamCheckpoint(
                        stream=name,
                        epoch=epoch_now,
                        durable=durable,
                        error=str(exc),
                        landed=landed,
                    )
                )
        return outcomes

    # -- introspection -----------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        return self.cache.stats()

    def counters(self) -> Dict[str, float]:
        """Serving counters merged into ``FocusSystem.cost_summary()``.

        Every key is classified in :data:`COUNTER_KINDS` (summable
        total vs per-node gauge) so multi-shard aggregation
        (:func:`merge_counters`) has stated semantics for each value.
        """
        return {
            "verification-cache-hits": float(self.cache.hits),
            "verification-cache-misses": float(self.cache.misses),
            "verification-cache-invalidations": float(self.cache.invalidations),
            "queries-served": float(self.queries_served),
        }
