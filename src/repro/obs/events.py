"""Bounded structured event log for fabric lifecycle forensics.

Fault *counters* (PR 8) say how often something went wrong; the event
log says **what happened, in order** -- the trail a human replays after
a watchdog respawn.  Supervisor, watchdog, router, migration, and the
front door emit here: worker spawn/condemn/respawn, deadline expiry,
breaker trip/re-arm, migration phases, backpressure rejections.

Every event carries a monotonic timestamp (``t_mono_s``, for intervals
within one process), a wall timestamp (``t_wall_s``, for lining up
against external logs), and -- when in flight -- the shard id and the
request's correlation/trace id.  The log is a bounded in-memory ring
(oldest events drop first) with an optional always-appending JSONL
sink for post-mortem capture.

Components take an ``events`` parameter defaulting to the process-wide
:func:`default_events` log, so tests can install an isolated log while
production code shares one trail.

This module is an import leaf: it must not import anything from the
rest of ``repro``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "EventLog",
    "default_events",
    "emit",
    "set_default_events",
]


class EventLog:
    """Bounded ring of structured lifecycle events + optional JSONL sink."""

    def __init__(self, capacity: int = 2048, jsonl_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self.jsonl_path = jsonl_path
        self._fh = open(jsonl_path, "a") if jsonl_path else None

    def emit(
        self,
        kind: str,
        shard: Optional[str] = None,
        corr_id: Optional[int] = None,
        trace_id: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Record one event; returns the event dict."""
        self._seq += 1
        event: Dict[str, Any] = {
            "seq": self._seq,
            "kind": kind,
            "t_mono_s": time.monotonic(),
            "t_wall_s": time.time(),
        }
        if shard is not None:
            event["shard"] = shard
        if corr_id is not None:
            event["corr_id"] = corr_id
        if trace_id is not None:
            event["trace_id"] = trace_id
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        self._ring.append(event)
        if self._fh is not None:
            self._fh.write(json.dumps(event, sort_keys=True) + "\n")
            self._fh.flush()
        return event

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """The ring's events (oldest first), optionally one kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event["kind"] == kind]

    def clear(self) -> None:
        self._ring.clear()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self._ring)


_DEFAULT = EventLog()


def default_events() -> EventLog:
    return _DEFAULT


def set_default_events(log: Optional[EventLog] = None) -> EventLog:
    """Replace the process-wide event log (tests, JSONL capture)."""
    global _DEFAULT
    _DEFAULT = log if log is not None else EventLog()
    return _DEFAULT


def emit(kind: str, **fields: Any) -> Dict[str, Any]:
    """Emit into the process-wide log (see :meth:`EventLog.emit`)."""
    return _DEFAULT.emit(kind, **fields)
