"""Sampling per-request tracing across the serve and fabric layers.

A trace is born at the front door (or at a ``query_*`` entry point for
walk-in callers) when the process-global :class:`Tracer` samples the
request.  The trace context is a tiny plain dict --
``{"trace_id": ..., "parent_id": ...}`` -- that rides
``QueryRequest.trace`` through the planner, the scatter legs, and the
wire envelopes (protocol v4's optional field).  Each layer that does
interesting work opens a :func:`span` against the context; finished
spans land in the process-global :class:`SpanSink`.  Worker processes
install their own sink at startup and ship drained spans back in the
``Reply.spans`` field, where the supervisor-side client absorbs them --
so a single exported trace stitches frontdoor -> router scatter ->
worker dispatch even across process boundaries.

Tracing is **off by default** (sample rate 0.0) and sampling is
deterministic: with rate ``r`` every ``round(1/r)``-th eligible request
is traced, starting with the first -- so a CI smoke run at the default
1% rate is still guaranteed one sampled trace.  Spans record only ids
and timestamps; they can never alter an answer, and the test suite
pins tracing-on answers bit-identical to tracing-off in both index
modes and both fabric modes.

Export is Chrome-trace-event JSON (open in https://ui.perfetto.dev or
``chrome://tracing``): :func:`export_chrome_trace`, or the
``scripts/trace_export.py`` CLI for raw span JSONL dumps.

This module is an import leaf: it must not import anything from the
rest of ``repro``.
"""

from __future__ import annotations

import binascii
import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "SpanSink",
    "Tracer",
    "chrome_trace_events",
    "configure_tracing",
    "disable_tracing",
    "dump_spans",
    "export_chrome_trace",
    "finish_span",
    "get_sink",
    "get_tracer",
    "install_sink",
    "load_spans",
    "span",
    "start_span",
]

#: the sampling rate "on by default" contexts (loadgen --trace-out, the
#: CI overhead smoke) use; plain construction still defaults to off
DEFAULT_SAMPLE_RATE = 0.01


def _new_id() -> str:
    return binascii.hexlify(os.urandom(8)).decode("ascii")


class SpanSink:
    """Bounded in-memory sink for finished spans (newest win)."""

    def __init__(self, capacity: int = 8192):
        self._spans: deque = deque(maxlen=capacity)

    def record(self, span_dict: Dict[str, Any]) -> None:
        self._spans.append(span_dict)

    def absorb(self, spans: Iterable[Mapping[str, Any]]) -> None:
        """Take spans shipped from another process (worker replies)."""
        for span_dict in spans:
            self._spans.append(dict(span_dict))

    def drain(self) -> List[Dict[str, Any]]:
        out = list(self._spans)
        self._spans.clear()
        return out

    def spans(self) -> List[Dict[str, Any]]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)


_SINK = SpanSink()


def get_sink() -> SpanSink:
    return _SINK


def install_sink(sink: Optional[SpanSink] = None) -> SpanSink:
    """Replace the process-global sink (worker startup installs a fresh
    one so fork-inherited parent spans never ship twice)."""
    global _SINK
    _SINK = sink if sink is not None else SpanSink()
    return _SINK


class Tracer:
    """Deterministic counter-based trace sampler.

    With ``sample_rate`` r > 0, every ``round(1/r)``-th eligible
    request starts a trace -- the **first** eligible request always
    does, so short smoke runs still export a stitched trace.  Rate 0
    (the default) disables tracing with a single comparison on the
    request path.
    """

    def __init__(self, sample_rate: float = 0.0):
        if sample_rate < 0.0 or sample_rate > 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = float(sample_rate)
        self._period = (
            max(1, int(round(1.0 / sample_rate))) if sample_rate > 0.0 else 0
        )
        self._seen = 0

    @property
    def enabled(self) -> bool:
        return self._period > 0

    def sample(self) -> Optional[Dict[str, Any]]:
        """A fresh root trace context, or None when not sampled."""
        if not self._period:
            return None
        eligible = self._seen % self._period == 0
        self._seen += 1
        if not eligible:
            return None
        return {"trace_id": _new_id(), "parent_id": None}


_TRACER = Tracer(0.0)


def get_tracer() -> Tracer:
    return _TRACER


def configure_tracing(sample_rate: float = DEFAULT_SAMPLE_RATE) -> Tracer:
    """Install a process-global tracer at ``sample_rate`` and return it."""
    global _TRACER
    _TRACER = Tracer(sample_rate)
    return _TRACER


def disable_tracing() -> None:
    global _TRACER
    _TRACER = Tracer(0.0)


@contextmanager
def span(
    name: str,
    ctx: Optional[Mapping[str, Any]],
    sink: Optional[SpanSink] = None,
    **args: Any,
) -> Iterator[Optional[Dict[str, Any]]]:
    """Open a span under ``ctx``; yields the child context.

    ``ctx`` is a trace context dict (or None, in which case this is a
    no-op that yields None -- callers never branch on sampling).  The
    yielded dict is the context to hand to children: same trace id,
    this span as parent.  On exit the finished span is recorded into
    ``sink`` (default: the process-global one).
    """
    if ctx is None:
        yield None
        return
    span_id = _new_id()
    child = {"trace_id": ctx["trace_id"], "parent_id": span_id}
    wall_0 = time.time()
    mono_0 = time.monotonic()
    try:
        yield child
    finally:
        (sink if sink is not None else _SINK).record(
            {
                "name": name,
                "trace_id": ctx["trace_id"],
                "span_id": span_id,
                "parent_id": ctx.get("parent_id"),
                "ts_wall_s": wall_0,
                "dur_s": time.monotonic() - mono_0,
                "pid": os.getpid(),
                "args": dict(args) if args else {},
            }
        )


def start_span(
    name: str,
    ctx: Optional[Mapping[str, Any]],
    **args: Any,
):
    """Manually-finished span for non-contiguous regions.

    A pipelined scatter leg is submitted in one loop and gathered in
    another, so no ``with`` block can bracket it; ``start_span`` returns
    ``(handle, child_ctx)`` and the caller passes the handle to
    :func:`finish_span` when the region ends.  A None ``ctx`` returns
    ``(None, None)`` -- both functions no-op, so callers never branch on
    sampling.
    """
    if ctx is None:
        return None, None
    span_id = _new_id()
    handle = {
        "name": name,
        "trace_id": ctx["trace_id"],
        "span_id": span_id,
        "parent_id": ctx.get("parent_id"),
        "ts_wall_s": time.time(),
        "_mono_0": time.monotonic(),
        "pid": os.getpid(),
        "args": dict(args) if args else {},
    }
    return handle, {"trace_id": ctx["trace_id"], "parent_id": span_id}


def finish_span(
    handle: Optional[Dict[str, Any]], sink: Optional[SpanSink] = None
) -> None:
    """Seal and record a span opened with :func:`start_span` (no-op on
    None)."""
    if handle is None:
        return
    span_dict = dict(handle)
    span_dict["dur_s"] = time.monotonic() - span_dict.pop("_mono_0")
    (sink if sink is not None else _SINK).record(span_dict)


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------

def chrome_trace_events(
    spans: Iterable[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Spans as Chrome trace events (``ph: "X"`` complete events).

    Timestamps are wall-clock microseconds -- processes on one machine
    share the wall clock, so parent- and worker-side spans line up on
    one Perfetto timeline, one track ("thread") per process.
    """
    events: List[Dict[str, Any]] = []
    for s in spans:
        args = dict(s.get("args", {}))
        args.update(
            {
                "trace_id": s.get("trace_id"),
                "span_id": s.get("span_id"),
                "parent_id": s.get("parent_id"),
            }
        )
        events.append(
            {
                "name": s.get("name", "span"),
                "ph": "X",
                "ts": float(s.get("ts_wall_s", 0.0)) * 1e6,
                "dur": max(float(s.get("dur_s", 0.0)), 1e-7) * 1e6,
                "pid": int(s.get("pid", 0)),
                "tid": int(s.get("pid", 0)),
                "cat": str(s.get("name", "span")).split(":", 1)[0],
                "args": args,
            }
        )
    return events


def export_chrome_trace(
    spans: Iterable[Mapping[str, Any]], path: str
) -> int:
    """Write spans as a Perfetto-loadable trace file; returns #events."""
    events = chrome_trace_events(spans)
    with open(path, "w") as fh:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fh,
            sort_keys=True,
        )
    return len(events)


def dump_spans(spans: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write raw spans as JSONL (the trace_export.py input format)."""
    n = 0
    with open(path, "w") as fh:
        for s in spans:
            fh.write(json.dumps(dict(s), sort_keys=True) + "\n")
            n += 1
    return n


def load_spans(path: str) -> List[Dict[str, Any]]:
    spans: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
