"""Metrics: counters, gauges, log-bucket latency histograms, key kinds.

Two things live here:

1. **The kind registry** -- the single place a counter key declares its
   merge semantics (``sum`` vs ``gauge``).  ``COUNTER_KINDS`` in
   :mod:`repro.serve.service` *is* ``kind_registry("counters")`` -- the
   same live dict -- so keys registered by their owning modules
   (``repro.fabric.protocol`` for the wire/fault keys,
   ``repro.serve.frontdoor`` for admission keys) appear in every
   existing reference the moment those modules import.  The cache's
   stat kinds use a separate namespace because they include merge kinds
   (``level``, ``derived``) that serving counters must never carry.

2. **:class:`LatencyHistogram` + :class:`MetricsRegistry`** -- fixed
   log-bucket latency histograms (p50/p95/p99 computed exactly from the
   bucket counts, mergeable shard-wise by summing buckets, wire-safe
   via ``to_dict``/``from_dict``) plus the registry every layer records
   into.  Buckets grow by ``2**(1/8)`` (~9% max relative error), well
   inside the bench harness's 10% regression tolerance, covering 1 us
   to 100 s; observations outside clamp into the edge buckets.

This module is an import leaf: it must not import anything from the
rest of ``repro``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LatencyHistogram",
    "MetricsRegistry",
    "counter_kinds",
    "kind_registry",
    "register_counters",
    "register_keys",
]

# ---------------------------------------------------------------------------
# kind registry
# ---------------------------------------------------------------------------

_KIND_REGISTRIES: Dict[str, Dict[str, str]] = {}


def kind_registry(namespace: str) -> Dict[str, str]:
    """The live kind dict for ``namespace`` (created on first use).

    Callers hold a reference to the *same* mutable dict, so keys
    registered after the reference was taken still appear in it --
    which is what lets ``repro.serve.service.COUNTER_KINDS`` stay a
    plain importable (and monkeypatchable) dict while its entries are
    declared at the modules that own them.
    """
    return _KIND_REGISTRIES.setdefault(namespace, {})


def register_keys(namespace: str, kind: str, *keys: str) -> Tuple[str, ...]:
    """Register ``keys`` under ``namespace`` with one merge ``kind``.

    Returns the keys as a tuple so owning modules can keep publishing
    their key lists (``WIRE_COUNTER_KEYS = register_counters(...)``).
    Re-registering a key with the same kind is a no-op; a conflicting
    kind raises ``ValueError`` -- a key declares its merge semantics
    exactly once, at the module that owns it.
    """
    registry = kind_registry(namespace)
    for key in keys:
        existing = registry.get(key)
        if existing is not None and existing != kind:
            raise ValueError(
                "key %r in namespace %r is already registered as %r; "
                "refusing to re-register it as %r"
                % (key, namespace, existing, kind)
            )
        registry[key] = kind
    return tuple(keys)


def register_counters(kind: str, *keys: str) -> Tuple[str, ...]:
    """Declare serving-counter keys: ``sum`` (work) or ``gauge`` (level)."""
    if kind not in ("sum", "gauge"):
        raise ValueError(
            "counter kind must be 'sum' or 'gauge', got %r" % (kind,)
        )
    return register_keys("counters", kind, *keys)


def counter_kinds() -> Dict[str, str]:
    """The live serving-counter kind dict (``COUNTER_KINDS``)."""
    return kind_registry("counters")


# ---------------------------------------------------------------------------
# latency histograms
# ---------------------------------------------------------------------------

#: bucket upper edges grow by this factor; 2**(1/8) keeps the maximum
#: relative quantile error ~9%, inside the bench gate's 10% tolerance
GROWTH = 2.0 ** 0.125
MIN_LATENCY_S = 1e-6
MAX_LATENCY_S = 100.0
_LOG_GROWTH = math.log(GROWTH)
NUM_BUCKETS = (
    int(math.ceil(math.log(MAX_LATENCY_S / MIN_LATENCY_S) / _LOG_GROWTH)) + 1
)


class LatencyHistogram:
    """Fixed log-bucket latency histogram (seconds).

    Merges by summing bucket counts, so per-shard histograms combine
    into fleet histograms without losing quantile fidelity -- the
    histogram analogue of the ``sum`` counter kind.  Quantiles are
    computed from the buckets with linear interpolation inside the
    landing bucket and clamped to the observed min/max, so p50/p95/p99
    are exact up to the declared bucket width.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self):
        self.counts: List[int] = [0] * NUM_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    # -- recording -----------------------------------------------------------
    @staticmethod
    def bucket_index(seconds: float) -> int:
        if seconds <= MIN_LATENCY_S:
            return 0
        index = int(math.log(seconds / MIN_LATENCY_S) / _LOG_GROWTH) + 1
        return min(index, NUM_BUCKETS - 1)

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[float, float]:
        """[lower, upper) edges of bucket ``index`` in seconds."""
        if index <= 0:
            return (0.0, MIN_LATENCY_S)
        return (
            MIN_LATENCY_S * GROWTH ** (index - 1),
            MIN_LATENCY_S * GROWTH ** index,
        )

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        if seconds < 0.0 or seconds != seconds:  # negative or NaN
            return
        self.counts[self.bucket_index(seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    # -- quantiles -----------------------------------------------------------
    def percentile(self, p: float) -> float:
        """The p-th percentile (p in [0, 100]) from the bucket counts."""
        if self.count == 0:
            return float("nan")
        if p <= 0.0:
            return self.min
        if p >= 100.0:
            return self.max
        target = (p / 100.0) * self.count
        cumulative = 0
        for index, n in enumerate(self.counts):
            if not n:
                continue
            if cumulative + n >= target:
                lo, hi = self.bucket_bounds(index)
                fraction = (target - cumulative) / n
                value = lo + fraction * (hi - lo)
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max

    def percentiles(
        self, ps: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Tuple[float, ...]:
        return tuple(self.percentile(p) for p in ps)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def summary(self) -> Dict[str, float]:
        """The load-report / cost-summary projection of this histogram."""
        p50, p95, p99 = self.percentiles()
        return {
            "count": float(self.count),
            "mean_s": self.mean,
            "min_s": self.min if self.count else float("nan"),
            "max_s": self.max if self.count else float("nan"),
            "p50_s": p50,
            "p95_s": p95,
            "p99_s": p99,
        }

    # -- merge + wire --------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        for index, n in enumerate(other.counts):
            if n:
                self.counts[index] += n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Wire-safe sparse encoding (JSON/msgpack-friendly)."""
        return {
            "buckets": {
                str(i): n for i, n in enumerate(self.counts) if n
            },
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LatencyHistogram":
        hist = cls()
        for key, n in dict(payload.get("buckets", {})).items():
            index = int(key)
            if 0 <= index < NUM_BUCKETS:
                hist.counts[index] = int(n)
        hist.count = int(payload.get("count", sum(hist.counts)))
        hist.sum = float(payload.get("sum", 0.0))
        if hist.count:
            minimum = payload.get("min")
            maximum = payload.get("max")
            hist.min = float(minimum) if minimum is not None else 0.0
            hist.max = float(maximum) if maximum is not None else 0.0
        return hist


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Per-component metrics: counters, gauges, latency histograms.

    Always-on and cheap -- recording a histogram point is one log and a
    few dict/list operations.  Snapshots are plain dicts (histograms in
    their wire encoding) so they cross the fabric wire unchanged and
    merge shard-wise with :meth:`merge_snapshots`.
    """

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    # -- recording -----------------------------------------------------------
    def counter(self, name: str, delta: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + float(delta)

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    # -- reading -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self._histograms.items()
            },
        }

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        return {
            name: hist.summary()
            for name, hist in sorted(self._histograms.items())
        }

    @staticmethod
    def merge_snapshots(
        snapshots: Iterable[Mapping[str, Any]],
    ) -> Dict[str, Any]:
        """Fleet view of per-shard snapshots: counters and gauges sum
        (a fleet gauge is the sum of per-shard levels), histograms
        merge by bucket counts."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, LatencyHistogram] = {}
        for snapshot in snapshots:
            for name, value in snapshot.get("counters", {}).items():
                counters[name] = counters.get(name, 0.0) + float(value)
            for name, value in snapshot.get("gauges", {}).items():
                gauges[name] = gauges.get(name, 0.0) + float(value)
            for name, payload in snapshot.get("histograms", {}).items():
                incoming = LatencyHistogram.from_dict(payload)
                existing = histograms.get(name)
                if existing is None:
                    histograms[name] = incoming
                else:
                    existing.merge(incoming)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: hist.to_dict() for name, hist in histograms.items()
            },
        }

    @staticmethod
    def summarize(snapshot: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
        """Histogram summaries (count/mean/p50/p95/p99) of a snapshot."""
        return {
            name: LatencyHistogram.from_dict(payload).summary()
            for name, payload in sorted(
                snapshot.get("histograms", {}).items()
            )
        }
