"""Unified observability: metrics, request tracing, lifecycle events.

The three concerns live in three leaf modules (no imports from the
rest of ``repro``, so every layer can depend on them without cycles):

* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-log-bucket
  latency histograms in a :class:`~repro.obs.metrics.MetricsRegistry`,
  plus the single kind registry behind ``COUNTER_KINDS`` /
  ``WIRE_COUNTER_KEYS`` / ``FAULT_COUNTER_KEYS`` / admission keys.
* :mod:`repro.obs.trace` -- sampling per-request trace/span ids that
  propagate through ``QueryRequest`` and the fabric wire, exportable
  as Chrome-trace-event JSON (Perfetto-viewable).
* :mod:`repro.obs.events` -- a bounded structured event log (in-memory
  ring + optional JSONL sink) for worker/watchdog/migration lifecycle.

See ``docs/OBSERVABILITY.md`` for the full contract.
"""

from repro.obs.events import EventLog, default_events, emit, set_default_events
from repro.obs.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    counter_kinds,
    kind_registry,
    register_counters,
    register_keys,
)
from repro.obs.trace import (
    DEFAULT_SAMPLE_RATE,
    SpanSink,
    Tracer,
    chrome_trace_events,
    configure_tracing,
    disable_tracing,
    export_chrome_trace,
    finish_span,
    get_sink,
    get_tracer,
    install_sink,
    span,
    start_span,
)

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "EventLog",
    "LatencyHistogram",
    "MetricsRegistry",
    "SpanSink",
    "Tracer",
    "chrome_trace_events",
    "configure_tracing",
    "counter_kinds",
    "default_events",
    "disable_tracing",
    "emit",
    "export_chrome_trace",
    "finish_span",
    "get_sink",
    "get_tracer",
    "install_sink",
    "kind_registry",
    "register_counters",
    "register_keys",
    "set_default_events",
    "span",
    "start_span",
]
