"""Unit tests for frame-rate resampling (Section 6.6)."""

import numpy as np
import pytest

from repro.video.sampling import resample_fps
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="module")
def table30():
    return generate_observations("auburn_c", 60.0, 30.0)


def test_same_rate_is_identity(table30):
    assert resample_fps(table30, 30.0) is table30


def test_upsampling_rejected(table30):
    with pytest.raises(ValueError):
        resample_fps(table30, 60.0)


def test_invalid_rate(table30):
    with pytest.raises(ValueError):
        resample_fps(table30, 0.0)


@pytest.mark.parametrize("fps", [10.0, 5.0, 1.0])
def test_observation_count_scales(table30, fps):
    sub = resample_fps(table30, fps)
    expected_ratio = fps / 30.0
    actual_ratio = len(sub) / len(table30)
    assert 0.6 * expected_ratio <= actual_ratio <= 1.6 * expected_ratio


def test_tracks_preserved(table30):
    """Downsampling drops frames, not objects: every track that lasts
    longer than a frame interval survives."""
    sub = resample_fps(table30, 5.0)
    # each track keeps at least one observation
    assert set(np.unique(sub.track_id)) == set(np.unique(table30.track_id))


def test_at_most_one_obs_per_track_per_new_frame(table30):
    sub = resample_fps(table30, 5.0)
    pairs = np.stack([sub.track_id, sub.frame_idx], axis=1)
    assert len(np.unique(pairs, axis=0)) == len(pairs)


def test_new_frame_idx_consistent(table30):
    sub = resample_fps(table30, 10.0)
    np.testing.assert_array_equal(
        sub.frame_idx, np.floor(sub.time_s * 10.0).astype(np.int64)
    )
    assert sub.fps == 10.0


def test_chained_resample_matches_direct(table30):
    """30->10->5 keeps the same observations as 30->5 (first per window)."""
    via = resample_fps(resample_fps(table30, 10.0), 5.0)
    direct = resample_fps(table30, 5.0)
    assert len(via) == len(direct)
    np.testing.assert_array_equal(np.sort(via.time_s), np.sort(direct.time_s))
