"""End-to-end integration tests: the paper's headline claims in miniature."""

import numpy as np
import pytest

from repro import AccuracyTarget, FocusSystem, Policy
from repro.baselines import IngestAllBaseline, QueryAllBaseline
from repro.cnn import resnet152


@pytest.fixture(scope="module")
def deployment():
    """One tuned + ingested stream with both baselines alongside."""
    system = FocusSystem()
    handle = system.ingest_stream("auburn_c", duration_s=180.0, fps=30.0)
    gt = resnet152()
    ingest_all = IngestAllBaseline(gt)
    query_all = QueryAllBaseline(gt)
    ia = ingest_all.ingest(handle.table)
    query_all.ingest(handle.table)
    return system, handle, ia, query_all


def test_focus_beats_ingest_all_on_cost(deployment):
    """Headline: Focus ingest is tens of times cheaper than Ingest-all."""
    system, handle, ia, _ = deployment
    factor = ia.ingest_gpu_seconds / handle.ingest.ingest_gpu_seconds
    assert factor > 20


def test_focus_beats_query_all_on_latency(deployment):
    """Headline: Focus queries are many times faster than Query-all."""
    system, handle, _, query_all = deployment
    focus, baseline = [], []
    for cls in handle.tuning.dominant_classes:
        answer = system.query("auburn_c", int(cls))
        focus.append(answer.result.gpu_seconds)
        baseline.append(query_all.query("auburn_c", int(cls)).gpu_seconds)
    assert np.mean(baseline) / np.mean(focus) > 5


def test_accuracy_targets_hold_end_to_end(deployment):
    """Headline: >= 95% precision and recall against the GT-CNN."""
    system, handle, _, _ = deployment
    precisions, recalls = [], []
    for cls in handle.tuning.dominant_classes:
        answer = system.query("auburn_c", int(cls))
        precisions.append(answer.precision)
        recalls.append(answer.recall)
    assert np.mean(precisions) >= 0.95
    assert np.mean(recalls) >= 0.94


def test_results_agree_with_ingest_all_queries(deployment):
    """Focus and Ingest-all answer the same question: their returned
    segments overlap almost entirely."""
    system, handle, _, _ = deployment
    cls = int(handle.tuning.dominant_classes[0])
    answer = system.query("auburn_c", cls)
    from repro.core.metrics import gt_segments, result_segments

    truth = gt_segments(handle.table, cls)
    got = result_segments(handle.table, answer.result.returned_rows)
    assert len(got & truth) / max(len(truth), 1) >= 0.9


def test_opt_policies_end_to_end():
    """Opt-Ingest ingests no more expensively than Opt-Query."""
    ingest_costs = {}
    for policy in (Policy.OPT_INGEST, Policy.OPT_QUERY):
        system = FocusSystem(policy=policy)
        handle = system.ingest_stream("jacksonh", duration_s=120.0, fps=30.0)
        ingest_costs[policy] = handle.ingest.ingest_gpu_seconds
    assert ingest_costs[Policy.OPT_INGEST] <= ingest_costs[Policy.OPT_QUERY] * 1.05


def test_stricter_target_still_met():
    """A 98% target is achievable and actually delivered (Section 6.5)."""
    target = AccuracyTarget(precision=0.98, recall=0.98)
    system = FocusSystem(target=target)
    handle = system.ingest_stream("lausanne", duration_s=150.0, fps=30.0)
    recalls = []
    for cls in handle.tuning.dominant_classes:
        answer = system.query("lausanne", int(cls))
        recalls.append(answer.recall)
    assert np.mean(recalls) >= 0.95
