"""Tests for the cross-stream query service (repro.serve).

Covers the acceptance path of the serving subsystem: a class query
fanned across >= 3 ingested streams with batched GT verification, the
verification cache making a repeated query cheaper (asserted via ledger
counts), concurrent-query dedup, cold-start via
``FocusSystem.load_indexes``, and the serving counters surfaced in
``cost_summary()``.
"""

import numpy as np
import pytest

from repro.cnn.zoo import resnet152
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.system import FocusSystem
from repro.sched.cluster import GPUCluster, QueryCoordinator, WorkItem
from repro.serve.cache import VerificationCache
from repro.serve.planner import QueryRequest
from repro.storage.docstore import DocumentStore
from repro.video.classes import class_id

# the ingested three-camera system itself comes from conftest.py
# (session-scoped ``service_system`` / ``store_with_streams``): tuning +
# ingest is the expensive part and other suites share the same workload
SERVICE_STREAMS = ["lausanne", "auburn_c", "jacksonh"]


class TestQueryAll:
    def test_answers_across_three_streams(self, service_system):
        answer = service_system.query_all("car")
        assert answer.streams == sorted(SERVICE_STREAMS)
        assert answer.class_name == "car"
        assert answer.total_frames > 0
        assert answer.candidates > 0

    def test_matches_per_stream_queries(self, service_system):
        """The fanned-out answer returns the same frames per stream as
        three independent single-stream queries."""
        answer = service_system.query_all("car")
        for stream in SERVICE_STREAMS:
            single = service_system.query(stream, "car")
            np.testing.assert_array_equal(
                answer.slices[stream].frames, single.frames
            )

    def test_verification_is_batched(self, table_factory):
        """Fresh cross-stream verification dispatches real work onto the
        cluster's per-GPU queues."""
        system = FocusSystem()
        for stream in SERVICE_STREAMS:
            system.ingest_stream(table_factory(stream, 60.0, 15.0))
        busy_before = system.cluster.total_busy_seconds
        answer = system.query_all("car")
        assert answer.gt_inferences > 0
        assert system.cluster.total_busy_seconds > busy_before
        assert any(len(q) for q in system.cluster.queues.values())
        assert answer.latency_seconds > 0

    def test_stream_subset_and_unknown_stream(self, service_system):
        answer = service_system.query_all("car", streams=["lausanne"])
        assert answer.streams == ["lausanne"]
        with pytest.raises(KeyError):
            service_system.query_all("car", streams=["lausanne", "nope"])

    def test_kx_clamped_per_shard(self, service_system):
        # the per-stream tuned indexes have different K; an oversized Kx
        # must clamp instead of raising
        answer = service_system.query_all("car", kx=1000)
        assert answer.total_frames > 0


class TestVerificationCacheAccounting:
    def test_repeat_query_hits_cache(self, table_factory):
        """Acceptance: a repeated query_all performs fewer GT inferences,
        verified by ledger counts."""
        system = FocusSystem()
        for stream in SERVICE_STREAMS:
            system.ingest_stream(table_factory(stream, 60.0, 15.0))

        before = system.ledger.inferences(CostCategory.QUERY_GT)
        first = system.query_all("car")
        mid = system.ledger.inferences(CostCategory.QUERY_GT)
        second = system.query_all("car")
        after = system.ledger.inferences(CostCategory.QUERY_GT)

        assert first.gt_inferences > 0
        assert mid - before == first.gt_inferences
        # every centroid verdict is cached: the repeat adds zero
        assert after == mid
        assert second.gt_inferences == 0
        assert second.cache_hits == first.candidates
        assert second.total_frames == first.total_frames

    def test_counters_in_cost_summary(self, service_system):
        service_system.query_all("bus")
        service_system.query_all("bus")
        summary = service_system.cost_summary()
        assert summary["verification-cache-hits"] > 0
        assert summary["verification-cache-misses"] > 0
        assert summary["queries-served"] >= 2

    def test_concurrent_queries_coalesce(self, table_factory):
        """Two identical queries in one batch verify each centroid once."""
        system = FocusSystem()
        system.ingest_stream(table_factory("lausanne", 60.0, 15.0))
        requests = [QueryRequest("car"), QueryRequest("car")]
        a, b = system.query_batch(requests)
        assert a.duplicates_coalesced == a.candidates
        # fresh work is attributed to the first query; the second rides along
        assert a.gt_inferences + b.gt_inferences == a.candidates
        np.testing.assert_array_equal(
            a.slices["lausanne"].frames, b.slices["lausanne"].frames
        )

    def test_reingest_invalidates_cache(self, table_factory):
        system = FocusSystem()
        system.ingest_stream(table_factory("lausanne", 60.0, 15.0))
        system.query_all("car")
        assert len(system.service.cache) > 0
        system.ingest_stream(table_factory("lausanne", 60.0, 15.0))
        assert len(system.service.cache) == 0


class TestLoadIndexes:
    def test_round_trip_through_docstore(
        self, service_system, store_with_streams, tmp_path
    ):
        path = str(tmp_path / "indexes.json")
        store_with_streams.save(path)

        cold = FocusSystem()
        restored = cold.load_indexes(DocumentStore.load(path))
        assert sorted(restored) == sorted(SERVICE_STREAMS)
        assert cold.streams() == sorted(SERVICE_STREAMS)
        assert all(cold.handle(s).restored for s in SERVICE_STREAMS)

        warm = service_system.query_all("car")
        cold_answer = cold.query_all("car")
        assert cold_answer.total_frames == warm.total_frames
        for stream in SERVICE_STREAMS:
            np.testing.assert_array_equal(
                cold_answer.slices[stream].frames, warm.slices[stream].frames
            )

    def test_cold_start_skips_ingest_cost(self, store_with_streams):
        cold = FocusSystem()
        cold.load_indexes(store_with_streams)
        cold.query_all("car")
        summary = cold.cost_summary()
        assert "ingest-cnn" not in summary
        assert "retrain-gt" not in summary
        assert summary["query-gt"] > 0

    def test_single_stream_query_on_restored_handle(
        self, service_system, store_with_streams
    ):
        cold = FocusSystem()
        cold.load_indexes(store_with_streams, streams=["lausanne"])
        answer = cold.query("lausanne", "car")
        warm = service_system.query("lausanne", "car")
        np.testing.assert_array_equal(answer.frames, warm.frames)

    def test_second_generation_save_preserves_token_map(self, store_with_streams):
        """Re-saving from a restored system keeps the specialized
        head/OTHER token mapping, so tail-class queries still hit the
        OTHER bucket two generations later."""
        gen1 = FocusSystem()
        gen1.load_indexes(store_with_streams)
        second = DocumentStore()
        gen1.save_indexes(second)
        gen2 = FocusSystem()
        gen2.load_indexes(second)
        # traffic_light is a tail class on the traffic cameras
        a1 = gen1.query_all("traffic_light")
        a2 = gen2.query_all("traffic_light")
        assert a2.candidates == a1.candidates
        for stream in SERVICE_STREAMS:
            np.testing.assert_array_equal(
                a2.slices[stream].frames, a1.slices[stream].frames
            )

    def test_missing_stream_rejected(self, store_with_streams):
        with pytest.raises(KeyError):
            FocusSystem().load_indexes(store_with_streams, streams=["oxford"])

    def test_table_mismatch_detected(self):
        """An index saved over a non-default table cannot be restored
        against the default regeneration: the checksum catches it
        instead of silently mis-mapping member rows."""
        from repro.video.synthesis import generate_observations

        system = FocusSystem()
        table = generate_observations("lausanne", 60.0, 15.0, seed_salt=7)
        system.ingest_stream(table)
        store = DocumentStore()
        system.save_indexes(store)
        with pytest.raises(ValueError, match="does not match"):
            FocusSystem().load_indexes(store)
        # the escape hatch: hand the original table back in
        cold = FocusSystem()
        cold.load_indexes(store, tables={"lausanne": table})
        warm = system.query("lausanne", "car")
        restored = cold.query("lausanne", "car")
        np.testing.assert_array_equal(restored.frames, warm.frames)

    def test_resave_is_upsert(self, service_system):
        store = DocumentStore()
        service_system.save_indexes(store)
        n_meta = len(store.collection("index-meta"))
        n_clusters = len(store.collection("clusters:lausanne"))
        service_system.save_indexes(store)
        assert len(store.collection("index-meta")) == n_meta
        assert len(store.collection("clusters:lausanne")) == n_clusters
        assert len(store.collection("stream-meta")) == len(SERVICE_STREAMS)


class TestTimeRangeMetrics:
    def test_query_time_range_metrics(self, service_system):
        """FocusSystem.query with a window restricts rows AND ground
        truth to the window."""
        handle = service_system.handle("auburn_c")
        cls = int(handle.table.dominant_classes()[0])
        full = service_system.query("auburn_c", cls)
        windowed = service_system.query("auburn_c", cls, time_range=(0.0, 30.0))
        if len(windowed.frames):
            assert (handle.table.time_s[windowed.result.returned_rows] < 30.0).all()
        assert windowed.metrics.true_segments <= full.metrics.true_segments
        # truth restricted to the window keeps recall well-defined
        assert 0.0 <= windowed.recall <= 1.0
        assert 0.0 <= windowed.precision <= 1.0

    def test_query_all_time_range(self, service_system):
        answer = service_system.query_all("car", time_range=(0.0, 30.0))
        for stream in SERVICE_STREAMS:
            handle = service_system.handle(stream)
            rows = answer.slices[stream].result.returned_rows
            if len(rows):
                assert (handle.table.time_s[rows] < 30.0).all()


class TestIncrementalRefund:
    def test_refund_adjusts_ledger_totals(self, service_system):
        """query_incremental's dedup refund shrinks the QUERY_GT totals
        so cost_summary stays consistent with gt_inferences."""
        engine = service_system.handle("auburn_c").engine
        ledger = engine.ledger
        before_inf = ledger.inferences(CostCategory.QUERY_GT)
        before_sec = ledger.seconds(CostCategory.QUERY_GT)
        cls = int(service_system.handle("auburn_c").table.dominant_classes()[0])
        k = engine.index.k
        batches = [max(1, k // 2), k] if k > 1 else [1, 1]
        results = engine.query_incremental(cls, batches)
        charged_inf = ledger.inferences(CostCategory.QUERY_GT) - before_inf
        charged_sec = ledger.seconds(CostCategory.QUERY_GT) - before_sec
        assert charged_inf == sum(r.gt_inferences for r in results)
        assert charged_sec == pytest.approx(sum(r.gpu_seconds for r in results))

    def test_refund_validation(self):
        ledger = GPULedger()
        gt = resnet152()
        with pytest.raises(ValueError):
            ledger.refund(CostCategory.QUERY_GT, gt, 1)  # nothing recorded yet
        ledger.record(CostCategory.QUERY_GT, gt, 5)
        ledger.refund(CostCategory.QUERY_GT, gt, 2)
        assert ledger.inferences(CostCategory.QUERY_GT) == 3
        assert ledger.seconds(CostCategory.QUERY_GT) == pytest.approx(
            gt.cost_seconds(3)
        )
        with pytest.raises(ValueError):
            ledger.refund(CostCategory.QUERY_GT, gt, -1)


class TestVerificationCacheUnit:
    def test_lru_eviction(self):
        cache = VerificationCache(capacity=2)
        cache.put(("s", 1, "gt"), 7)
        cache.put(("s", 2, "gt"), 8)
        assert cache.get(("s", 1, "gt")) == 7  # refresh 1
        cache.put(("s", 3, "gt"), 9)           # evicts 2
        assert cache.get(("s", 2, "gt")) is None
        assert cache.get(("s", 1, "gt")) == 7
        assert cache.evictions == 1

    def test_counters_and_stats(self):
        cache = VerificationCache(capacity=4)
        assert cache.get(("s", 1, "gt")) is None
        cache.put(("s", 1, "gt"), 3)
        assert cache.get(("s", 1, "gt")) == 3
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_invalidate_stream(self):
        cache = VerificationCache()
        cache.put(("a", 1, "gt"), 0)
        cache.put(("b", 1, "gt"), 0)
        assert cache.invalidate_stream("a") == 1
        assert ("b", 1, "gt") in cache
        assert ("a", 1, "gt") not in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            VerificationCache(capacity=0)


class TestClusterWorkQueues:
    def test_dispatch_records_queues(self):
        cluster = GPUCluster(2)
        report = cluster.dispatch([WorkItem(1.0) for _ in range(4)])
        assert report.makespan == pytest.approx(2.0)
        assert report.devices_used == 2
        assert sum(len(q) for q in cluster.queues.values()) == 4

    def test_consecutive_dispatches_contend(self):
        cluster = GPUCluster(1)
        first = cluster.dispatch([WorkItem(1.0)])
        second = cluster.dispatch([WorkItem(1.0)])
        # the second batch queues behind the first on the busy device
        assert second.start == pytest.approx(first.end)
        assert second.end == pytest.approx(2.0)

    def test_coordinator_dispatch_batches(self):
        gt = resnet152()
        coordinator = QueryCoordinator(GPUCluster(4), batch_size=32)
        report = coordinator.dispatch(gt, 100)
        assert len(report.scheduled) == 4  # ceil(100/32)
        assert report.gpu_seconds == pytest.approx(gt.cost_seconds(100))
        # idle-cluster latency matches a fresh dispatch of the same work
        assert coordinator.latency(gt, 100) <= report.gpu_seconds

    def test_utilization(self):
        cluster = GPUCluster(2)
        cluster.dispatch([WorkItem(1.0), WorkItem(1.0)])
        assert cluster.utilization() == pytest.approx(1.0)

    def test_queue_history_bounded(self):
        """A long-lived service must not retain every item ever run."""
        cluster = GPUCluster(1, max_queue_history=10)
        for _ in range(5):
            cluster.dispatch([WorkItem(0.1) for _ in range(8)])
        assert len(cluster.queues[0]) == 10
        # busy-time accounting is unaffected by trimming
        assert cluster.total_busy_seconds == pytest.approx(4.0)


class TestAnswerAggregation:
    """Cross-stream precision/recall weight by evidence, not presence."""

    @staticmethod
    def _answer(metrics_by_stream):
        from repro.core.metrics import SegmentMetrics
        from repro.core.query import QueryResult
        from repro.serve.service import MultiStreamAnswer, StreamSlice
        import numpy as np

        empty = np.zeros(0, dtype=np.int64)
        slices = {}
        for name, (true_n, ret_n, correct_n) in metrics_by_stream.items():
            metrics = SegmentMetrics(
                class_id=0, true_segments=true_n,
                returned_segments=ret_n, correct_segments=correct_n,
            )
            result = QueryResult(
                class_id=0, token=0, candidate_clusters=[],
                matched_clusters=[], returned_rows=empty,
                returned_frames=empty, gt_inferences=0, gpu_seconds=0.0,
            )
            slices[name] = StreamSlice(stream=name, result=result, metrics=metrics)
        return MultiStreamAnswer(
            class_id=0, class_name="x", slices=slices, latency_seconds=0.0,
            gt_inferences=0, candidates=0, cache_hits=0, duplicates_coalesced=0,
        )

    def test_absent_streams_do_not_dilute_recall(self):
        # one stream has the class (recall 0.5); nine report a vacuous
        # 1.0 with zero ground-truth segments
        streams = {"s0": (2, 1, 1)}
        streams.update({"s%d" % i: (0, 0, 0) for i in range(1, 10)})
        answer = self._answer(streams)
        assert answer.recall == pytest.approx(0.5)

    def test_all_vacuous_is_vacuous(self):
        answer = self._answer({"a": (0, 0, 0), "b": (0, 0, 0)})
        assert answer.recall == 1.0
        assert answer.precision == 1.0

    def test_weighted_by_evidence(self):
        answer = self._answer({"a": (8, 8, 8), "b": (2, 2, 0)})
        assert answer.recall == pytest.approx(0.8)


class _StubIndex:
    def __init__(self, classes, fail_on=()):
        self._classes = classes
        self._fail_on = set(fail_on)

    def cluster(self, cluster_id):
        if cluster_id in self._fail_on:
            raise KeyError("cluster %d retired mid-round" % cluster_id)

        class _Cluster:
            centroid_class = self._classes[cluster_id]

        return _Cluster()


class _StubEngine:
    def __init__(self, classes, fail_on=()):
        self.index = _StubIndex(classes, fail_on)


def _plan(stream, engine, candidates, priority=None, deadline_s=None):
    from repro.serve.planner import DEFAULT_PRIORITY, QueryPlan
    from repro.serve.planner import ShardPlan

    shard = ShardPlan(
        stream=stream, engine=engine, class_id=0, token=0,
        candidates=list(candidates), kx=None, time_range=None,
    )
    return QueryPlan(
        class_id=0, shards=[shard],
        priority=DEFAULT_PRIORITY if priority is None else priority,
        deadline_s=deadline_s,
    )


def _scheduler(gt):
    from repro.serve.scheduler import BatchVerificationScheduler

    ledger = GPULedger()
    scheduler = BatchVerificationScheduler(
        QueryCoordinator(GPUCluster(2)), gt, ledger, cache=VerificationCache()
    )
    return scheduler, ledger


class TestSchedulerRefund:
    def test_mid_round_failure_refunds_unverified_remainder(self):
        """Regression: verify() charges the ledger before computing
        verdicts; a cluster lookup failing mid-round must refund the
        unverified remainder and leave the cache holding exactly the
        completed verdicts."""
        gt = resnet152()
        scheduler, ledger = _scheduler(gt)
        classes = {1: 10, 2: 11, 3: 12, 4: 13}
        engine = _StubEngine(classes, fail_on=(3,))
        with pytest.raises(KeyError):
            scheduler.verify([_plan("cam", engine, [1, 2, 3, 4])])
        # 4 were charged up front; 2 verdicts completed before the
        # failure; the 2 unverified were refunded
        assert ledger.inferences(CostCategory.QUERY_GT) == 2
        assert scheduler.cache.get(("cam", 1, gt.name)) == 10
        assert scheduler.cache.get(("cam", 2, gt.name)) == 11
        assert scheduler.cache.get(("cam", 3, gt.name)) is None
        assert scheduler.cache.get(("cam", 4, gt.name)) is None

    def test_retry_after_failure_charges_only_the_remainder(self):
        """Cache and ledger agree after the refund: a retry serves the
        completed verdicts from cache and pays only for the rest."""
        gt = resnet152()
        scheduler, ledger = _scheduler(gt)
        classes = {1: 10, 2: 11, 3: 12, 4: 13}
        broken = _StubEngine(classes, fail_on=(3,))
        with pytest.raises(KeyError):
            scheduler.verify([_plan("cam", broken, [1, 2, 3, 4])])
        healed = _StubEngine(classes)
        report = scheduler.verify([_plan("cam", healed, [1, 2, 3, 4])])
        assert report.cache_hits == 2
        assert report.fresh_inferences == 2
        assert report.verdicts == {
            ("cam", 1): 10, ("cam", 2): 11, ("cam", 3): 12, ("cam", 4): 13,
        }
        assert ledger.inferences(CostCategory.QUERY_GT) == 4

    def test_clean_round_refunds_nothing(self):
        gt = resnet152()
        scheduler, ledger = _scheduler(gt)
        engine = _StubEngine({1: 10, 2: 11})
        scheduler.verify([_plan("cam", engine, [1, 2])])
        assert ledger.inferences(CostCategory.QUERY_GT) == 2
        assert all(e.inferences >= 0 for e in ledger.entries)


class TestPriorityFormation:
    def test_groups_order_priority_then_deadline_then_arrival(self):
        from repro.serve.scheduler import BatchVerificationScheduler

        engine = _StubEngine({})
        plans = [
            _plan("a", engine, [], priority=2),
            _plan("b", engine, [], priority=0, deadline_s=1.0),
            _plan("c", engine, [], priority=0, deadline_s=0.2),
            _plan("d", engine, [], priority=0, deadline_s=0.2),
            _plan("e", engine, [], priority=1),
        ]
        groups = BatchVerificationScheduler._formation_groups(plans)
        assert [(klass, indices) for klass, indices in groups] == [
            ((0, 0.2), [2, 3]),
            ((0, 1.0), [1]),
            ((1, float("inf")), [4]),
            ((2, float("inf")), [0]),
        ]

    def test_urgent_group_dispatches_first(self):
        """A bulk plan arriving *before* an interactive one still has
        its batches enqueued behind the interactive plan's."""
        gt = resnet152()
        scheduler, _ = _scheduler(gt)
        bulk = _StubEngine({1: 10, 2: 11})
        interactive = _StubEngine({7: 20, 8: 21})
        scheduler.verify([
            _plan("bulk", bulk, [1, 2], priority=3),
            _plan("live", interactive, [7, 8], priority=0, deadline_s=0.5),
        ])
        work = [
            w
            for queue in scheduler.coordinator.cluster.queues.values()
            for w in queue
        ]
        urgent = [w for w in work if "p0" in w.item.label]
        bulky = [w for w in work if "p3" in w.item.label]
        assert urgent and bulky
        assert max(w.start for w in urgent) <= min(w.start for w in bulky)
        assert all("d0.5s" in w.item.label for w in urgent)

    def test_uniform_priority_keeps_legacy_single_dispatch_label(self):
        """All-default rounds must look exactly like the pre-QoS
        scheduler: one dispatch, legacy label."""
        gt = resnet152()
        scheduler, _ = _scheduler(gt)
        engine = _StubEngine({1: 10, 2: 11, 3: 12})
        scheduler.verify([
            _plan("a", engine, [1, 2]),
            _plan("b", engine, [3]),
        ])
        labels = {
            w.item.label
            for queue in scheduler.coordinator.cluster.queues.values()
            for w in queue
        }
        assert labels == {"verify x3 (2 queries)"}
