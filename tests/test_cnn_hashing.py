"""Unit tests for deterministic counter-based hashing."""

import numpy as np
import pytest

from repro.cnn.hashing import (
    combine,
    hash_normal,
    hash_normal_matrix,
    hash_randint,
    hash_uniform,
    mix64,
    stable_salt,
)


def test_mix64_deterministic():
    x = np.arange(100, dtype=np.uint64)
    np.testing.assert_array_equal(mix64(x), mix64(x))


def test_mix64_bijective_on_sample():
    x = np.arange(10000, dtype=np.uint64)
    assert len(np.unique(mix64(x))) == 10000


def test_combine_requires_input():
    with pytest.raises(ValueError):
        combine()


def test_combine_order_matters():
    a = combine(np.uint64(1), np.uint64(2))
    b = combine(np.uint64(2), np.uint64(1))
    assert a != b


def test_uniform_range():
    u = hash_uniform(np.arange(100000, dtype=np.uint64))
    assert (u >= 0).all() and (u < 1).all()


def test_uniform_mean_and_spread():
    u = hash_uniform(np.arange(100000, dtype=np.uint64))
    assert abs(u.mean() - 0.5) < 0.01
    assert abs(u.std() - np.sqrt(1 / 12.0)) < 0.01


def test_normal_moments():
    z = hash_normal(np.arange(100000, dtype=np.uint64))
    assert abs(z.mean()) < 0.02
    assert abs(z.std() - 1.0) < 0.02


def test_randint_range_and_coverage():
    r = hash_randint(np.arange(10000, dtype=np.uint64), 7)
    assert set(np.unique(r)) == set(range(7))


def test_randint_invalid_n():
    with pytest.raises(ValueError):
        hash_randint(np.zeros(1, dtype=np.uint64), 0)


def test_normal_matrix_shape_and_determinism():
    seeds = np.arange(50, dtype=np.uint64)
    m1 = hash_normal_matrix(seeds, 16)
    m2 = hash_normal_matrix(seeds, 16)
    assert m1.shape == (50, 16)
    np.testing.assert_array_equal(m1, m2)


def test_normal_matrix_rows_independent_of_others():
    """Row i depends only on seeds[i]."""
    seeds = np.arange(10, dtype=np.uint64)
    full = hash_normal_matrix(seeds, 8)
    single = hash_normal_matrix(seeds[3:4], 8)
    np.testing.assert_array_equal(full[3], single[0])


def test_normal_matrix_salt_changes_values():
    seeds = np.arange(10, dtype=np.uint64)
    a = hash_normal_matrix(seeds, 8, salt=0)
    b = hash_normal_matrix(seeds, 8, salt=1)
    assert not np.allclose(a, b)


def test_stable_salt_is_stable():
    assert stable_salt("model:resnet18") == stable_salt("model:resnet18")
    assert stable_salt("a") != stable_salt("b")
