"""Tests for the admission-control front door (repro.serve.frontdoor).

Covers the QoS acceptance story: per-tenant token-bucket budgets and
inflight caps with typed rejections + retry-after hints, ingest
backpressure throttling appends (never queries) off the per-shard GPU
backlog, and the two load-bearing invariants -- an admitted request's
answer is bit-identical to a no-front-door run (both index modes,
in-process and worker fabric), and a rejected request charges zero
ledger/GPU cost.
"""

import numpy as np
import pytest

from repro.core.system import FocusSystem
from repro.serve import COUNTER_KINDS, merge_counters
from repro.serve.frontdoor import (
    AdmissionRejected,
    FrontDoor,
    IngestBackpressure,
    TenantBudget,
)
from repro.serve.planner import QueryRequest

FRONTDOOR_STREAMS = ["lausanne", "auburn_c"]


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class StubService:
    """Minimal service surface that records what reached it."""

    def __init__(self):
        self.calls = []

    def query_batch(self, requests, **kwargs):
        self.calls.append(("query_batch", list(requests)))
        return ["answer-%s" % r.clazz for r in requests]

    def append(self, stream, chunk, **kwargs):
        self.calls.append(("append", stream))
        return "appended"

    def append_many(self, chunks, **kwargs):
        self.calls.append(("append_many", list(chunks)))
        return "appended-many"

    def open_stream(self, stream, **kwargs):
        self.calls.append(("open_stream", stream))
        return "opened"


def make_door(budget=None, clock=None, **door_kwargs):
    clock = clock or FakeClock()
    service = StubService()
    budget = budget or TenantBudget(qps=2.0)
    door = FrontDoor(
        service, {"t": budget}, clock=clock,
        backpressure=door_kwargs.pop("backpressure", False), **door_kwargs
    )
    return door, service, clock


# ---------------------------------------------------------------------------
# budgets + token bucket
# ---------------------------------------------------------------------------

class TestTenantBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantBudget(qps=0.0)
        with pytest.raises(ValueError):
            TenantBudget(qps=1.0, burst=0.5)
        with pytest.raises(ValueError):
            TenantBudget(qps=1.0, max_inflight=0)
        with pytest.raises(ValueError):
            TenantBudget(qps=1.0, priority=-1)

    def test_default_bucket_size(self):
        assert TenantBudget(qps=5.0).bucket_size == 5.0
        # sub-1qps tenants still get one whole token
        assert TenantBudget(qps=0.25).bucket_size == 1.0
        assert TenantBudget(qps=5.0, burst=2.0).bucket_size == 2.0


class TestRateLimit:
    def test_burst_then_rejected_with_retry_after(self):
        door, service, clock = make_door(TenantBudget(qps=2.0, burst=2.0))
        door.query_all("t", 1)
        door.query_all("t", 1)
        with pytest.raises(AdmissionRejected) as exc_info:
            door.query_all("t", 1)
        exc = exc_info.value
        assert (exc.tenant, exc.op, exc.reason) == ("t", "query", "rate")
        # bucket is empty; the next token arrives in 1/qps seconds
        assert exc.retry_after_s == pytest.approx(0.5)
        assert len(service.calls) == 2

    def test_refill_readmits(self):
        door, service, clock = make_door(TenantBudget(qps=2.0, burst=1.0))
        door.query_all("t", 1)
        with pytest.raises(AdmissionRejected):
            door.query_all("t", 1)
        clock.advance(0.5)  # exactly one token refilled
        door.query_all("t", 1)
        assert len(service.calls) == 2

    def test_bucket_caps_at_burst(self):
        door, service, clock = make_door(TenantBudget(qps=10.0, burst=2.0))
        clock.advance(60.0)  # a long idle stretch banks only `burst`
        door.query_all("t", 1)
        door.query_all("t", 1)
        with pytest.raises(AdmissionRejected):
            door.query_all("t", 1)

    def test_unknown_tenant(self):
        door, _, _ = make_door()
        with pytest.raises(KeyError):
            door.query_all("nobody", 1)

    def test_default_budget_admits_unknown_tenants(self):
        clock = FakeClock()
        door = FrontDoor(
            StubService(), {}, default_budget=TenantBudget(qps=1.0),
            clock=clock, backpressure=False,
        )
        door.query_all("walk-in", 1)
        assert door.tenant_report()["walk-in"]["admitted"] == 1


class TestInflightCap:
    def test_reentrant_call_hits_cap(self):
        """With max_inflight=1, a request issued while another is being
        served is rejected with reason "inflight" (and no token taken)."""
        clock = FakeClock()
        budget = TenantBudget(qps=100.0, burst=50.0, max_inflight=1)

        class ReentrantService(StubService):
            def query_batch(self, requests, **kwargs):
                with pytest.raises(AdmissionRejected) as exc_info:
                    door.query_all("t", 2)
                assert exc_info.value.reason == "inflight"
                return super().query_batch(requests, **kwargs)

        service = ReentrantService()
        door = FrontDoor(service, {"t": budget}, clock=clock, backpressure=False)
        door.query_all("t", 1)
        report = door.tenant_report()["t"]
        assert report["admitted"] == 1
        assert report["rejected"]["inflight"] == 1
        assert report["inflight"] == 0  # slot released on completion

    def test_slot_released_on_service_error(self):
        clock = FakeClock()

        class FailingService(StubService):
            def query_batch(self, requests, **kwargs):
                raise RuntimeError("boom")

        door = FrontDoor(
            FailingService(), {"t": TenantBudget(qps=100.0, max_inflight=1)},
            clock=clock, backpressure=False,
        )
        with pytest.raises(RuntimeError):
            door.query_all("t", 1)
        assert door.tenant_report()["t"]["inflight"] == 0


# ---------------------------------------------------------------------------
# ingest backpressure
# ---------------------------------------------------------------------------

class TestIngestBackpressure:
    def test_leaky_bucket_levels(self):
        clock = FakeClock()
        committed = {"shard-0": 0.0}
        bp = IngestBackpressure(
            lambda: committed, high_water_s=5.0, drain_rate=1.0,
            sample_interval_s=0.0, clock=clock,
        )
        assert bp.check() == (False, 0.0)
        # 8 GPU-seconds of new committed work arrive at once
        committed["shard-0"] = 8.0
        clock.advance(0.01)
        throttled, retry_after = bp.check()
        assert throttled
        assert retry_after == pytest.approx(8.0 - 0.01 - 5.0, abs=0.05)
        # the backlog drains at drain_rate per wall second
        clock.advance(4.0)
        assert bp.check()[0] is False

    def test_first_sample_is_baseline_not_backlog(self):
        """A service with a long committed history isn't instantly
        throttled: the first sample only establishes the baseline."""
        clock = FakeClock()
        bp = IngestBackpressure(
            lambda: {"s": 1e6}, high_water_s=1.0, sample_interval_s=0.0,
            clock=clock,
        )
        assert bp.check() == (False, 0.0)

    def test_sampling_is_rate_limited(self):
        clock = FakeClock()
        samples = []

        def depth_fn():
            samples.append(clock.t)
            return {"s": 0.0}

        bp = IngestBackpressure(
            depth_fn, sample_interval_s=1.0, clock=clock
        )
        for _ in range(5):
            bp.check()
            clock.advance(0.1)
        assert len(samples) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            IngestBackpressure(lambda: {}, high_water_s=0.0)
        with pytest.raises(ValueError):
            IngestBackpressure(lambda: {}, drain_rate=0.0)

    def test_throttles_appends_never_queries(self):
        clock = FakeClock()
        committed = {"shard-0": 0.0}
        bp = IngestBackpressure(
            lambda: dict(committed), high_water_s=1.0, drain_rate=1.0,
            sample_interval_s=0.0, clock=clock,
        )
        service = StubService()
        door = FrontDoor(
            service, {"t": TenantBudget(qps=1000.0, burst=100.0)},
            clock=clock, backpressure=bp,
        )
        committed["shard-0"] = 50.0
        clock.advance(0.01)
        with pytest.raises(AdmissionRejected) as exc_info:
            door.append("t", "cam", object())
        assert exc_info.value.reason == "backpressure"
        assert exc_info.value.retry_after_s > 0
        with pytest.raises(AdmissionRejected):
            door.append_many("t", [("cam", object())])
        # queries sail through the same high-water condition
        door.query_all("t", 1)
        assert [c[0] for c in service.calls] == ["query_batch"]
        assert door.tenant_report()["t"]["rejected"]["backpressure"] == 2

    def test_disabled_for_services_without_gpu_surface(self):
        door = FrontDoor(StubService(), {"t": TenantBudget(qps=10.0)})
        assert door.backpressure is None
        door.append("t", "cam", object())  # not throttled


# ---------------------------------------------------------------------------
# QoS stamping + counters
# ---------------------------------------------------------------------------

class TestStamping:
    def test_priority_and_deadline_stamped(self):
        door, service, _ = make_door(TenantBudget(qps=10.0, priority=3))
        door.query_all("t", 7, deadline_s=0.25)
        (_, requests), = service.calls
        assert requests[0].priority == 3
        assert requests[0].deadline_s == 0.25

    def test_explicit_request_deadline_wins(self):
        door, service, _ = make_door(TenantBudget(qps=10.0, priority=2))
        door.query_batch(
            "t", [QueryRequest(clazz=1, deadline_s=0.1)], deadline_s=9.0
        )
        (_, requests), = service.calls
        assert requests[0].deadline_s == 0.1
        assert requests[0].priority == 2

    def test_other_fields_forwarded_verbatim(self):
        door, service, _ = make_door(TenantBudget(qps=10.0))
        door.query_all(
            "t", 5, streams=["a", "b"], kx=3, time_range=(1.0, 2.0)
        )
        (_, requests), = service.calls
        request = requests[0]
        assert (request.clazz, request.kx) == (5, 3)
        assert list(request.streams) == ["a", "b"]
        assert request.time_range == (1.0, 2.0)


class TestCounters:
    def test_every_admission_counter_is_classified(self):
        door, _, _ = make_door()
        for key in door.counters():
            assert key in COUNTER_KINDS

    def test_counters_merge_across_doors(self):
        door_a, _, _ = make_door(TenantBudget(qps=1.0, burst=1.0))
        door_b, _, _ = make_door(TenantBudget(qps=1.0, burst=1.0))
        for door in (door_a, door_b):
            door.query_all("t", 1)
            with pytest.raises(AdmissionRejected):
                door.query_all("t", 1)
        merged = merge_counters([door_a.counters(), door_b.counters()])
        assert merged["admission-admitted"] == 2.0
        assert merged["admission-rejected-rate"] == 2.0
        # gauges are per-node readings; the fleet merge drops them
        assert "admission-inflight" not in merged


# ---------------------------------------------------------------------------
# the two properties: bit-identity + zero-cost rejection
# ---------------------------------------------------------------------------

def build_system(table_factory, live_config, index_mode):
    system = FocusSystem()
    for stream in FRONTDOOR_STREAMS:
        system.open_stream(
            stream, fps=10.0, config=live_config, index_mode=index_mode
        )
        system.append(stream, table_factory(stream, 20.0, 10.0))
    return system


def assert_same_answer(left, right):
    assert left.class_id == right.class_id
    assert sorted(left.slices) == sorted(right.slices)
    for name in left.slices:
        np.testing.assert_array_equal(
            left.slices[name].frames, right.slices[name].frames
        )
        assert left.slices[name].metrics == right.slices[name].metrics
    assert left.gt_inferences == right.gt_inferences
    assert left.candidates == right.candidates


class TestBitIdentity:
    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_admitted_answers_match_no_frontdoor(
        self, table_factory, live_config, index_mode
    ):
        """The property the whole design hangs on: the door stamps
        priority/deadline onto admitted queries, and the answers are
        still bit-identical to an un-doored run on an identical system."""
        reference = build_system(table_factory, live_config, index_mode)
        gated = build_system(table_factory, live_config, index_mode)
        door = FrontDoor(
            gated,
            {"t": TenantBudget(qps=1000.0, burst=100.0, priority=2)},
            backpressure=False,
        )
        # classes 25 and 8 dominate the two streams' synthetic
        # windows, so the round does real GT verification work
        answers = []
        for clazz in (25, 8):
            gated_answer = door.query_all("t", clazz, deadline_s=0.5)
            assert_same_answer(gated_answer, reference.query_all(clazz))
            answers.append(gated_answer)
        assert any(a.candidates > 0 for a in answers)
        # batched round with mixed per-request deadlines: same property
        requests = [
            QueryRequest(clazz=25),
            QueryRequest(clazz=34, deadline_s=0.05),
        ]
        gated_answers = door.query_batch("t", requests)
        reference_answers = reference.query_batch(
            [QueryRequest(clazz=25), QueryRequest(clazz=34)]
        )
        for gated_answer, reference_answer in zip(
            gated_answers, reference_answers
        ):
            assert_same_answer(gated_answer, reference_answer)

    def test_admitted_answers_match_worker_fabric(self, table_factory):
        """Same property through the worker-process fabric: door-gated
        answers match an un-doored router over identical worker fleets."""
        from repro.fabric import FabricRouter, FabricSupervisor

        tables = {
            stream: table_factory(stream, 20.0, 10.0)
            for stream in FRONTDOOR_STREAMS
        }
        from repro.core.config import FocusConfig
        from repro.cnn.zoo import cheap_cnn

        config = FocusConfig(model=cheap_cnn(1), k=2, cluster_threshold=0.12)

        def build(worker: bool):
            supervisor = None
            if worker:
                supervisor = FabricSupervisor(["shard-0", "shard-1"])
                shards = supervisor.clients()
            else:
                from repro.fabric import ShardNode

                shards = [ShardNode("shard-0"), ShardNode("shard-1")]
            router = FabricRouter(shards)
            for name, table in tables.items():
                router.open_stream(
                    name, fps=10.0, config=config,
                    index_mode="materialized", durable=False,
                )
                router.append(name, table)
            return router, supervisor

        reference, _ = build(worker=False)
        gated, supervisor = build(worker=True)
        try:
            door = FrontDoor(
                gated,
                {"t": TenantBudget(qps=1000.0, burst=100.0, priority=1)},
                backpressure=False,
            )
            for clazz in (25, 8):
                assert_same_answer(
                    door.query_all("t", clazz, deadline_s=0.5),
                    reference.query_all(clazz),
                )
        finally:
            if supervisor is not None:
                supervisor.shutdown()


class TestRejectedChargesNothing:
    def test_rejected_query_leaves_cost_summary_untouched(
        self, table_factory, live_config
    ):
        system = build_system(table_factory, live_config, "lazy")
        door = FrontDoor(
            system, {"t": TenantBudget(qps=1.0, burst=1.0)},
            backpressure=False,
        )
        door.query_all("t", 25)  # consumes the only token
        before = dict(system.cost_summary())
        busy_before = system.cluster.total_busy_seconds
        for _ in range(3):
            with pytest.raises(AdmissionRejected):
                door.query_all("t", 25)
        assert dict(system.cost_summary()) == before
        assert system.cluster.total_busy_seconds == busy_before
        report = door.tenant_report()["t"]
        assert report["rejected"]["rate"] == 3
        # and the bucket itself was not debited by the rejections
        assert door.counters()["admission-admitted"] == 1.0

    def test_rejected_append_ingests_nothing(self, table_factory, live_config):
        clock = FakeClock()
        system = build_system(table_factory, live_config, "lazy")
        bp = IngestBackpressure(
            lambda: {"local": system.cluster.counters()["busy-gpu-seconds"]},
            high_water_s=0.001, drain_rate=0.001, sample_interval_s=0.0,
            clock=clock,
        )
        door = FrontDoor(
            system, {"t": TenantBudget(qps=1000.0, burst=100.0)},
            clock=clock, backpressure=bp,
        )
        table = table_factory("jacksonh", 20.0, 10.0)
        system.open_stream("jacksonh", fps=10.0, config=live_config)
        rows_before = len(system.handle("jacksonh").table)
        # a query pushes committed GPU seconds past the tiny high-water
        answer = door.query_all("t", 25)
        assert answer.gt_inferences > 0
        clock.advance(0.01)
        before = dict(system.cost_summary())
        with pytest.raises(AdmissionRejected) as exc_info:
            door.append("t", "jacksonh", table)
        assert exc_info.value.reason == "backpressure"
        assert dict(system.cost_summary()) == before
        assert len(system.handle("jacksonh").table) == rows_before
