"""Unit tests for the GPU-cluster scheduling substrate."""

import pytest

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.sched.cluster import GPUCluster, IngestWorker, QueryCoordinator, WorkItem
from repro.sched.gpu import GPUDevice


class TestDevice:
    def test_submit_accumulates(self):
        dev = GPUDevice()
        done = dev.submit(2.0)
        assert done == 2.0
        assert dev.submit(1.0) == 3.0
        assert dev.busy_seconds == 3.0

    def test_not_before(self):
        dev = GPUDevice()
        assert dev.submit(1.0, not_before=5.0) == 6.0

    def test_negative_work(self):
        with pytest.raises(ValueError):
            GPUDevice().submit(-1.0)

    def test_utilization(self):
        dev = GPUDevice()
        dev.submit(5.0)
        assert dev.utilization(10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            dev.utilization(0.0)


class TestCluster:
    def test_work_spreads_across_gpus(self):
        cluster = GPUCluster(4)
        end = cluster.run([WorkItem(1.0) for _ in range(8)])
        assert end == pytest.approx(2.0)

    def test_single_gpu_serializes(self):
        cluster = GPUCluster(1)
        end = cluster.run([WorkItem(1.0) for _ in range(3)])
        assert end == pytest.approx(3.0)

    def test_makespan_near_ideal(self):
        cluster = GPUCluster(10)
        # 100 GPU-seconds on 10 GPUs ~ 10 s wall clock
        assert cluster.makespan(100.0) == pytest.approx(10.0, rel=0.2)

    def test_makespan_zero(self):
        assert GPUCluster(4).makespan(0.0) == 0.0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GPUCluster(0)
        with pytest.raises(ValueError):
            GPUCluster(2).makespan(-1.0)


class TestIngestWorker:
    def test_cheap_model_keeps_up(self):
        """A specialized cheap CNN ingests a busy stream with a small
        fraction of one GPU -- the premise of cheap ingest."""
        worker = IngestWorker(stream="s", model=cheap_cnn(3), gpu=GPUDevice())
        occupancy = worker.ingest_lag(objects_per_second=60.0)
        assert occupancy < 0.2

    def test_gt_model_cannot(self):
        """Running GT-CNN live on the same stream swamps the GPU --
        why Ingest-all is so expensive."""
        worker = IngestWorker(stream="s", model=resnet152(), gpu=GPUDevice())
        assert worker.ingest_lag(objects_per_second=120.0) > 1.0

    def test_negative_rate(self):
        worker = IngestWorker(stream="s", model=cheap_cnn(1), gpu=GPUDevice())
        with pytest.raises(ValueError):
            worker.ingest_lag(-1.0)


class TestQueryCoordinator:
    def test_parallelism_shrinks_latency(self):
        gt = resnet152()
        small = QueryCoordinator(GPUCluster(1)).latency(gt, 640)
        big = QueryCoordinator(GPUCluster(10)).latency(gt, 640)
        assert big < small
        assert big == pytest.approx(small / 10.0, rel=0.3)

    def test_zero_centroids(self):
        assert QueryCoordinator(GPUCluster(4)).latency(resnet152(), 0) == 0.0

    def test_two_minute_headline(self):
        """Paper Section 6.2: on a 10-GPU cluster, querying 24 h of
        video drops from ~1 hour (Query-all) to under 2 minutes."""
        gt = resnet152()
        # Query-all on 24h: ~276k detected objects (the paper's ~280
        # GPU-hour/month workload scaled down by motion filtering)
        query_all_objects = 276_000
        query_all_latency = QueryCoordinator(GPUCluster(10)).latency(gt, query_all_objects)
        # Focus verifies ~37x fewer centroids
        focus_latency = QueryCoordinator(GPUCluster(10)).latency(gt, query_all_objects // 37)
        assert query_all_latency > 300
        assert focus_latency < 120

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryCoordinator(GPUCluster(1), batch_size=0)
        with pytest.raises(ValueError):
            QueryCoordinator(GPUCluster(1)).latency(resnet152(), -1)


class TestCloneIdle:
    def test_clone_carries_every_knob(self):
        from repro.sched.cluster import DEFAULT_GPU

        cluster = GPUCluster(3, max_queue_history=7)
        clone = cluster.clone_idle()
        assert clone is not cluster
        assert clone.num_gpus == 3
        assert clone.spec == DEFAULT_GPU
        assert clone.max_queue_history == 7
        assert clone.total_busy_seconds == 0.0

    def test_clone_history_bound_enforced(self):
        # regression: the old what-if clones dropped max_queue_history,
        # so a tuned bound silently reverted to the 256 default
        cluster = GPUCluster(1, max_queue_history=2)
        clone = cluster.clone_idle()
        for i in range(5):
            clone.submit(WorkItem(gpu_seconds=0.1, label="w%d" % i))
        assert len(clone.queues[0]) == 2

    def test_makespan_and_latency_do_not_mutate(self):
        cluster = GPUCluster(2, max_queue_history=3)
        cluster.submit(WorkItem(gpu_seconds=1.0, label="live"))
        busy = cluster.total_busy_seconds
        queues = {k: list(v) for k, v in cluster.queues.items()}
        assert cluster.makespan(4.0) > 0
        coordinator = QueryCoordinator(cluster)
        assert coordinator.latency(resnet152(), 100) > 0
        assert cluster.total_busy_seconds == busy
        assert {k: list(v) for k, v in cluster.queues.items()} == queues
