"""Unit tests for the ingest pipeline and query engine (IT1-QT4)."""

import numpy as np
import pytest

from repro.cnn.specialize import OTHER_CLASS, specialize
from repro.cnn.zoo import cheap_cnn, resnet152
from repro.core.config import FocusConfig
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.ingest import IngestPipeline, simulate_pixel_diff
from repro.core.query import QueryEngine
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="module")
def table():
    return generate_observations("auburn_c", 90.0, 30.0)


@pytest.fixture(scope="module")
def model(table):
    return specialize(cheap_cnn(1), table.class_histogram(), 5, "auburn_c")


@pytest.fixture(scope="module")
def config(model):
    return FocusConfig(model=model, k=2, cluster_threshold=0.12)


@pytest.fixture(scope="module")
def ingested(table, config):
    return IngestPipeline(config).run(table)


@pytest.fixture(scope="module")
def engine(ingested, table, model):
    return QueryEngine(ingested.index, table, model, resnet152())


class TestPixelDiff:
    def test_first_observation_never_suppressed(self, table):
        suppressed = simulate_pixel_diff(table)
        assert not suppressed[table.obs_in_track == 0].any()

    def test_suppression_scales_with_fps(self, table):
        from repro.video.sampling import resample_fps

        low = resample_fps(table, 5.0)
        s30 = simulate_pixel_diff(table).mean()
        s5 = simulate_pixel_diff(low).mean()
        assert s5 < s30

    def test_deterministic(self, table):
        np.testing.assert_array_equal(
            simulate_pixel_diff(table), simulate_pixel_diff(table)
        )

    def test_invalid_suppression(self, table):
        with pytest.raises(ValueError):
            simulate_pixel_diff(table, max_suppression=1.0)


class TestIngest:
    def test_inference_count_excludes_suppressed(self, ingested, table):
        assert ingested.cnn_inferences == len(table) - int(ingested.suppressed.sum())

    def test_ledger_records_ingest(self, table, config):
        ledger = GPULedger()
        IngestPipeline(config, ledger=ledger).run(table)
        assert ledger.ingest_seconds > 0
        assert ledger.inferences(CostCategory.INGEST_CNN) > 0

    def test_gpu_seconds_match_model_cost(self, ingested, config):
        expected = config.model.cost_seconds(ingested.cnn_inferences)
        assert ingested.ingest_gpu_seconds == pytest.approx(expected)

    def test_disable_pixel_diff(self, table, model):
        config = FocusConfig(model=model, k=2, cluster_threshold=0.12, pixel_diff=False)
        result = IngestPipeline(config).run(table)
        assert result.cnn_inferences == len(table)
        assert result.suppression_ratio == 0.0

    def test_index_mode_validation(self, config):
        with pytest.raises(ValueError):
            IngestPipeline(config, index_mode="imaginary")

    def test_materialized_mode(self, table, config):
        from repro.core.index import TopKIndex

        result = IngestPipeline(config, index_mode="materialized").run(table)
        assert isinstance(result.index, TopKIndex)


class TestQuery:
    def test_returns_frames_of_queried_class(self, engine, table):
        cls = int(table.dominant_classes()[0])
        result = engine.query(cls)
        assert len(result.returned_frames) > 0
        # the bulk of returned rows really are the queried class
        purity = (table.class_id[result.returned_rows] == cls).mean()
        assert purity > 0.8

    def test_gt_cost_counts_all_candidates(self, engine, table):
        cls = int(table.dominant_classes()[0])
        result = engine.query(cls)
        assert result.gt_inferences == len(result.candidate_clusters)
        assert result.gpu_seconds == pytest.approx(
            engine.gt_model.cost_seconds(result.gt_inferences)
        )

    def test_matched_subset_of_candidates(self, engine, table):
        cls = int(table.dominant_classes()[1])
        result = engine.query(cls)
        assert set(result.matched_clusters) <= set(result.candidate_clusters)

    def test_time_range_restricts_results(self, engine, table):
        cls = int(table.dominant_classes()[0])
        result = engine.query(cls, time_range=(0.0, 30.0))
        if len(result.returned_rows):
            assert (table.time_s[result.returned_rows] < 30.0).all()

    def test_other_class_query(self, table):
        """Tail classes route through the OTHER bucket (Section 4.3)."""
        # specialize narrowly so some present classes fall outside the head
        narrow = specialize(cheap_cnn(1), table.class_histogram(), 2, "auburn_c")
        config = FocusConfig(model=narrow, k=2, cluster_threshold=0.12)
        ingested = IngestPipeline(config).run(table)
        engine = QueryEngine(ingested.index, table, narrow, resnet152())
        tail = [c for c in table.present_classes() if c not in narrow.head_set]
        if not tail:
            pytest.skip("no tail classes in this window")
        # pick the most frequent tail class so results are non-trivial
        hist = table.class_histogram()
        target = max(tail, key=lambda c: hist[c])
        result = engine.query(int(target))
        assert result.token == OTHER_CLASS
        assert len(result.returned_rows) > 0
        purity = (table.class_id[result.returned_rows] == target).mean()
        assert purity > 0.5

    def test_absent_class_returns_nothing(self, engine, table):
        absent = next(
            c for c in range(1000) if c not in set(table.present_classes())
        )
        result = engine.query(absent)
        assert len(result.returned_frames) == 0
        assert len(result.matched_clusters) == 0

    def test_latency_divides_by_gpus(self, engine, table):
        cls = int(table.dominant_classes()[0])
        result = engine.query(cls)
        assert result.latency_seconds(10) == pytest.approx(result.gpu_seconds / 10)
        with pytest.raises(ValueError):
            result.latency_seconds(0)

    def test_requires_ground_truth_model(self, ingested, table, model):
        with pytest.raises(ValueError):
            QueryEngine(ingested.index, table, model, cheap_cnn(1))

    def test_query_deterministic(self, engine, table):
        cls = int(table.dominant_classes()[0])
        a = engine.query(cls)
        b = engine.query(cls)
        np.testing.assert_array_equal(a.returned_frames, b.returned_frames)
