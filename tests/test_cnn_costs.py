"""Unit tests for the architecture cost model."""

import pytest

from repro.cnn.costs import (
    K80,
    TITAN_X,
    ArchSpec,
    GPUSpec,
    inference_seconds,
)


def test_resnet152_anchor():
    """The paper's anchor: ResNet152 runs 77 images/s on a K80 (2.1)."""
    arch = ArchSpec(family="resnet", conv_layers=152, gflops_override=11.4)
    assert K80.images_per_second(arch) == pytest.approx(77.0)


def test_inference_seconds_scale_with_batch():
    arch = ArchSpec(family="resnet", conv_layers=18)
    assert inference_seconds(arch, K80, batch=10) == pytest.approx(
        10 * inference_seconds(arch, K80, batch=1)
    )


def test_negative_batch_rejected():
    arch = ArchSpec(family="resnet", conv_layers=18)
    with pytest.raises(ValueError):
        inference_seconds(arch, K80, batch=-1)


def test_titan_x_faster_than_k80():
    arch = ArchSpec(family="resnet", conv_layers=152, gflops_override=11.4)
    assert TITAN_X.images_per_second(arch) > K80.images_per_second(arch)


def test_fewer_layers_cheaper():
    deep = ArchSpec(family="resnet", conv_layers=152)
    shallow = deep.with_layers_removed(100)
    assert shallow.gflops < deep.gflops
    assert shallow.conv_layers == 52


def test_smaller_input_cheaper():
    full = ArchSpec(family="resnet", conv_layers=18, input_px=224)
    half = full.with_input_px(112)
    assert half.gflops < full.gflops
    # sub-quadratic scaling: halving resolution doesn't halve cost twice
    assert half.gflops > full.gflops / 4.0


def test_cannot_remove_all_layers():
    arch = ArchSpec(family="resnet", conv_layers=5)
    with pytest.raises(ValueError):
        arch.with_layers_removed(5)


def test_unknown_family():
    with pytest.raises(ValueError):
        ArchSpec(family="transformer", conv_layers=10)


def test_invalid_dimensions():
    with pytest.raises(ValueError):
        ArchSpec(family="resnet", conv_layers=0)
    with pytest.raises(ValueError):
        ArchSpec(family="resnet", conv_layers=10, input_px=4)


def test_override_wins():
    arch = ArchSpec(family="resnet", conv_layers=18, gflops_override=3.0)
    assert arch.gflops == 3.0
    # compression clears the override
    assert arch.with_layers_removed(2).gflops != 3.0


def test_vgg_more_expensive_than_resnet18():
    """Published model costs: VGG16 ~15.5 GFLOPs >> ResNet18 ~1.8."""
    vgg = ArchSpec(family="vgg", conv_layers=16)
    r18 = ArchSpec(family="resnet", conv_layers=18)
    assert vgg.gflops > 5 * r18.gflops
