"""Unit tests for the GPU ledger, config types and FocusSystem facade."""

import numpy as np
import pytest

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.costmodel import CostCategory, GPULedger
from repro.core.system import FocusSystem
from repro.storage.docstore import DocumentStore
from repro.video.synthesis import generate_observations


class TestLedger:
    def test_record_and_totals(self):
        ledger = GPULedger()
        gt = resnet152()
        ledger.record(CostCategory.INGEST_CNN, cheap_cnn(1), 100)
        ledger.record(CostCategory.QUERY_GT, gt, 10)
        assert ledger.ingest_seconds > 0
        assert ledger.query_seconds == pytest.approx(gt.cost_seconds(10))
        assert ledger.inferences() == 110
        assert set(ledger.summary()) == {"ingest-cnn", "query-gt"}

    def test_negative_inferences(self):
        with pytest.raises(ValueError):
            GPULedger().record(CostCategory.QUERY_GT, resnet152(), -1)

    def test_merge_and_clear(self):
        a, b = GPULedger(), GPULedger()
        a.record(CostCategory.INGEST_CNN, cheap_cnn(1), 5)
        b.record(CostCategory.QUERY_GT, resnet152(), 5)
        a.merge(b)
        assert len(a.entries) == 2
        a.clear()
        assert a.seconds() == 0


class TestConfigTypes:
    def test_accuracy_target_validation(self):
        with pytest.raises(ValueError):
            AccuracyTarget(precision=0.0)
        with pytest.raises(ValueError):
            AccuracyTarget(recall=1.5)
        assert AccuracyTarget().met_by(0.96, 0.95)
        assert not AccuracyTarget().met_by(0.94, 0.99)

    def test_focus_config_validation(self):
        with pytest.raises(ValueError):
            FocusConfig(model=cheap_cnn(1), k=0, cluster_threshold=0.1)
        with pytest.raises(ValueError):
            FocusConfig(model=cheap_cnn(1), k=2, cluster_threshold=-0.1)

    def test_describe(self):
        config = FocusConfig(model=cheap_cnn(1), k=2, cluster_threshold=0.1)
        assert "K=2" in config.describe()
        off = FocusConfig(
            model=cheap_cnn(1), k=2, cluster_threshold=0.1, pixel_diff=False
        )
        assert "no pixel-diff" in off.describe()

    def test_tuner_settings_hashable(self):
        assert hash(TunerSettings()) == hash(TunerSettings())


class TestFocusSystem:
    @pytest.fixture(scope="class")
    def system(self):
        system = FocusSystem()
        system.ingest_stream("lausanne", duration_s=150.0, fps=30.0)
        return system

    def test_streams_listed(self, system):
        assert system.streams() == ["lausanne"]
        with pytest.raises(KeyError):
            system.handle("msnbc")

    def test_query_by_name_and_id(self, system):
        handle = system.handle("lausanne")
        cls = int(handle.table.dominant_classes()[0])
        by_id = system.query("lausanne", cls)
        assert by_id.class_id == cls
        assert by_id.class_name
        assert 0 <= by_id.precision <= 1
        assert 0 <= by_id.recall <= 1

    def test_query_with_time_range(self, system):
        handle = system.handle("lausanne")
        cls = int(handle.table.dominant_classes()[0])
        answer = system.query("lausanne", cls, time_range=(0.0, 50.0))
        if len(answer.frames):
            assert (handle.table.time_s[answer.result.returned_rows] < 50.0).all()

    def test_ledger_tracks_all_phases(self, system):
        summary = system.cost_summary()
        assert "retrain-gt" in summary   # GT labelling of the tuning sample
        assert "ingest-cnn" in summary
        assert "query-gt" in summary

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            FocusSystem().ingest_stream("not_a_stream", duration_s=30.0)

    def test_explicit_config_skips_tuning_choice(self):
        table = generate_observations("lausanne", 60.0, 30.0)
        from repro.cnn.specialize import specialize

        model = specialize(cheap_cnn(1), table.class_histogram(), 3, "lausanne")
        config = FocusConfig(model=model, k=2, cluster_threshold=0.12)
        system = FocusSystem()
        handle = system.ingest_stream(table, config=config)
        assert handle.config is config

    def test_save_indexes(self, system):
        store = DocumentStore()
        system.save_indexes(store)
        assert any("clusters:lausanne" in n for n in store.collection_names())
