"""Unit tests for the class taxonomy."""

import pytest

from repro.video import classes


def test_exactly_1000_classes():
    assert len(classes.CLASS_NAMES) == classes.NUM_CLASSES == 1000


def test_names_unique():
    assert len(set(classes.CLASS_NAMES)) == 1000


def test_class_name_round_trip():
    for name in ("car", "pedestrian", "suit", "microphone"):
        assert classes.class_name(classes.class_id(name)) == name


def test_class_name_out_of_range():
    with pytest.raises(ValueError):
        classes.class_name(1000)
    with pytest.raises(ValueError):
        classes.class_name(-1)


def test_class_id_unknown_name():
    with pytest.raises(KeyError):
        classes.class_id("warp-drive")


def test_domain_pools_exist():
    for domain in classes.DOMAINS:
        pool = classes.domain_pool(domain)
        assert len(pool) >= 10
        assert all(0 <= c < 1000 for c in pool)


def test_domain_pool_unknown():
    with pytest.raises(ValueError):
        classes.domain_pool("underwater")


def test_domain_pools_overlap():
    """Car and pedestrian appear in more than one domain (Section 2.2.2)."""
    traffic = set(classes.domain_pool("traffic"))
    surveillance = set(classes.domain_pool("surveillance"))
    assert traffic & surveillance


def test_tail_pool_excludes():
    pool = classes.tail_pool(exclude=[0, 1, 2])
    assert 0 not in pool and 1 not in pool and 2 not in pool
    assert len(pool) == 997


def test_confusable_pool_contains_self():
    for cid in (0, 50, 500, 999):
        assert cid in classes.confusable_pool(cid)


def test_confusable_pool_head_classes_share_pool():
    car = classes.class_id("car")
    taxi = classes.class_id("taxi")
    assert taxi in classes.confusable_pool(car)
    assert car in classes.confusable_pool(taxi)


def test_confusable_pool_tail_blocks():
    pool = classes.confusable_pool(950)
    assert all(940 <= c < 960 for c in pool)


def test_confusable_pool_key_stable():
    for cid in (3, 400, 999):
        key = classes.confusable_pool_key(cid)
        assert key == min(classes.confusable_pool(cid))


def test_confusable_pool_out_of_range():
    with pytest.raises(ValueError):
        classes.confusable_pool(1000)
