"""Unit tests for the parameter tuner (Section 4.4)."""

import numpy as np
import pytest

from repro.cnn.specialize import SpecializedClassifier
from repro.cnn.zoo import cheap_cnn, resnet152
from repro.core.config import AccuracyTarget, FocusConfig, Policy, TunerSettings
from repro.core.tuning import (
    CandidateConfig,
    ParameterTuner,
    TuningResult,
    pareto_front,
)
from repro.video.synthesis import generate_observations


def _candidate(ingest, query, viable=True, k=2, t=0.1):
    config = FocusConfig(model=cheap_cnn(1), k=k, cluster_threshold=t)
    return CandidateConfig(
        config=config,
        precision=0.99,
        recall=0.99,
        ingest_cost_norm=ingest,
        query_latency_norm=query,
        viable=viable,
    )


class TestParetoFront:
    def test_dominated_points_removed(self):
        a = _candidate(0.1, 0.1)
        b = _candidate(0.2, 0.2)  # dominated by a
        c = _candidate(0.05, 0.3)
        front = pareto_front([a, b, c])
        assert a in front and c in front and b not in front

    def test_front_sorted_by_ingest(self):
        pts = [_candidate(x, 1.0 - x) for x in (0.4, 0.1, 0.3, 0.2)]
        front = pareto_front(pts)
        costs = [c.ingest_cost_norm for c in front]
        assert costs == sorted(costs)

    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        a = _candidate(0.1, 0.1)
        assert pareto_front([a]) == [a]


class TestPolicyChoice:
    def _result(self, candidates):
        return TuningResult(
            stream="s", candidates=candidates, dominant_classes=[0], target=AccuracyTarget()
        )

    def test_balance_minimizes_sum(self):
        cheap_ingest = _candidate(0.01, 0.5)
        balanced = _candidate(0.05, 0.05)
        fast_query = _candidate(0.5, 0.01)
        result = self._result([cheap_ingest, balanced, fast_query])
        assert result.choose(Policy.BALANCE) is balanced

    def test_opt_policies(self):
        cheap_ingest = _candidate(0.01, 0.5)
        fast_query = _candidate(0.5, 0.01)
        result = self._result([cheap_ingest, fast_query])
        assert result.choose(Policy.OPT_INGEST) is cheap_ingest
        assert result.choose(Policy.OPT_QUERY) is fast_query

    def test_no_viable_raises(self):
        result = self._result([_candidate(0.1, 0.1, viable=False)])
        with pytest.raises(RuntimeError):
            result.choose(Policy.BALANCE)

    def test_viable_property_filters(self):
        good = _candidate(0.1, 0.1)
        bad = _candidate(0.01, 0.01, viable=False)
        result = self._result([good, bad])
        assert result.viable == [good]
        # the infeasible dominator must not shadow the viable point
        assert result.choose(Policy.BALANCE) is good


class TestTunerEndToEnd:
    @pytest.fixture(scope="class")
    def tuning(self):
        table = generate_observations("auburn_c", 150.0, 30.0)
        sample = table.scattered_sample(60.0)
        tuner = ParameterTuner(resnet152(), AccuracyTarget())
        return tuner.tune(sample, "auburn_c")

    def test_produces_viable_candidates(self, tuning):
        assert len(tuning.viable) >= 1

    def test_estimates_meet_target_with_margin(self, tuning):
        margin = TunerSettings().accuracy_margin
        for c in tuning.viable:
            assert c.precision >= 0.95 + margin - 1e-9
            assert c.recall >= 0.95 + margin - 1e-9

    def test_chosen_config_is_specialized(self, tuning):
        """On typical streams the tuner lands on a per-stream
        specialized model, as the paper's deployments do."""
        chosen = tuning.choose(Policy.BALANCE)
        assert isinstance(chosen.config.model, SpecializedClassifier)

    def test_norms_are_fractions(self, tuning):
        for c in tuning.candidates:
            assert 0 <= c.ingest_cost_norm <= 1.0
            assert 0 <= c.query_latency_norm <= 1.5

    def test_requires_gt_model(self):
        with pytest.raises(ValueError):
            ParameterTuner(cheap_cnn(1))

    def test_empty_sample_rejected(self):
        table = generate_observations("auburn_c", 30.0, 30.0)
        empty = table.select(np.zeros(len(table), dtype=bool))
        with pytest.raises(ValueError):
            ParameterTuner(resnet152()).tune(empty)

    def test_disable_specialization(self):
        table = generate_observations("lausanne", 120.0, 30.0)
        sample = table.scattered_sample(60.0)
        settings = TunerSettings(ls_values=(), include_generic=True)
        tuner = ParameterTuner(resnet152(), settings=settings)
        tuning = tuner.tune(sample)
        assert all(
            not isinstance(c.config.model, SpecializedClassifier)
            for c in tuning.candidates
        )
