"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cnn.hashing import combine, hash_uniform, mix64, stable_salt
from repro.cnn.costs import ArchSpec, inference_seconds
from repro.cnn.noise import true_class_ranks
from repro.core.clustering import IncrementalClusterer
from repro.core.metrics import SegmentMetrics
from repro.core.tuning import CandidateConfig, pareto_front
from repro.core.config import FocusConfig
from repro.cnn.zoo import cheap_cnn
from repro.storage.docstore import Collection

_slow = settings(deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow])


# -- hashing -----------------------------------------------------------------
@_slow
@given(st.lists(st.integers(min_value=0, max_value=2 ** 63 - 1), min_size=1, max_size=50))
def test_mix64_deterministic_any_input(values):
    arr = np.asarray(values, dtype=np.uint64)
    np.testing.assert_array_equal(mix64(arr), mix64(arr))


@_slow
@given(
    st.integers(min_value=0, max_value=2 ** 62),
    st.integers(min_value=0, max_value=2 ** 62),
)
def test_hash_uniform_in_range(seed, salt):
    u = hash_uniform(combine(np.uint64(seed), np.uint64(salt)))
    assert 0.0 <= float(u) < 1.0


@_slow
@given(st.text(min_size=0, max_size=64))
def test_stable_salt_total(text):
    assert stable_salt(text) == stable_salt(text)


# -- cost model ----------------------------------------------------------------
@_slow
@given(
    st.integers(min_value=1, max_value=200),
    st.sampled_from([224, 112, 56, 28]),
    st.integers(min_value=0, max_value=1000),
)
def test_cost_monotone_in_layers_and_batch(layers, px, batch):
    arch = ArchSpec(family="resnet", conv_layers=layers, input_px=px)
    assert arch.gflops > 0
    if layers > 1:
        smaller = arch.with_layers_removed(1)
        assert smaller.gflops < arch.gflops
    assert inference_seconds(arch, batch=batch) == pytest.approx(
        batch * inference_seconds(arch, batch=1)
    )


# -- noise model ----------------------------------------------------------------
@_slow
@given(
    st.floats(min_value=0.0, max_value=200.0),
    st.floats(min_value=0.4, max_value=3.0),
    st.integers(min_value=0, max_value=2 ** 31),
)
def test_rank_bounds_hold(dispersion, difficulty, seed):
    seeds = (np.arange(64, dtype=np.uint64) + np.uint64(seed)) * np.uint64(2654435761)
    ranks = true_class_ranks(7, seeds, np.full(64, difficulty), dispersion, 1000)
    assert ranks.min() >= 1
    assert ranks.max() <= 1000


@_slow
@given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=2 ** 31))
def test_recall_monotone_in_k(k, seed):
    seeds = (np.arange(256, dtype=np.uint64) + np.uint64(seed)) * np.uint64(0x9E3779B9)
    ranks = true_class_ranks(3, seeds, np.ones(256), 40.0, 1000)
    assert (ranks <= k).mean() <= (ranks <= k + 10).mean()


# -- clustering ----------------------------------------------------------------
@st.composite
def _feature_stream(draw):
    n_tracks = draw(st.integers(min_value=1, max_value=8))
    per_track = draw(st.integers(min_value=1, max_value=12))
    dim = 6
    rng = np.random.RandomState(draw(st.integers(min_value=0, max_value=10 ** 6)))
    anchors = rng.normal(size=(n_tracks, dim))
    anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
    feats, tracks = [], []
    for t in range(n_tracks):
        for _ in range(per_track):
            feats.append(anchors[t] + rng.normal(scale=0.02, size=dim))
            tracks.append(t)
    return np.asarray(feats), np.asarray(tracks)


@_slow
@given(_feature_stream(), st.floats(min_value=0.01, max_value=1.5))
def test_clustering_invariants(stream, threshold):
    feats, tracks = stream
    c = IncrementalClusterer(threshold=threshold, dim=feats.shape[1])
    ids = c.add(feats, tracks)
    summary = c.finalize()
    # every observation assigned exactly one valid cluster id
    assert (ids >= 0).all()
    assert ids.max() < summary.num_clusters
    # sizes partition the observations
    assert summary.sizes.sum() == len(feats)
    assert (summary.sizes >= 1).all()
    # each seed row belongs to its own cluster
    for cid in range(summary.num_clusters):
        assert summary.assignments[summary.seed_rows[cid]] == cid


@_slow
@given(_feature_stream())
def test_clustering_threshold_monotonicity(stream):
    feats, tracks = stream
    counts = []
    for threshold in (0.05, 0.5, 2.5):
        c = IncrementalClusterer(threshold=threshold, dim=feats.shape[1])
        c.add(feats, tracks)
        counts.append(c.finalize().num_clusters)
    assert counts[0] >= counts[1] >= counts[2]
    assert counts[2] >= 1


# -- metrics ----------------------------------------------------------------
@_slow
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_segment_metrics_bounds(true_n, ret_n, correct_n):
    correct = min(correct_n, true_n, ret_n)
    m = SegmentMetrics(
        class_id=0, true_segments=true_n, returned_segments=ret_n, correct_segments=correct
    )
    assert 0.0 <= m.precision <= 1.0
    assert 0.0 <= m.recall <= 1.0
    assert 0.0 <= m.f1 <= 1.0


# -- pareto front ----------------------------------------------------------------
@st.composite
def _candidates(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    out = []
    for i in range(n):
        ingest = draw(st.floats(min_value=1e-4, max_value=1.0))
        query = draw(st.floats(min_value=1e-4, max_value=1.0))
        out.append(
            CandidateConfig(
                config=FocusConfig(model=cheap_cnn(1), k=2, cluster_threshold=0.1),
                precision=0.99,
                recall=0.99,
                ingest_cost_norm=ingest,
                query_latency_norm=query,
                viable=True,
            )
        )
    return out


@_slow
@given(_candidates())
def test_pareto_front_properties(candidates):
    front = pareto_front(candidates)
    assert front, "a nonempty set always has a frontier"
    # no frontier point dominates another
    for a in front:
        for b in front:
            if a is b:
                continue
            dominates = (
                a.ingest_cost_norm <= b.ingest_cost_norm
                and a.query_latency_norm <= b.query_latency_norm
                and (a.ingest_cost_norm < b.ingest_cost_norm
                     or a.query_latency_norm < b.query_latency_norm)
            )
            assert not dominates
    # every candidate is weakly dominated by some frontier point
    for c in candidates:
        assert any(
            f.ingest_cost_norm <= c.ingest_cost_norm
            and f.query_latency_norm <= c.query_latency_norm
            for f in front
        )


# -- docstore ----------------------------------------------------------------
@_slow
@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=-5, max_value=5),
            max_size=3,
        ),
        max_size=20,
    ),
    st.integers(min_value=-5, max_value=5),
)
def test_docstore_find_matches_linear_scan(docs, probe):
    coll = Collection("t")
    coll.insert_many(docs)
    indexed = Collection("t2")
    indexed.insert_many(docs)
    indexed.create_index("a")
    query = {"a": probe}
    assert [d["_id"] for d in coll.find(query)] == [
        d["_id"] for d in indexed.find(query)
    ]
