"""Unit tests for the Table-1 stream profiles."""

import pytest

from repro.video.profiles import (
    REPRESENTATIVE_STREAMS,
    STREAMS,
    StreamProfile,
    get_profile,
    stream_names,
)


def test_thirteen_streams():
    """Table 1 lists exactly 13 streams."""
    assert len(STREAMS) == 13


def test_domains_match_table1():
    assert len(stream_names("traffic")) == 6
    assert len(stream_names("surveillance")) == 4
    assert len(stream_names("news")) == 3


def test_paper_stream_names_present():
    expected = {
        "auburn_c", "auburn_r", "city_a_d", "city_a_r", "bend", "jacksonh",
        "church_st", "lausanne", "oxford", "sittard", "cnn", "foxnews", "msnbc",
    }
    assert set(STREAMS) == expected


def test_representative_subset():
    """The 9-stream figure sample is a subset of the 13."""
    assert len(REPRESENTATIVE_STREAMS) == 9
    assert set(REPRESENTATIVE_STREAMS) <= set(STREAMS)


def test_get_profile_unknown():
    with pytest.raises(KeyError):
        get_profile("times_square")


def test_seed_is_stable_and_distinct():
    seeds = {p.seed for p in STREAMS.values()}
    assert len(seeds) == 13
    assert get_profile("auburn_c").seed == get_profile("auburn_c").seed


def test_arrival_rate_derived_from_concurrency():
    p = get_profile("auburn_c")
    assert p.arrival_rate == pytest.approx(p.day_concurrency / p.mean_track_seconds)


def test_rotating_camera_flag():
    """church_st rotates among cameras (Table 1)."""
    assert get_profile("church_st").rotating
    assert not get_profile("auburn_c").rotating


def test_present_class_fractions_span_paper_range():
    """Quiet streams 22-33%, busy news up to 69% (Section 2.2.2)."""
    fractions = [p.present_class_fraction for p in STREAMS.values()]
    assert min(fractions) >= 0.20
    assert max(fractions) >= 0.55


def test_num_present_classes_at_least_heads():
    for p in STREAMS.values():
        assert p.num_present_classes >= p.head_classes


def test_head_pool_nonempty():
    for p in STREAMS.values():
        assert len(p.head_pool()) >= p.head_classes
