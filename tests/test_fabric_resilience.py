"""Self-healing fabric tests (PR 8): deadlines, watchdog, retries.

Covers the robustness acceptance criteria: an ``inject_stall``'d
worker never blocks a router call past its deadline (the client
raises :class:`DeadlineExceeded`, the worker is condemned and its shm
leases reclaimed at *detection* time), the watchdog auto-restarts both
crashed and hung workers through the mirror+WAL path with answers
bit-identical afterwards, the crash-loop breaker trips to ``FAILED``
after ``max_consecutive_failures`` and re-arms via ``reset_failed``,
router retries keep queries/appends bit-identical and at-most-once,
and ``allow_partial=True`` answers name exactly the lost shards and
streams while strict mode still raises.  Every fabric teardown asserts
zero leaked shm segments.
"""

import queue as pyqueue
import time
from types import SimpleNamespace

import pytest

from repro.fabric import (
    DEFAULT_DEADLINES,
    FAULT_COUNTER_KEYS,
    DeadlineExceeded,
    FabricRouter,
    FabricSupervisor,
    ShardFailed,
    ShardNode,
    WorkerCrashed,
)
from repro.fabric.protocol import Reply, deadline_kind
from repro.fabric.worker import _Worker
from repro.serve.planner import QueryRequest
from repro.serve.service import COUNTER_KINDS
from repro.storage.docstore import DocumentStore
from test_fabric import FABRIC_STREAMS, assert_same_slices, frame_aligned_chunks
from test_fabric_parallel import assert_answers_equal

#: deadlines small enough that a stalled worker trips in test time but
#: roomy enough that honest work on a single-CPU runner never does
TIGHT = {"control": 2.0, "query": 3.0, "ingest": 5.0, "slow": 60.0}


def wait_until(predicate, timeout_s=30.0, interval_s=0.05, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("timed out waiting for %s" % what)


def crash_worker(supervisor, shard_id):
    """A genuine crash: kill the process out from under the supervisor
    (unlike ``supervisor.kill``, nothing is condemned until detected)."""
    process = supervisor._worker(shard_id).process
    process.kill()
    process.join()


def assert_no_leaked_deadlines(supervisor):
    """Every gather round must leave ``worker.deadline_s`` empty.

    An entry is registered per in-flight command and popped on *every*
    gather exit (success, condemnation, deadline kill); anything left
    once the fleet is quiescent is the PR 9 submit/gather-path leak.
    """
    for shard_id in supervisor.shard_ids():
        worker = supervisor._worker(shard_id)
        assert worker.deadline_s == {}, (
            "shard %r leaked reply-deadline entries: %r"
            % (shard_id, worker.deadline_s)
        )


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_unknown_deadline_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown deadline kinds"):
            FabricSupervisor(["solo"], deadlines={"bogus": 1.0})

    def test_deadline_table(self):
        assert deadline_kind("ping") == "control"
        assert deadline_kind("query_batch") == "query"
        assert deadline_kind("append") == "ingest"
        assert deadline_kind("recover") == "slow"
        # an op this table has never heard of gets the most generous
        # budget rather than a spurious kill
        assert deadline_kind("some_future_op") == "slow"
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            assert supervisor.deadline_for("query") == DEFAULT_DEADLINES["query"]
        with FabricSupervisor(
            ["solo"], use_shm=False, deadlines={"query": 7.5}
        ) as supervisor:
            assert supervisor.deadline_for("query") == 7.5
            assert supervisor.deadline_for("ping") == DEFAULT_DEADLINES["control"]

    def test_stalled_worker_trips_deadline_then_heals(self):
        """The tentpole sequence: stall -> DeadlineExceeded (well before
        the stall ends) -> condemned -> ensure_alive respawns -> healthy,
        with both fault counters visible in cost_summary."""
        with FabricSupervisor(
            ["solo"], use_shm=False, deadlines={"control": 0.75}
        ) as supervisor:
            client = supervisor.client("solo")
            client.inject_stall(30.0)
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                client.ping()
            assert time.monotonic() - started < 10.0
            assert not supervisor.healthy("solo")
            assert not supervisor.alive("solo")  # killed, not just flagged
            health = supervisor.health("solo")
            assert health["state"] == "healthy"  # breaker armed, not tripped
            assert health["consecutive_failures"] == 1
            assert "deadline" in health["last_error"]
            # a condemned incarnation refuses traffic until the respawn
            with pytest.raises(WorkerCrashed):
                client.ping()
            assert supervisor.ensure_alive("solo") is True
            client.ping()
            assert supervisor.healthy("solo")
            assert supervisor.health("solo")["consecutive_failures"] == 0
            costs = client.cost_summary()
            assert costs["deadline_exceeded"] == 1.0
            assert costs["worker_restarts"] == 1.0

    def test_per_call_deadline_override(self):
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            client = supervisor.client("solo")
            client.inject_stall(30.0)
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                client.ping(deadline_s=0.5)  # default control budget is 30s
            assert time.monotonic() - started < 10.0

    def test_slow_worker_stays_within_deadline(self):
        """Latency injection short of the deadline is absorbed: no
        condemn, no restart, no fault counters."""
        with FabricSupervisor(
            ["solo"], use_shm=False, deadlines={"control": 5.0}
        ) as supervisor:
            client = supervisor.client("solo")
            client.inject_slow(0.1)
            client.ping()
            assert client.streams() == []
            assert supervisor.healthy("solo")
            costs = client.cost_summary()
            assert costs["deadline_exceeded"] == 0.0
            assert costs["worker_restarts"] == 0.0


# ---------------------------------------------------------------------------
# the reply/liveness race (regression)
# ---------------------------------------------------------------------------

class _RacingProcess:
    """Stub process that 'dies' with its reply still in flight: the
    liveness check itself lands the reply in the queue, modelling a
    worker whose reply was enqueued between the queue-poll timeout and
    ``is_alive`` returning False."""

    def __init__(self, reply_q, reply=None):
        self._reply_q = reply_q
        self._reply = reply
        self.exitcode = -9

    def is_alive(self):
        if self._reply is not None:
            self._reply_q.put(self._reply)
            self._reply = None
        return False

    def kill(self):
        pass

    def join(self, timeout=None):
        pass


class TestReplyLivenessRace:
    def test_reply_landing_at_death_is_drained_not_lost(self):
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            client = supervisor.client("solo")
            reply_q = pyqueue.Queue()
            reply = Reply(corr_id=0, ok=True, value="pong")
            worker = _Worker(
                _RacingProcess(reply_q, reply), None, reply_q, DocumentStore()
            )
            got = client._await_reply(worker)
            assert got is reply
            assert not worker.condemned  # the command was NOT lost

    def test_dead_worker_with_no_reply_is_condemned(self):
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            client = supervisor.client("solo")
            worker = _Worker(
                _RacingProcess(pyqueue.Queue()), None, pyqueue.Queue(),
                DocumentStore(),
            )
            with pytest.raises(WorkerCrashed, match="died before replying"):
                client._await_reply(worker)
            assert worker.condemned


# ---------------------------------------------------------------------------
# watchdog auto-restart
# ---------------------------------------------------------------------------

class TestWatchdog:
    @pytest.fixture()
    def solo(self, table_factory, live_config, index_mode):
        table = table_factory("jacksonh", 20.0, 10.0)
        chunks = frame_aligned_chunks(table, pieces=2)
        with FabricSupervisor(["solo"], deadlines=TIGHT) as supervisor:
            client = supervisor.client("solo")
            reference = ShardNode("solo-ref")
            for node in (client, reference):
                node.open_stream(
                    "jacksonh", fps=10.0, config=live_config,
                    index_mode=index_mode, durable=True,
                )
                for chunk in chunks:
                    node.append("jacksonh", chunk)
            yield SimpleNamespace(
                supervisor=supervisor,
                client=client,
                reference=reference,
                configs={"jacksonh": live_config},
            )
            supervisor.stop_watchdog()
            assert_no_leaked_deadlines(supervisor)
        assert supervisor.leaked_segments == []

    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_restarts_crashed_worker(self, solo, index_mode):
        crash_worker(solo.supervisor, "solo")
        watchdog = solo.supervisor.start_watchdog(
            interval_s=0.1, configs=solo.configs
        )
        wait_until(
            lambda: watchdog.restarts >= 1 and solo.supervisor.healthy("solo"),
            what="watchdog restart after crash",
        )
        for clazz in (1, 2):
            assert_answers_equal(
                solo.client.query("jacksonh", clazz),
                solo.reference.query("jacksonh", clazz),
            )

    @pytest.mark.parametrize("index_mode", ["lazy"])
    def test_restarts_hung_worker_via_heartbeat(self, solo, index_mode):
        """A worker hung *between* commands (nobody waiting on it) is
        caught by the watchdog's own heartbeat deadline."""
        solo.client.inject_stall(30.0)  # the next op -- the heartbeat
        solo.supervisor.start_watchdog(
            interval_s=0.1, heartbeat_deadline_s=0.5, configs=solo.configs
        )
        wait_until(
            lambda: solo.client._worker().faults["worker_restarts"] >= 1.0
            and solo.supervisor.healthy("solo"),
            what="watchdog restart of hung worker",
        )
        assert_answers_equal(
            solo.client.query("jacksonh", 1),
            solo.reference.query("jacksonh", 1),
        )
        assert solo.client.cost_summary()["deadline_exceeded"] >= 1.0

    @pytest.mark.parametrize("index_mode", ["lazy"])
    def test_start_watchdog_idempotent(self, solo, index_mode):
        first = solo.supervisor.start_watchdog(interval_s=0.2)
        assert solo.supervisor.start_watchdog(interval_s=0.2) is first
        solo.supervisor.stop_watchdog()
        assert solo.supervisor.start_watchdog(interval_s=0.2) is not first


# ---------------------------------------------------------------------------
# crash-loop circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_and_rearms(self, monkeypatch):
        with FabricSupervisor(
            ["solo"],
            use_shm=False,
            max_consecutive_failures=2,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
        ) as supervisor:
            client = supervisor.client("solo")
            crash_worker(supervisor, "solo")
            with pytest.raises(WorkerCrashed):
                client.ping()  # detection charges failure #1
            spawn = supervisor._spawn
            monkeypatch.setattr(
                supervisor,
                "_spawn",
                lambda *a, **k: (_ for _ in ()).throw(
                    RuntimeError("spawn refused")
                ),
            )
            # failed restart is failure #2 -> the breaker trips
            with pytest.raises(ShardFailed):
                supervisor.ensure_alive("solo")
            assert supervisor.health("solo")["state"] == "failed"
            assert not supervisor.healthy("solo")
            # latched: every later attempt refuses instantly
            with pytest.raises(ShardFailed, match="reset_failed"):
                supervisor.ensure_alive("solo")
            monkeypatch.setattr(supervisor, "_spawn", spawn)
            with pytest.raises(ShardFailed):
                supervisor.ensure_alive("solo")  # cause fixed, still latched
            supervisor.reset_failed("solo")
            assert supervisor.ensure_alive("solo") is True
            client.ping()
            assert supervisor.healthy("solo")
            assert supervisor.health("solo") == {
                "state": "healthy",
                "consecutive_failures": 0,
                "last_error": None,
            }

    def test_manual_kill_does_not_charge_breaker(self):
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            supervisor.kill("solo")
            assert supervisor.health("solo")["consecutive_failures"] == 0
            assert supervisor.ensure_alive("solo") is True
            supervisor.client("solo").ping()


# ---------------------------------------------------------------------------
# router retry + failover (fleet, staged like TestModeEquivalence)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fleet(table_factory, live_config):
    """2 worker shards + an in-process reference fleet, first half of
    every stream ingested; the staged tests crash/stall workers and
    append the second half under failover."""
    tables = {s: table_factory(s, 20.0, 10.0) for s in FABRIC_STREAMS}
    configs = {s: live_config for s in FABRIC_STREAMS}
    halves = {s: frame_aligned_chunks(t, pieces=2) for s, t in tables.items()}
    with FabricSupervisor(
        ["shard-0", "shard-1"], deadlines=TIGHT
    ) as supervisor:
        remote = FabricRouter(
            supervisor.clients(), max_retries=2, recover_configs=configs
        )
        local = FabricRouter([ShardNode(sid) for sid in supervisor.shard_ids()])
        for name in sorted(tables):
            kwargs = dict(
                fps=10.0, config=live_config, index_mode="lazy", durable=True
            )
            remote.open_stream(name, **kwargs)
            local.open_stream(name, **kwargs)
            remote.append(name, halves[name][0])
            local.append(name, halves[name][0])
        yield SimpleNamespace(
            supervisor=supervisor, remote=remote, local=local, halves=halves
        )
        supervisor.stop_watchdog()
        assert_no_leaked_deadlines(supervisor)
    assert supervisor.leaked_segments == []


class TestRouterFailover:
    """Staged: each test leaves the fleet healthy for the next."""

    def test_query_retried_after_crash(self, fleet):
        victim = fleet.remote.placement.shard_of("lausanne")
        crash_worker(fleet.supervisor, victim)
        assert_answers_equal(
            fleet.remote.query("lausanne", 1),
            fleet.local.query("lausanne", 1),
        )
        assert fleet.supervisor.healthy(victim)
        assert fleet.remote.cost_summary()["retries"] >= 1.0

    def test_query_batch_retried_after_stall(self, fleet):
        victim = fleet.remote.placement.shard_of("auburn_c")
        fleet.supervisor.client(victim).inject_stall(30.0)
        requests = [QueryRequest(clazz=clazz) for clazz in (1, 2)]
        remote_answers = fleet.remote.query_batch(requests)
        local_answers = fleet.local.query_batch(requests)
        for remote_answer, local_answer in zip(remote_answers, local_answers):
            assert remote_answer.degraded is None
            assert not remote_answer.is_degraded
            assert_same_slices(remote_answer, local_answer)
        assert fleet.supervisor.healthy(victim)
        assert fleet.remote.cost_summary()["deadline_exceeded"] >= 1.0

    def test_append_many_replayed_after_crash(self, fleet):
        victim = fleet.remote.placement.shard_of("jacksonh")
        crash_worker(fleet.supervisor, victim)
        batch = [(name, fleet.halves[name][1]) for name in sorted(fleet.halves)]
        remote_reports = fleet.remote.append_many(batch)
        local_reports = [
            fleet.local.append(name, chunk) for name, chunk in batch
        ]
        for remote_report, local_report in zip(remote_reports, local_reports):
            assert remote_report.chunk_rows == local_report.chunk_rows
            assert remote_report.total_rows == local_report.total_rows
            assert remote_report.watermark_s == local_report.watermark_s
        for clazz in (1, 2):
            assert_same_slices(
                fleet.remote.query_all(clazz), fleet.local.query_all(clazz)
            )

    def test_fault_counters_aggregate(self, fleet):
        remote_costs = fleet.remote.cost_summary()
        local_costs = fleet.local.cost_summary()
        # key parity with the in-process fleet (observability contract)
        assert sorted(remote_costs) == sorted(local_costs)
        assert remote_costs["retries"] >= 2.0
        assert remote_costs["worker_restarts"] >= 2.0
        for key in FAULT_COUNTER_KEYS:
            assert local_costs[key] == 0.0  # nothing ever failed in-process


# ---------------------------------------------------------------------------
# at-most-once appends under retry
# ---------------------------------------------------------------------------

class TestAtMostOnceAppend:
    def test_dropped_reply_append_retries_exactly_once(
        self, table_factory, live_config
    ):
        """The worker executes the append and journals it, then the
        reply is swallowed: the delta never reaches the mirror, so the
        respawned worker recovers *without* it and the router's retry
        lands the chunk exactly once -- answers bit-identical to a
        reference that appended each chunk once."""
        chunks = frame_aligned_chunks(
            table_factory("jacksonh", 20.0, 10.0), pieces=4
        )
        with FabricSupervisor(
            ["solo"], deadlines={"control": 5.0, "query": 10.0,
                                 "ingest": 2.0, "slow": 60.0}
        ) as supervisor:
            router = FabricRouter(
                supervisor.clients(),
                max_retries=2,
                recover_configs={"jacksonh": live_config},
            )
            reference = ShardNode("solo-ref")
            kwargs = dict(
                fps=10.0, config=live_config, index_mode="lazy", durable=True
            )
            router.open_stream("jacksonh", **kwargs)
            reference.open_stream("jacksonh", **kwargs)
            for chunk in chunks[:2]:
                router.append("jacksonh", chunk)
                reference.append("jacksonh", chunk)
            supervisor.client("solo").inject_drop_reply(1)
            report = router.append("jacksonh", chunks[2])  # retried inside
            reference_report = reference.append("jacksonh", chunks[2])
            assert report.total_rows == reference_report.total_rows
            router.append("jacksonh", chunks[3])
            reference.append("jacksonh", chunks[3])
            for clazz in (1, 2):
                assert_answers_equal(
                    router.query("jacksonh", clazz),
                    reference.query("jacksonh", clazz),
                )
            costs = router.cost_summary()
            assert costs["retries"] >= 1.0
            assert costs["deadline_exceeded"] >= 1.0
        assert supervisor.leaked_segments == []


# ---------------------------------------------------------------------------
# shm lease reclamation at failure time
# ---------------------------------------------------------------------------

class TestLeaseReclamation:
    def test_leases_reclaimed_at_condemn_not_restart(
        self, table_factory, live_config
    ):
        chunks = frame_aligned_chunks(
            table_factory("jacksonh", 20.0, 10.0), pieces=2
        )
        with FabricSupervisor(
            ["solo"],
            shm_threshold=1,  # every bulk payload leases a segment
            deadlines={"control": 5.0, "query": 10.0,
                       "ingest": 2.0, "slow": 60.0},
        ) as supervisor:
            if supervisor._pool is None:
                pytest.skip("host cannot serve POSIX shared memory")
            client = supervisor.client("solo")
            client.open_stream(
                "jacksonh", fps=10.0, config=live_config,
                index_mode="lazy", durable=True,
            )
            client.append("jacksonh", chunks[0])
            client.inject_stall(30.0)
            with pytest.raises(DeadlineExceeded):
                client.append("jacksonh", chunks[1])
            # condemned -> leases back in the pool NOW, before any restart
            assert supervisor._pool.leased_names() == []
            supervisor.ensure_alive(
                "solo", configs={"jacksonh": live_config}
            )
            client.append("jacksonh", chunks[1])  # at-most-once retry
            reference = ShardNode("solo-ref")
            reference.open_stream(
                "jacksonh", fps=10.0, config=live_config,
                index_mode="lazy", durable=True,
            )
            for chunk in chunks:
                reference.append("jacksonh", chunk)
            assert_answers_equal(
                client.query("jacksonh", 1), reference.query("jacksonh", 1)
            )
            assert supervisor._pool.leased_names() == []
        assert supervisor.leaked_segments == []


# ---------------------------------------------------------------------------
# degraded partial answers
# ---------------------------------------------------------------------------

class TestPartialAnswers:
    @pytest.fixture()
    def outage(self, table_factory, live_config):
        """2 shards ingested, then the shard holding 'lausanne' crashed
        with retries disabled: the outage stays an outage."""
        tables = {s: table_factory(s, 20.0, 10.0) for s in FABRIC_STREAMS}
        with FabricSupervisor(
            ["shard-0", "shard-1"], deadlines=TIGHT
        ) as supervisor:
            remote = FabricRouter(supervisor.clients(), max_retries=0)
            local = FabricRouter(
                [ShardNode(sid) for sid in supervisor.shard_ids()]
            )
            for name in sorted(tables):
                kwargs = dict(
                    fps=10.0, config=live_config, index_mode="lazy",
                    durable=True,
                )
                remote.open_stream(name, **kwargs)
                local.open_stream(name, **kwargs)
                for chunk in frame_aligned_chunks(tables[name], pieces=2):
                    remote.append(name, chunk)
                    local.append(name, chunk)
            victim = remote.placement.shard_of("lausanne")
            lost = sorted(remote.placement.streams_on(victim))
            surviving = sorted(set(tables) - set(lost))
            assert surviving, "placement put every stream on one shard"
            crash_worker(supervisor, victim)
            yield SimpleNamespace(
                supervisor=supervisor,
                remote=remote,
                local=local,
                victim=victim,
                lost=lost,
                surviving=surviving,
                configs={s: live_config for s in tables},
            )
        assert supervisor.leaked_segments == []

    def test_strict_mode_still_raises(self, outage):
        with pytest.raises((WorkerCrashed, DeadlineExceeded)):
            outage.remote.query_all(1)

    def test_partial_answer_names_exactly_the_lost_shards(self, outage):
        answer = outage.remote.query_all(1, allow_partial=True)
        assert answer.is_degraded
        assert answer.degraded.shards == (outage.victim,)
        assert answer.degraded.streams == tuple(outage.lost)
        # the surviving slices are the strict answer's, bit for bit
        reference = outage.local.query_all(1, streams=outage.surviving)
        assert sorted(answer.slices) == outage.surviving
        assert_same_slices(answer, reference)
        # cost_summary needs the whole fleet up; read the router-side
        # ledger directly while the outage is still in progress
        assert outage.remote._fault_counters["partial_answers"] >= 1.0

    def test_fully_lost_request_degrades_to_empty(self, outage):
        answer = outage.remote.query_all(
            1, streams=outage.lost, allow_partial=True
        )
        assert answer.is_degraded
        assert answer.degraded.shards == (outage.victim,)
        assert answer.degraded.streams == tuple(outage.lost)
        assert answer.slices == {}
        assert answer.class_id == 1
        assert answer.gt_inferences == 0

    def test_untouched_request_stays_whole(self, outage):
        """A batch where one request never touches the lost shard: only
        the touched request is marked degraded."""
        requests = [
            QueryRequest(clazz=1, streams=outage.surviving),
            QueryRequest(clazz=1),
        ]
        whole, touched = outage.remote.query_batch(
            requests, allow_partial=True
        )
        assert whole.degraded is None
        assert touched.degraded is not None
        assert touched.degraded.shards == (outage.victim,)

    def test_recovery_ends_degradation(self, outage):
        assert outage.supervisor.ensure_alive(
            outage.victim, configs=outage.configs
        )
        answer = outage.remote.query_all(1, allow_partial=True)
        assert answer.degraded is None
        assert_same_slices(answer, outage.local.query_all(1))


# ---------------------------------------------------------------------------
# observability parity
# ---------------------------------------------------------------------------

class TestFaultObservability:
    def test_counter_kinds_cover_fault_keys(self):
        for key in FAULT_COUNTER_KEYS:
            assert COUNTER_KINDS[key] == "sum"

    def test_in_process_shard_reports_zeroed_fault_keys(self):
        costs = ShardNode("solo").cost_summary()
        for key in FAULT_COUNTER_KEYS:
            assert costs[key] == 0.0


# ---------------------------------------------------------------------------
# reply-deadline map hygiene (PR 9 leak regression)
# ---------------------------------------------------------------------------

class TestDeadlineMapHygiene:
    """``worker.deadline_s`` must drain on every gather exit, not just
    the success path: a deadline kill or crash-detected-at-submit used
    to leak the in-flight entries for the incarnation's lifetime."""

    def test_map_empty_after_every_gather_round(self, table_factory, live_config):
        with FabricSupervisor(["solo"], deadlines=TIGHT) as supervisor:
            client = supervisor.client("solo")
            assert_no_leaked_deadlines(supervisor)  # idle fleet
            client.streams()
            assert_no_leaked_deadlines(supervisor)  # success path

            # deadline-kill path: the stalled command's entry must die
            # with the condemned incarnation
            client.inject_stall(30.0)
            with pytest.raises(DeadlineExceeded):
                client.streams()
            assert_no_leaked_deadlines(supervisor)

            assert supervisor.ensure_alive("solo")
            assert client.streams() == []
            assert_no_leaked_deadlines(supervisor)

            # crash-found-at-submit path: nothing may be registered for
            # a command that never reached the queue
            crash_worker(supervisor, "solo")
            with pytest.raises(WorkerCrashed):
                client.streams()
            assert_no_leaked_deadlines(supervisor)
        assert supervisor.leaked_segments == []
