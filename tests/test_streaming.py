"""Live ingest: StreamIngestor, mutable indexes, checkpoints, serving.

The invariant under test throughout: a stream ingested chunk by chunk
is indistinguishable, at every chunk boundary, from a one-shot ingest
of the same prefix window.
"""

import numpy as np
import pytest

from repro.cnn.zoo import resnet152
from repro.core.clustering import IncrementalClusterer, cluster_table
from repro.core.config import FocusConfig
from repro.core.index import IndexReader, LazyTopKIndex, TopKIndex
from repro.core.ingest import IngestPipeline
from repro.core.query import QueryEngine
from repro.core.streaming import StreamIngestor, empty_observation_table
from repro.core.system import FocusSystem
from repro.serve.cache import VerificationCache
from repro.storage.docstore import DocumentStore
from repro.video.synthesis import ObservationTable


# the workload/model/config come from the shared conftest factories
# (session-scoped), so other suites reuse the same synthesized tables
@pytest.fixture(scope="module")
def table(live_table):
    return live_table


@pytest.fixture(scope="module")
def model(cheap_model):
    return cheap_model


@pytest.fixture(scope="module")
def config(live_config):
    return live_config


def row_chunks(table, n_chunks):
    """Split a table into row-range chunks (stream arrival order)."""
    n = len(table)
    bounds = [n * i // n_chunks for i in range(n_chunks + 1)]
    chunks = []
    for a, b in zip(bounds, bounds[1:]):
        mask = np.zeros(n, dtype=bool)
        mask[a:b] = True
        chunks.append(table.select(mask))
    return chunks, bounds


class TestStreamIngestorEquivalence:
    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_query_at_every_watermark_matches_one_shot(
        self, table, model, config, index_mode
    ):
        """Acceptance: at every chunk boundary, query answers (frames and
        GT-inference counts) equal a one-shot ingest of the same prefix."""
        gt = resnet152()
        chunks, bounds = row_chunks(table, 4)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        classes = [int(c) for c in table.dominant_classes()[:3]]
        for chunk, end in zip(chunks, bounds[1:]):
            ingestor.push(chunk)
            mask = np.zeros(len(table), dtype=bool)
            mask[:end] = True
            prefix = table.select(mask)
            oneshot = IngestPipeline(config, index_mode=index_mode).run(prefix)
            live = ingestor.result
            np.testing.assert_array_equal(
                live.clusters.assignments, oneshot.clusters.assignments
            )
            np.testing.assert_array_equal(live.suppressed, oneshot.suppressed)
            assert live.cnn_inferences == oneshot.cnn_inferences
            ref = QueryEngine(oneshot.index, prefix, config.model, gt)
            streamed = QueryEngine(live.index, live.table, config.model, gt)
            for cls in classes:
                a = ref.query(cls)
                b = streamed.query(cls)
                np.testing.assert_array_equal(a.returned_frames, b.returned_frames)
                np.testing.assert_array_equal(a.returned_rows, b.returned_rows)
                assert a.gt_inferences == b.gt_inferences

    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_materialized_entries_match_build(self, table, config, index_mode):
        """The streamed index's per-cluster records equal a one-shot build."""
        chunks, _ = row_chunks(table, 3)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        for chunk in chunks:
            ingestor.push(chunk)
        reference = TopKIndex.build(
            table, config.model, config.k, ingestor.clusters
        )
        streamed = ingestor.index
        if index_mode == "lazy":
            streamed = streamed.materialize()
        assert streamed.num_clusters == reference.num_clusters
        for cid in range(reference.num_clusters):
            assert streamed.cluster(cid) == reference.cluster(cid)
            np.testing.assert_array_equal(
                streamed.members(cid), reference.members(cid)
            )
            np.testing.assert_array_equal(
                streamed.frames(cid), reference.frames(cid)
            )

    def test_clusters_grow_across_chunk_boundaries(self, table, config):
        chunks, _ = row_chunks(table, 3)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode="materialized"
        )
        first = ingestor.push(chunks[0])
        assert first.new_clusters and not first.grown_clusters
        sizes_before = {
            cid: ingestor.index.cluster(cid).size for cid in first.new_clusters
        }
        second = ingestor.push(chunks[1])
        assert second.grown_clusters, "tracks span chunk boundaries"
        for cid in second.grown_clusters:
            entry = ingestor.index.cluster(cid)
            assert entry.size > sizes_before[cid]
            assert len(ingestor.index.members(cid)) == entry.size
            assert entry.last_time_s >= ingestor.index.cluster(cid).first_time_s

    def test_watermark_advances(self, table, config):
        chunks, _ = row_chunks(table, 2)
        ingestor = StreamIngestor(config, table.stream, fps=table.fps)
        assert ingestor.watermark_s == 0.0
        r1 = ingestor.push(chunks[0])
        assert r1.watermark_s == pytest.approx(float(chunks[0].time_s.max()))
        r2 = ingestor.push(chunks[1], watermark_s=120.0)
        assert r2.watermark_s == 120.0
        assert ingestor.table.duration_s == 120.0

    def test_watermark_never_trails_ingested_observations(self, table, config):
        """An explicit watermark_s below the chunk's last observation
        must not declare ingested video unseen (duration < max time)."""
        chunks, _ = row_chunks(table, 2)
        ingestor = StreamIngestor(config, table.stream, fps=table.fps)
        report = ingestor.push(chunks[0], watermark_s=1.0)
        last_obs = float(chunks[0].time_s.max())
        assert report.watermark_s == pytest.approx(last_obs)
        assert ingestor.table.duration_s >= last_obs
        assert 0.0 <= ingestor.table.empty_frame_fraction() <= 1.0

    def test_empty_stream_is_queryable(self, config):
        ingestor = StreamIngestor(config, "auburn_c", fps=30.0)
        engine = QueryEngine(
            ingestor.index, ingestor.table, config.model, resnet152()
        )
        result = engine.query(0)
        assert len(result.returned_frames) == 0

    def test_chunk_validation(self, table, config):
        ingestor = StreamIngestor(config, table.stream, fps=table.fps)
        with pytest.raises(ValueError, match="stream"):
            ingestor.push(empty_observation_table("other_stream", table.fps))
        with pytest.raises(ValueError, match="fps"):
            ingestor.push(empty_observation_table(table.stream, table.fps / 2))
        chunks, _ = row_chunks(table, 2)
        ingestor.push(chunks[1])
        with pytest.raises(ValueError, match="stream order"):
            ingestor.push(chunks[0])

    def test_index_mode_validation(self, config):
        with pytest.raises(ValueError):
            StreamIngestor(config, "auburn_c", index_mode="imaginary")


class TestClustererAcrossChunks:
    def test_snapshot_keeps_state(self, table, config):
        clusterer = IncrementalClusterer(
            threshold=config.cluster_threshold, dim=config.model.feature_dim
        )
        extractor = config.model.feature_extractor()
        chunks, _ = row_chunks(table, 3)
        clusterer.add(
            extractor.extract(chunks[0]).astype(np.float64), chunks[0].track_id
        )
        snap = clusterer.snapshot()
        assert snap.num_observations == len(chunks[0])
        clusterer.add(
            extractor.extract(chunks[1]).astype(np.float64), chunks[1].track_id
        )
        grown = clusterer.snapshot()
        assert grown.num_observations == len(chunks[0]) + len(chunks[1])
        # the earlier snapshot is an immutable prefix of the later one
        np.testing.assert_array_equal(
            grown.assignments[: len(chunks[0])], snap.assignments
        )
        np.testing.assert_array_equal(
            grown.seed_rows[: snap.num_clusters], snap.seed_rows
        )

    def test_eviction_of_track_shortcut_across_pushes(self, table, config):
        """A tight live-cluster cap forces evictions inside and across
        chunks; streamed assignments still equal the one-shot pass."""
        max_live = 8
        chunks, _ = row_chunks(table, 4)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, max_live_clusters=max_live
        )
        for chunk in chunks:
            ingestor.push(chunk)
        reference = cluster_table(
            table,
            config.model,
            threshold=config.cluster_threshold,
            max_live_clusters=max_live,
            suppressed=ingestor.result.suppressed,
        )
        assert ingestor.clusters.num_clusters > max_live, "evictions happened"
        np.testing.assert_array_equal(
            ingestor.clusters.assignments, reference.assignments
        )

    def test_members_by_cluster_cached(self, table, config):
        summary = cluster_table(
            table, config.model, threshold=config.cluster_threshold
        )
        first = summary.members_by_cluster()
        assert summary.members_by_cluster() is first


class TestMutableIndexes:
    def test_add_cluster_still_rejects_known_id(self, table, model, config):
        ingested = IngestPipeline(config, index_mode="materialized").run(table)
        index = ingested.index
        entry = index.cluster(0)
        with pytest.raises(ValueError, match="extend_cluster"):
            index.add_cluster(entry, index.members(0), index.frames(0))

    def test_extend_cluster_unknown_id(self, config):
        index = TopKIndex("s", config.model.name, config.k)
        with pytest.raises(KeyError):
            index.extend_cluster(7, np.array([1]), np.array([1]))

    def test_extend_cluster_empty_is_noop(self, table, config):
        ingested = IngestPipeline(config, index_mode="materialized").run(table)
        before = ingested.index.cluster(0)
        after = ingested.index.extend_cluster(
            0, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert before == after

    def test_lazy_refresh_rejects_non_extension(self, table, model, config):
        chunks, _ = row_chunks(table, 2)
        ingestor = StreamIngestor(config, table.stream, fps=table.fps)
        ingestor.push(chunks[0])
        other = cluster_table(
            table, model, threshold=config.cluster_threshold / 4
        )
        with pytest.raises(ValueError, match="extending"):
            ingestor.index.refresh(table, other)

    def test_lazy_lookup_cache_survives_pure_growth(self, table, model, config):
        """Growing existing clusters keeps cached lookups; new centroids
        invalidate them."""
        chunks, _ = row_chunks(table, 2)
        ingestor = StreamIngestor(config, table.stream, fps=table.fps)
        ingestor.push(chunks[0])
        index = ingestor.index
        token = int(table.dominant_classes()[0])
        index.lookup(token)
        assert index._lookup_cache
        cached = dict(index._lookup_cache)
        # simulate pure growth: refresh with the same snapshot
        new_ids, grown_ids = index.refresh(ingestor.table, ingestor.clusters)
        assert not new_ids
        assert index._lookup_cache == cached
        # a real chunk introduces new centroids -> cache dropped
        report = ingestor.push(chunks[1])
        assert report.new_clusters
        assert not index._lookup_cache

    def test_index_reader_protocol(self, table, config):
        lazy = IngestPipeline(config, index_mode="lazy").run(table).index
        explicit = IngestPipeline(config, index_mode="materialized").run(table).index
        assert isinstance(lazy, IndexReader)
        assert isinstance(explicit, IndexReader)
        assert isinstance(lazy, LazyTopKIndex)
        assert isinstance(explicit, TopKIndex)


class TestIncrementalCheckpoints:
    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_checkpoint_never_rewrites_unchanged_docs(
        self, table, config, index_mode
    ):
        """Acceptance: incremental checkpoints upsert only the delta."""
        chunks, _ = row_chunks(table, 3)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        store = DocumentStore()
        ingestor.push(chunks[0])
        ingestor.checkpoint(store)
        coll = store.collection("clusters:%s" % table.stream)
        n_after_first = len(coll)
        assert coll.inserts == n_after_first and coll.updates == 0
        doc_ids = {d["cluster_id"]: d["_id"] for d in coll.find()}

        report = ingestor.push(chunks[1])
        inserts_before, updates_before = coll.inserts, coll.updates
        ingestor.checkpoint(store)
        # exactly the delta was written: one insert per new cluster, one
        # update per grown cluster -- unchanged documents untouched
        assert coll.inserts - inserts_before == len(report.new_clusters)
        assert coll.updates - updates_before == len(report.grown_clusters)
        for cid, doc_id in doc_ids.items():
            assert coll.find_one({"cluster_id": cid})["_id"] == doc_id

        # a no-op checkpoint writes nothing at all
        inserts_before, updates_before = coll.inserts, coll.updates
        ingestor.checkpoint(store)
        assert (coll.inserts, coll.updates) == (inserts_before, updates_before)

    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_checkpointed_index_equals_live(self, table, config, index_mode):
        chunks, _ = row_chunks(table, 3)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        store = DocumentStore()
        for chunk in chunks:
            ingestor.push(chunk)
            ingestor.checkpoint(store)
        loaded = TopKIndex.from_docstore(store, table.stream)
        live = ingestor.index
        if index_mode == "lazy":
            live = live.materialize()
        assert loaded.num_clusters == live.num_clusters
        for cid in range(live.num_clusters):
            assert loaded.cluster(cid) == live.cluster(cid)
            np.testing.assert_array_equal(loaded.members(cid), live.members(cid))
            np.testing.assert_array_equal(loaded.frames(cid), live.frames(cid))

    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_checkpoint_onto_stale_snapshot_rewrites_wholesale(
        self, table, config, index_mode
    ):
        """A reopened session checkpointing into a store that holds a
        previous session's larger snapshot must not merge into it --
        stale cluster documents would point at rows past the new
        session's table."""
        store = DocumentStore()
        chunks, bounds = row_chunks(table, 3)
        first = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        for chunk in chunks:
            first.push(chunk)
        first.checkpoint(store)
        old_docs = len(store.collection("clusters:%s" % table.stream))

        # the stream is reopened: a shorter session checkpoints into the
        # same store
        second = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        second.push(chunks[0])
        second.checkpoint(store)
        coll = store.collection("clusters:%s" % table.stream)
        assert second.index.num_clusters < old_docs
        assert len(coll) == second.index.num_clusters

        # the restored index answers over the short session's table
        restored = TopKIndex.from_docstore(store, table.stream)
        prefix = second.table
        for cid in range(restored.num_clusters):
            assert restored.members(cid).max() < len(prefix)
        engine = QueryEngine(restored, prefix, None, resnet152(),
                             query_token_fn=lambda c: c)
        cls = int(table.dominant_classes()[0])
        engine.query(cls)  # must not raise

    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_checkpoint_to_fresh_store_writes_full_snapshot(
        self, table, config, index_mode
    ):
        """Checkpointing into a store that missed earlier cursors must
        not write only the since-last-checkpoint delta."""
        chunks, _ = row_chunks(table, 3)
        ingestor = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode=index_mode
        )
        store_a = DocumentStore()
        ingestor.push(chunks[0])
        ingestor.checkpoint(store_a)  # clears the dirty cursor
        ingestor.push(chunks[1])
        store_b = DocumentStore()
        ingestor.checkpoint(store_b)  # fresh store: delta alone is partial
        name = "clusters:%s" % table.stream
        assert len(store_b.collection(name)) == ingestor.index.num_clusters
        loaded = TopKIndex.from_docstore(store_b, table.stream)
        assert loaded.num_clusters == ingestor.index.num_clusters
        # ... and store B accepts incremental deltas from here on: a
        # wholesale rewrite would drop and recreate the collection, a
        # delta keeps the same collection object and its documents
        coll_b = store_b.collection(name)
        ingestor.push(chunks[2])
        ingestor.checkpoint(store_b)
        assert store_b.collection(name) is coll_b
        assert len(coll_b) == ingestor.index.num_clusters
        coll_a = store_a.collection(name)
        assert len(coll_a) < ingestor.index.num_clusters  # A is behind

    def test_checkpoint_onto_same_shape_foreign_snapshot(self, table, config):
        """Two sessions with the same model/K but different clustering
        must not interleave documents in one store: the lineage epoch
        forces a wholesale rewrite instead of a silent merge."""
        chunks, _ = row_chunks(table, 3)
        store_x, store_y = DocumentStore(), DocumentStore()
        first = StreamIngestor(config, table.stream, fps=table.fps)
        for chunk in chunks:
            first.push(chunk)
        first.checkpoint(store_y)

        looser = FocusConfig(
            model=config.model, k=config.k,
            cluster_threshold=config.cluster_threshold * 2,
        )
        second = StreamIngestor(looser, table.stream, fps=table.fps)
        second.push(chunks[0])
        second.checkpoint(store_x)  # clears the dirty cursor elsewhere
        second.push(chunks[1])
        second.checkpoint(store_y)  # foreign snapshot: must not merge
        loaded = TopKIndex.from_docstore(store_y, table.stream)
        assert loaded.num_clusters == second.index.num_clusters
        live = second.index.materialize()
        for cid in range(loaded.num_clusters):
            np.testing.assert_array_equal(loaded.members(cid), live.members(cid))

    def test_multikey_docstore_updates(self):
        """Inserting/updating list-valued indexed fields keeps the
        multikey index consistent (the incremental checkpoint path)."""
        store = DocumentStore()
        coll = store.collection("c")
        coll.create_index("top_k")
        doc_id = coll.insert_one({"cluster_id": 0, "top_k": [3, 5]})
        assert [d["_id"] for d in coll.find({"top_k": {"$in": [5]}})] == [doc_id]
        coll.update_one(doc_id, {"top_k": [3, 7]})
        assert not coll.find({"top_k": {"$in": [5]}})
        assert [d["_id"] for d in coll.find({"top_k": {"$in": [7]}})] == [doc_id]
        coll.delete(doc_id)
        assert not coll.find({"top_k": {"$in": [3]}})


class TestVerificationCacheStreams:
    def test_invalidate_stream_uses_key_sets(self):
        cache = VerificationCache(capacity=64)
        for cid in range(8):
            cache.put(("a", cid, "gt"), 1)
            cache.put(("b", cid, "gt"), 2)
        assert cache.invalidate_stream("a") == 8
        assert len(cache) == 8
        assert cache._by_stream.keys() == {"b"}
        assert cache.invalidate_stream("a") == 0

    def test_invalidate_clusters(self):
        cache = VerificationCache(capacity=64)
        for cid in range(6):
            cache.put(("a", cid, "gt"), 1)
        cache.put(("a", 3, "gt2"), 1)  # same cluster, different GT model
        assert cache.invalidate_clusters("a", [3, 5]) == 3
        assert ("a", 3, "gt") not in cache
        assert ("a", 3, "gt2") not in cache
        assert ("a", 2, "gt") in cache
        assert cache.invalidate_clusters("a", []) == 0
        assert cache.invalidate_clusters("missing", [1]) == 0
        assert cache.stats()["invalidations"] == 3.0

    def test_eviction_prunes_stream_key_sets(self):
        cache = VerificationCache(capacity=2)
        cache.put(("a", 0, "gt"), 1)
        cache.put(("a", 1, "gt"), 1)
        cache.put(("b", 0, "gt"), 1)  # evicts ("a", 0)
        assert cache.evictions == 1
        assert cache.invalidate_stream("a") == 1

    def test_clear_resets_stream_sets(self):
        cache = VerificationCache()
        cache.put(("a", 0, "gt"), 1)
        cache.clear()
        assert cache.invalidate_stream("a") == 0


class TestFocusSystemLiveIngest:
    @pytest.fixture()
    def system(self, config):
        return FocusSystem(num_query_gpus=4)

    def test_open_requires_config_or_tuning_sample(self, system):
        with pytest.raises(ValueError, match="tune_on"):
            system.open_stream("auburn_c")

    def test_open_with_tuning_sample(self, table):
        system = FocusSystem(num_query_gpus=4)
        sample = table.scattered_sample(30.0)
        handle = system.open_stream("auburn_c", fps=table.fps, tune_on=sample)
        assert handle.live and handle.config is not None
        assert handle.tuning is not None

    def test_append_requires_live_session(self, system, table, config):
        system.ingest_stream(table, config=config)
        with pytest.raises(ValueError, match="open_stream"):
            system.append(table.stream, table)

    def test_query_mid_ingest_matches_one_shot_prefix(self, table, config):
        live = FocusSystem(num_query_gpus=4)
        live.open_stream(table.stream, fps=table.fps, config=config)
        chunks, bounds = row_chunks(table, 3)
        cls = int(table.dominant_classes()[0])
        for chunk, end in zip(chunks, bounds[1:]):
            live.append(table.stream, chunk)
            mask = np.zeros(len(table), dtype=bool)
            mask[:end] = True
            oneshot = FocusSystem(num_query_gpus=4)
            oneshot.ingest_stream(table.select(mask), config=config)
            a = live.query(table.stream, cls)
            b = oneshot.query(table.stream, cls)
            np.testing.assert_array_equal(a.frames, b.frames)
            assert a.gt_inferences == b.gt_inferences
            # cross-stream fan-out answers at the same watermark
            fan = live.query_all(cls)
            np.testing.assert_array_equal(
                fan.slices[table.stream].frames, a.frames
            )

    def test_ingest_contends_on_query_gpus(self, system, table, config):
        system.open_stream(table.stream, fps=table.fps, config=config)
        busy_before = system.cluster.total_busy_seconds
        chunks, _ = row_chunks(table, 2)
        report = system.append(table.stream, chunks[0])
        assert report.dispatch is not None
        assert report.dispatch.gpu_seconds > 0
        assert system.cluster.total_busy_seconds > busy_before

    def test_mid_ingest_cache_invalidation_counters(self, table, config):
        system = FocusSystem(num_query_gpus=4)
        system.open_stream(table.stream, fps=table.fps, config=config)
        chunks, _ = row_chunks(table, 2)
        system.append(table.stream, chunks[0])
        cls = int(table.dominant_classes()[0])
        first = system.query_all(cls)
        assert first.gt_inferences > 0
        cached = system.service.cache.stats()["size"]
        assert cached > 0
        # appending grows clusters but never moves a centroid: cached
        # verdicts survive and the repeat query hits instead of paying
        system.append(table.stream, chunks[1])
        assert system.service.cache.stats()["size"] == cached
        again = system.query_all(cls)
        assert again.cache_hits >= first.gt_inferences
        # a fresh session under the same name restarts cluster ids, so
        # opening one drops every cached verdict of the stream
        system.open_stream(table.stream, fps=table.fps, config=config)
        assert system.service.cache.stats()["invalidations"] >= cached
        assert system.service.cache.stats()["size"] == 0.0

    def test_checkpoint_resume_round_trip(self, table, config):
        system = FocusSystem(num_query_gpus=4)
        system.open_stream(table.stream, fps=table.fps, config=config)
        chunks, _ = row_chunks(table, 3)
        store = DocumentStore()
        for chunk in chunks[:2]:
            system.append(table.stream, chunk)
            system.checkpoint(store)
        # resume in a cold process at the checkpointed watermark
        resumed = FocusSystem(num_query_gpus=4)
        names = resumed.load_indexes(
            store, tables={table.stream: system.handle(table.stream).table}
        )
        assert names == [table.stream]
        assert resumed.handle(table.stream).restored
        cls = int(table.dominant_classes()[0])
        a = system.query(table.stream, cls)
        b = resumed.query(table.stream, cls)
        np.testing.assert_array_equal(a.frames, b.frames)
        meta = store.collection("stream-meta").find_one({"stream": table.stream})
        assert meta["live"] is True
        assert meta["watermark_s"] == pytest.approx(
            system.handle(table.stream).watermark_s
        )

    def test_handle_watermark(self, system, table, config):
        handle = system.open_stream(table.stream, fps=table.fps, config=config)
        assert handle.watermark_s == 0.0
        chunks, _ = row_chunks(table, 2)
        system.append(table.stream, chunks[0])
        assert handle.watermark_s == pytest.approx(float(chunks[0].time_s.max()))


class TestObservationTableConcat:
    def test_concat_round_trip(self, table):
        chunks, _ = row_chunks(table, 4)
        merged = ObservationTable.concat(chunks, duration_s=table.duration_s)
        assert len(merged) == len(table)
        np.testing.assert_array_equal(merged.track_id, table.track_id)
        np.testing.assert_array_equal(merged.time_s, table.time_s)
        np.testing.assert_array_equal(
            merged.appearance_seed, table.appearance_seed
        )

    def test_concat_validation(self, table):
        with pytest.raises(ValueError):
            ObservationTable.concat([])
        other = empty_observation_table("elsewhere", table.fps)
        with pytest.raises(ValueError, match="streams"):
            ObservationTable.concat([table, other])
        slow = empty_observation_table(table.stream, table.fps / 2)
        with pytest.raises(ValueError, match="fps"):
            ObservationTable.concat([table, slow])
