"""Unit tests for single-pass incremental clustering (Section 4.2)."""

import numpy as np
import pytest

from repro.core.clustering import ClusterSummary, IncrementalClusterer, cluster_table


def _unit(v):
    v = np.asarray(v, dtype=np.float64)
    return v / np.linalg.norm(v)


def _clusterer(threshold=0.3, dim=4, **kw):
    return IncrementalClusterer(threshold=threshold, dim=dim, **kw)


def test_first_object_opens_cluster():
    c = _clusterer()
    ids = c.add(np.array([_unit([1, 0, 0, 0])]), np.array([0]))
    assert ids.tolist() == [0]
    assert c.num_clusters == 1


def test_close_objects_share_cluster():
    c = _clusterer(threshold=0.5)
    base = _unit([1, 0, 0, 0])
    near = _unit([1, 0.1, 0, 0])
    ids = c.add(np.stack([base, near]), np.array([0, 1]))
    assert ids[0] == ids[1]


def test_far_object_opens_new_cluster():
    c = _clusterer(threshold=0.5)
    ids = c.add(
        np.stack([_unit([1, 0, 0, 0]), _unit([0, 1, 0, 0])]), np.array([0, 1])
    )
    assert ids[0] != ids[1]
    assert c.num_clusters == 2


def test_joins_nearest_cluster():
    c = _clusterer(threshold=0.8)
    a = _unit([1, 0, 0, 0])
    b = _unit([0, 1, 0, 0])
    probe = _unit([1, 0.2, 0, 0])  # nearer to a
    ids = c.add(np.stack([a, b, probe]), np.array([0, 1, 2]))
    assert ids[2] == ids[0]


def test_track_shortcut_semantics_match_strict():
    """The per-track shortcut must agree with the strict scan on data
    where the previous cluster is the nearest one (the common case)."""
    rng = np.random.RandomState(0)
    n, dim = 400, 8
    track_ids = np.repeat(np.arange(20), 20)
    anchors = rng.normal(size=(20, dim))
    anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
    feats = anchors[track_ids] + rng.normal(scale=0.01, size=(n, dim))

    fast = _clusterer(threshold=0.2, dim=dim, strict=False)
    slow = _clusterer(threshold=0.2, dim=dim, strict=True)
    ids_fast = fast.add(feats, track_ids)
    ids_slow = slow.add(feats, track_ids)
    np.testing.assert_array_equal(ids_fast, ids_slow)
    assert fast.shortcut_hits > 0


def test_live_cluster_cap_evicts_smallest():
    c = _clusterer(threshold=0.05, dim=4, max_live_clusters=3)
    # four far-apart singletons: eviction must kick in, ids stay valid
    vectors = np.eye(4)
    ids = c.add(vectors, np.arange(4))
    assert c.num_clusters == 4
    assert sorted(ids.tolist()) == [0, 1, 2, 3]
    summary = c.finalize()
    assert summary.num_clusters == 4
    assert (summary.sizes == 1).all()


def test_evicted_cluster_cannot_absorb():
    c = _clusterer(threshold=0.3, dim=4, max_live_clusters=2)
    a = _unit([1, 0, 0, 0])
    b = _unit([0, 1, 0, 0])
    d = _unit([0, 0, 1, 0])
    c.add(np.stack([a, a, b, d]), np.array([0, 0, 1, 2]))  # a has size 2; b evicted
    # a new object near b opens a fresh cluster (b is retired)
    ids = c.add(np.array([b]), np.array([3]))
    assert int(ids[0]) == c.num_clusters - 1


def test_suppressed_rows_join_track_cluster():
    c = _clusterer(threshold=0.3, dim=4)
    a = _unit([1, 0, 0, 0])
    junk = _unit([0, 0, 0, 1])  # far away; must be ignored for suppressed row
    pre = np.array([-1, -2], dtype=np.int64)
    ids = c.add(np.stack([a, junk]), np.array([7, 7]), pre)
    assert ids[0] == ids[1]


def test_summary_invariants(small_table, spec_model):
    summary = cluster_table(small_table, spec_model, threshold=0.12)
    assert summary.num_observations == len(small_table)
    # sizes sum to observations; every cluster has a seed row
    assert summary.sizes.sum() == len(small_table)
    assert len(summary.seed_rows) == summary.num_clusters
    # seed row of each cluster is one of its members and carries its id
    members = summary.members_by_cluster()
    for cid in range(summary.num_clusters):
        assert summary.assignments[summary.seed_rows[cid]] == cid
        assert summary.seed_rows[cid] in members[cid]
        assert len(members[cid]) == summary.sizes[cid]


def test_threshold_monotone_cluster_count(small_table, spec_model):
    """Larger T merges more: cluster count decreases monotonically."""
    counts = [
        cluster_table(small_table, spec_model, threshold=t).num_clusters
        for t in (0.05, 0.12, 0.3)
    ]
    assert counts[0] >= counts[1] >= counts[2]


def test_chunked_equals_single_pass(tiny_table, spec_model):
    whole = cluster_table(tiny_table, spec_model, threshold=0.12, chunk_rows=10 ** 9)
    chunked = cluster_table(tiny_table, spec_model, threshold=0.12, chunk_rows=97)
    np.testing.assert_array_equal(whole.assignments, chunked.assignments)


def test_parameter_validation():
    with pytest.raises(ValueError):
        IncrementalClusterer(threshold=-1, dim=4)
    with pytest.raises(ValueError):
        IncrementalClusterer(threshold=0.1, dim=4, max_live_clusters=0)
    c = _clusterer()
    with pytest.raises(ValueError):
        c.add(np.zeros((2, 4)), np.zeros(3))


def test_empty_finalize():
    summary = _clusterer().finalize()
    assert summary.num_clusters == 0
    assert summary.num_observations == 0
