"""Shared fixtures: small synthetic tables and models.

Session-scoped because synthesis and model construction are
deterministic -- every test sees identical data.
"""

import numpy as np
import pytest

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.cnn.specialize import specialize
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="session")
def small_table():
    """~60 seconds of the busiest traffic stream."""
    return generate_observations("auburn_c", 60.0, 30.0)


@pytest.fixture(scope="session")
def tiny_table():
    """~20 seconds of a quiet stream (fast tests)."""
    return generate_observations("lausanne", 20.0, 30.0)


@pytest.fixture(scope="session")
def gt_model():
    return resnet152()


@pytest.fixture(scope="session")
def cheap_model():
    return cheap_cnn(1)


@pytest.fixture(scope="session")
def spec_model(small_table):
    return specialize(cheap_cnn(1), small_table.class_histogram(), 5, "auburn_c")
