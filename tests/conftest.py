"""Shared fixtures: small synthetic tables, models, and workloads.

Session-scoped because synthesis and model construction are
deterministic -- every test sees identical data.  The factories below
memoize generated tables and ingested systems so the suites that used
to rebuild the same workloads per module (streaming, serving, recovery)
share one copy and the suite's wall-clock stays bounded.
"""

import numpy as np
import pytest

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.cnn.specialize import specialize
from repro.core.config import FocusConfig
from repro.core.system import FocusSystem
from repro.storage.docstore import DocumentStore
from repro.video.synthesis import generate_observations

#: the three-camera serving/recovery workload used across suites
SERVICE_STREAMS = ["lausanne", "auburn_c", "jacksonh"]


@pytest.fixture(scope="session")
def table_factory():
    """Memoized observation-table synthesis: one table per distinct
    (stream, duration, fps) for the whole session."""
    cache = {}

    def make(stream: str, duration_s: float, fps: float):
        key = (stream, float(duration_s), float(fps))
        if key not in cache:
            cache[key] = generate_observations(stream, duration_s, fps)
        return cache[key]

    return make


@pytest.fixture(scope="session")
def small_table(table_factory):
    """~60 seconds of the busiest traffic stream."""
    return table_factory("auburn_c", 60.0, 30.0)


@pytest.fixture(scope="session")
def tiny_table(table_factory):
    """~20 seconds of a quiet stream (fast tests)."""
    return table_factory("lausanne", 20.0, 30.0)


@pytest.fixture(scope="session")
def live_table(table_factory):
    """~90 seconds of busy traffic: the live-ingest/chunking workload."""
    return table_factory("auburn_c", 90.0, 30.0)


@pytest.fixture(scope="session")
def gt_model():
    return resnet152()


@pytest.fixture(scope="session")
def cheap_model():
    return cheap_cnn(1)


@pytest.fixture(scope="session")
def live_config(cheap_model):
    """The fixed (tuning-free) config the chunked-ingest suites share."""
    return FocusConfig(model=cheap_model, k=2, cluster_threshold=0.12)


@pytest.fixture(scope="session")
def spec_model(small_table):
    return specialize(cheap_cnn(1), small_table.class_histogram(), 5, "auburn_c")


@pytest.fixture(scope="session")
def seeded_workload(table_factory, live_config):
    """A small, deterministic 3-stream workload for crash/fault drills.

    Returns ``(tables, config)``: one short table per service stream
    plus the shared tuning-free ingest config.  Small on purpose -- the
    crash-point sweep re-ingests it dozens of times.
    """
    tables = {
        stream: table_factory(stream, 20.0, 10.0) for stream in SERVICE_STREAMS
    }
    return tables, live_config


@pytest.fixture(scope="session")
def service_system(table_factory):
    """One system with three ingested cameras (session-scoped: ingest
    with tuning is the expensive part; queries against it are
    read-only for accounting tests that use deltas)."""
    system = FocusSystem()
    for stream in SERVICE_STREAMS:
        system.ingest_stream(table_factory(stream, 90.0, 15.0))
    return system


@pytest.fixture(scope="session")
def store_with_streams(service_system):
    """A document store holding the three service streams' persisted
    indexes + stream metadata (cold-start / load_indexes workloads)."""
    store = DocumentStore()
    service_system.save_indexes(store)
    return store
