"""Unit tests for the model zoo and compression search."""

import pytest

from repro.cnn.compression import compress, compression_ladder, dispersion_for_cost
from repro.cnn.zoo import (
    CHEAP_CNN_FAMILY,
    alexnet,
    cheap_cnn,
    generic_candidates,
    resnet18,
    resnet152,
    vgg16,
)


class TestZoo:
    def test_gt_is_resnet152(self):
        gt = resnet152()
        assert gt.is_ground_truth
        assert gt.gflops == pytest.approx(11.4)

    def test_cheap_cnn_cost_factors_match_figure5(self):
        """CheapCNN1/2/3 are 7x/28x/58x cheaper than GT (Figure 5)."""
        gt = resnet152()
        for i, factor in zip(CHEAP_CNN_FAMILY, (7.0, 28.0, 58.0)):
            assert cheap_cnn(i).cheaper_than(gt) == pytest.approx(factor, rel=0.01)

    def test_cheaper_models_have_higher_dispersion(self):
        d = [cheap_cnn(i).dispersion for i in CHEAP_CNN_FAMILY]
        assert d[0] < d[1] < d[2]

    def test_figure5_recall_anchors(self):
        """90% recall at K>=60/100/200 for CheapCNN1/2/3 (Figure 5)."""
        for i, k90 in zip(CHEAP_CNN_FAMILY, (60, 100, 200)):
            model = cheap_cnn(i)
            assert model.expected_recall_at_k(k90) >= 0.88
            assert model.expected_recall_at_k(k90 // 4) < 0.88

    def test_cheap_cnn_bad_index(self):
        with pytest.raises(ValueError):
            cheap_cnn(0)
        with pytest.raises(ValueError):
            cheap_cnn(4)

    def test_generic_candidates_all_cheaper_than_gt(self):
        gt = resnet152()
        for model in generic_candidates():
            assert model.gflops < gt.gflops
            assert model.dispersion > 0

    def test_alexnet_and_vgg_costs(self):
        assert alexnet().gflops == pytest.approx(0.72)
        assert vgg16().gflops == pytest.approx(15.5)
        assert vgg16().dispersion < alexnet().dispersion  # pricier = sharper


class TestCompression:
    def test_dispersion_grows_when_cost_shrinks(self):
        assert dispersion_for_cost(24.0, 1.6, 0.4) > 24.0
        assert dispersion_for_cost(24.0, 1.6, 1.6) == pytest.approx(24.0)

    def test_dispersion_invalid(self):
        with pytest.raises(ValueError):
            dispersion_for_cost(24.0, 0.0, 1.0)

    def test_compress_reduces_cost_and_accuracy(self):
        base = resnet18()
        small = compress(base, remove_layers=3, input_px=112)
        assert small.gflops < base.gflops
        assert small.dispersion > base.dispersion

    def test_compress_extrapolates_from_anchors(self):
        """Compressing ResNet18 to CheapCNN3's cost lands near its
        dispersion (the fitted exponent)."""
        base = resnet18()
        c3 = cheap_cnn(3)
        derived = compress(base, remove_layers=5, input_px=56)
        assert derived.dispersion == pytest.approx(c3.dispersion, rel=0.5)

    def test_compress_custom_name(self):
        model = compress(resnet18(), remove_layers=2, name="tiny")
        assert model.name == "tiny"

    def test_ladder_includes_base(self):
        base = resnet18()
        ladder = compression_ladder(base)
        assert base in ladder
        assert len(ladder) >= 6

    def test_ladder_never_upscales(self):
        base = compress(resnet18(), input_px=112)
        ladder = compression_ladder(base, input_sizes=(224, 112, 56))
        assert all(m.arch.input_px <= 112 for m in ladder)

    def test_ladder_costs_strictly_ordered_somewhere(self):
        ladder = compression_ladder(resnet18())
        costs = sorted(m.gflops for m in ladder)
        assert costs[0] < costs[-1]
