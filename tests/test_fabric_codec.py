"""Seeded round-trip fuzz tests for the fabric wire codec.

Everything the worker protocol ships across the process boundary must
decode back bit-identical: observation-table slices (including empty
and zero-copy views), query plans, answers with frames and segment
metrics, chunk reports, checkpoint outcomes.  Plus the two guard rails:
marshalled error envelopes re-raise with their original type, and a
foreign protocol version is refused instead of misread.
"""

import pickle

import numpy as np
import pytest

from repro.core.metrics import SegmentMetrics
from repro.core.query import QueryResult
from repro.core.streaming import ChunkReport
from repro.core.system import QueryAnswer
from repro.fabric import codec
from repro.fabric.codec import CodecError
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    RemoteShardError,
    StreamHandleInfo,
    encode_error,
    raise_remote,
)
from repro.serve.planner import QueryRequest
from repro.serve.service import MultiStreamAnswer, StreamCheckpoint, StreamSlice
from repro.storage.journal import StaleEpochError


def assert_tables_equal(left, right):
    assert left.stream == right.stream
    assert left.fps == right.fps
    assert left.duration_s == right.duration_s
    assert len(left) == len(right)
    for name in codec.TABLE_COLUMNS:
        a, b = getattr(left, name), getattr(right, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


def random_result(rng):
    return QueryResult(
        class_id=int(rng.integers(0, 50)),
        token=int(rng.integers(0, 10_000)),
        candidate_clusters=[int(c) for c in rng.integers(0, 100, rng.integers(0, 8))],
        matched_clusters=[int(c) for c in rng.integers(0, 100, rng.integers(0, 8))],
        returned_rows=rng.integers(0, 10_000, rng.integers(0, 64)),
        returned_frames=rng.integers(0, 3_000, rng.integers(0, 64)),
        gt_inferences=int(rng.integers(0, 500)),
        gpu_seconds=float(rng.random()),
    )


def random_metrics(rng):
    if rng.random() < 0.25:
        return None
    true_segments = int(rng.integers(0, 20))
    returned = int(rng.integers(0, 20))
    return SegmentMetrics(
        class_id=int(rng.integers(0, 50)),
        true_segments=true_segments,
        returned_segments=returned,
        correct_segments=int(rng.integers(0, min(true_segments, returned) + 1)),
    )


def assert_results_equal(left, right):
    assert left.class_id == right.class_id
    assert left.token == right.token
    assert list(left.candidate_clusters) == list(right.candidate_clusters)
    assert list(left.matched_clusters) == list(right.matched_clusters)
    assert np.array_equal(left.returned_rows, right.returned_rows)
    assert np.array_equal(left.returned_frames, right.returned_frames)
    assert left.gt_inferences == right.gt_inferences
    assert left.gpu_seconds == right.gpu_seconds


class TestArrays:
    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_dtypes_and_shapes(self, seed):
        rng = np.random.default_rng(seed)
        for dtype in ("int64", "int32", "float64", "float32", "bool"):
            shape = tuple(
                int(n) for n in rng.integers(0, 6, rng.integers(1, 3))
            )
            arr = (rng.random(shape) * 100).astype(dtype)
            out = codec.decode_array(codec.encode_array(arr))
            assert out.dtype == arr.dtype
            assert out.shape == arr.shape
            assert np.array_equal(out, arr)

    def test_decoded_array_is_writable_and_owns_memory(self):
        arr = np.arange(12)
        out = codec.decode_array(codec.encode_array(arr))
        out[0] = 99  # np.frombuffer views are read-only; the copy is not
        assert arr[0] == 0

    def test_non_contiguous_view_encodes_like_its_copy(self):
        base = np.arange(40).reshape(8, 5)
        view = base[::2, 1:]
        assert not view.flags["C_CONTIGUOUS"]
        out = codec.decode_array(codec.encode_array(view))
        assert np.array_equal(out, view.copy())

    def test_wrong_kind_refused(self):
        env = codec.encode_array(np.arange(3))
        with pytest.raises(CodecError, match="expected a 'table'"):
            codec.decode_table(env)


class TestTables:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_slices_round_trip(self, table_factory, seed):
        rng = np.random.default_rng(100 + seed)
        stream = ["auburn_c", "jacksonh", "lausanne"][seed % 3]
        table = table_factory(stream, 20.0, 10.0)
        for _ in range(8):
            a = int(rng.integers(0, len(table)))
            b = int(rng.integers(a, len(table) + 1))
            view = table.slice(a, b)  # zero-copy view of the parent
            assert_tables_equal(
                view, codec.decode_table(codec.encode_table(view))
            )

    def test_empty_slice_round_trips(self, table_factory):
        table = table_factory("auburn_c", 20.0, 10.0)
        empty = table.slice(5, 5)
        assert len(empty) == 0
        out = codec.decode_table(codec.encode_table(empty))
        assert_tables_equal(empty, out)

    def test_full_table_round_trips(self, table_factory):
        table = table_factory("auburn_c", 20.0, 10.0)
        assert_tables_equal(
            table, codec.decode_table(codec.encode_table(table))
        )


class TestQueryPlansAndAnswers:
    @pytest.mark.parametrize("seed", range(6))
    def test_query_request_round_trip(self, seed):
        rng = np.random.default_rng(200 + seed)
        request = QueryRequest(
            clazz=int(rng.integers(0, 50)) if rng.random() < 0.5 else "person",
            streams=None
            if rng.random() < 0.3
            else ["s%d" % i for i in range(rng.integers(1, 4))],
            kx=None if rng.random() < 0.5 else int(rng.integers(1, 10)),
            time_range=None
            if rng.random() < 0.5
            else (float(rng.random() * 10), float(10 + rng.random() * 10)),
        )
        out = codec.decode_query_request(codec.encode_query_request(request))
        assert out == request

    @pytest.mark.parametrize("seed", range(6))
    def test_query_answer_round_trip(self, seed):
        rng = np.random.default_rng(300 + seed)
        answer = QueryAnswer(
            stream="s%d" % seed,
            class_id=int(rng.integers(0, 50)),
            class_name="class-%d" % seed,
            frames=rng.integers(0, 3_000, rng.integers(0, 40)),
            latency_seconds=float(rng.random()),
            gt_inferences=int(rng.integers(0, 100)),
            metrics=random_metrics(rng),
            result=random_result(rng),
        )
        out = codec.decode_query_answer(codec.encode_query_answer(answer))
        assert out.stream == answer.stream
        assert out.class_id == answer.class_id
        assert out.class_name == answer.class_name
        assert np.array_equal(out.frames, answer.frames)
        assert out.latency_seconds == answer.latency_seconds
        assert out.gt_inferences == answer.gt_inferences
        if answer.metrics is None:
            assert out.metrics is None
        else:
            assert out.metrics == answer.metrics
        assert_results_equal(out.result, answer.result)

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_answer_round_trip(self, seed):
        rng = np.random.default_rng(400 + seed)
        slices = {
            "s%d" % i: StreamSlice(
                stream="s%d" % i,
                result=random_result(rng),
                metrics=random_metrics(rng),
            )
            for i in range(int(rng.integers(1, 5)))
        }
        answer = MultiStreamAnswer(
            class_id=int(rng.integers(0, 50)),
            class_name="class-%d" % seed,
            slices=slices,
            latency_seconds=float(rng.random()),
            gt_inferences=int(rng.integers(0, 200)),
            candidates=int(rng.integers(0, 200)),
            cache_hits=int(rng.integers(0, 200)),
            duplicates_coalesced=int(rng.integers(0, 200)),
        )
        out = codec.decode_multi_answer(codec.encode_multi_answer(answer))
        assert sorted(out.slices) == sorted(answer.slices)
        for name in answer.slices:
            assert out.slices[name].stream == name
            assert_results_equal(
                out.slices[name].result, answer.slices[name].result
            )
            assert out.slices[name].metrics == answer.slices[name].metrics
        for field in (
            "class_id",
            "class_name",
            "latency_seconds",
            "gt_inferences",
            "candidates",
            "cache_hits",
            "duplicates_coalesced",
        ):
            assert getattr(out, field) == getattr(answer, field)


class TestReports:
    @pytest.mark.parametrize("seed", range(4))
    def test_chunk_report_round_trip_drops_dispatch(self, seed):
        rng = np.random.default_rng(500 + seed)
        report = ChunkReport(
            chunk_rows=int(rng.integers(0, 500)),
            total_rows=int(rng.integers(500, 5_000)),
            watermark_s=float(rng.random() * 100),
            suppressed=int(rng.integers(0, 50)),
            cnn_inferences=int(rng.integers(0, 500)),
            gpu_seconds=float(rng.random()),
            new_clusters=[int(c) for c in rng.integers(0, 30, rng.integers(0, 5))],
            grown_clusters=[int(c) for c in rng.integers(0, 30, rng.integers(0, 5))],
            dispatch=object(),  # worker-local; must not cross the wire
        )
        out = codec.decode_chunk_report(codec.encode_chunk_report(report))
        assert out.dispatch is None
        for field in (
            "chunk_rows",
            "total_rows",
            "watermark_s",
            "suppressed",
            "cnn_inferences",
            "gpu_seconds",
            "new_clusters",
            "grown_clusters",
        ):
            assert getattr(out, field) == getattr(report, field)

    def test_checkpoint_round_trip(self):
        for outcome in (
            StreamCheckpoint(stream="a", epoch=3, durable=True),
            StreamCheckpoint(
                stream="b", epoch=0, durable=False, error="boom", landed=False
            ),
        ):
            out = codec.decode_checkpoint(codec.encode_checkpoint(outcome))
            assert out == outcome
            assert out.committed == outcome.committed

    def test_handle_info_round_trip(self):
        info = StreamHandleInfo(
            stream="auburn_c",
            live=True,
            restored=False,
            watermark_s=12.5,
            rows=400,
            duration_s=13.0,
            fps=10.0,
        )
        assert codec.decode_handle_info(codec.encode_handle_info(info)) == info


class TestErrorEnvelopes:
    def test_picklable_exception_rearises_with_type_and_args(self):
        try:
            raise KeyError("missing-stream")
        except KeyError as exc:
            env = encode_error(exc)
        with pytest.raises(KeyError) as info:
            raise_remote(env)
        assert info.value.args == ("missing-stream",)
        assert "missing-stream" in info.value.remote_traceback

    def test_domain_exception_survives(self):
        env = encode_error(StaleEpochError("zombie lost the CAS"))
        with pytest.raises(StaleEpochError, match="zombie lost the CAS"):
            raise_remote(env)

    def test_unpicklable_exception_rebuilt_from_triple(self):
        class Unpicklable(RuntimeError):
            def __reduce__(self):
                raise TypeError("nope")

        env = encode_error(Unpicklable("worker-side detail"))
        assert "pickled" not in env
        # a test-local class cannot be imported client-side either
        with pytest.raises(RemoteShardError, match="worker-side detail"):
            raise_remote(env)

    def test_pickle_round_trip_is_verified_not_assumed(self):
        class DumpsButNotLoads(RuntimeError):
            """Pickles fine; explodes on load (a module-moved exception)."""

            def __setstate__(self, state):
                raise TypeError("cannot rebuild")

        env = encode_error(DumpsButNotLoads("detail"))
        # encode_error must have noticed loads() failing and dropped the blob
        assert "pickled" not in env


class TestVersionGuards:
    def test_codec_refuses_foreign_version(self):
        env = codec.encode_array(np.arange(3))
        env["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(CodecError, match="version mismatch"):
            codec.decode_array(env)

    def test_every_envelope_carries_kind_and_version(self, table_factory):
        table = table_factory("auburn_c", 20.0, 10.0)
        env = codec.encode_table(table)
        assert env["kind"] == "table"
        assert env["v"] == PROTOCOL_VERSION
        assert env["columns"]["time_s"]["v"] == PROTOCOL_VERSION

    def test_envelopes_are_plain_primitives(self, table_factory):
        """The whole point of the codec: what crosses the queue is
        primitives + bytes, never live numpy/dataclass objects."""
        table = table_factory("auburn_c", 20.0, 10.0)
        env = codec.encode_table(table.slice(0, 7))

        def walk(obj):
            if isinstance(obj, dict):
                for k, v in obj.items():
                    assert isinstance(k, str)
                    walk(v)
            elif isinstance(obj, (list, tuple)):
                for v in obj:
                    walk(v)
            else:
                assert obj is None or isinstance(
                    obj, (str, int, float, bool, bytes)
                ), type(obj)

        walk(env)
        pickle.dumps(env)  # and therefore queue-safe


# -- the shared-memory data plane --------------------------------------------

from repro.fabric import shm as shm_plane  # noqa: E402

needs_shm = pytest.mark.skipif(
    not shm_plane.shm_available(), reason="host cannot serve POSIX shm"
)

_seg_counter = iter(range(10_000))


def _named_sink(threshold=0, enabled=True):
    """A sink backed by a fresh named segment (reply-plane shape)."""
    name = "codec-test-%d" % next(_seg_counter)
    return shm_plane.ShmSink(
        alloc=lambda nbytes: shm_plane.create_segment(name, nbytes),
        threshold=threshold,
        enabled=enabled,
    )


def _consume(envelope_decode):
    """Run a decode against an owning reader; unlink on the way out."""
    reader = shm_plane.ShmReader(owns=True)
    try:
        return envelope_decode(reader)
    finally:
        reader.close()


@needs_shm
class TestShmDataPlane:
    @pytest.mark.parametrize("seed", range(5))
    def test_seeded_table_slices_round_trip_through_segments(
        self, table_factory, seed
    ):
        rng = np.random.default_rng(700 + seed)
        stream = ["auburn_c", "jacksonh", "lausanne"][seed % 3]
        table = table_factory(stream, 20.0, 10.0)
        lo = int(rng.integers(0, len(table) - 1))
        hi = int(rng.integers(lo + 1, len(table) + 1))  # >= 1 row
        view = table.slice(lo, hi)
        sink = _named_sink(threshold=1)
        envelope = codec.encode_table(view, sink)
        assert sink.seal() is not None  # everything crossed the plane
        sink.close_handoff()
        decoded = _consume(lambda r: codec.decode_table(envelope, r))
        assert_tables_equal(view, decoded)

    def test_empty_slice_round_trips_inline(self, table_factory):
        # an empty message never crosses the threshold: it inlines even
        # at threshold 1 (zero payload bytes), and decodes identically
        table = table_factory("auburn_c", 10.0, 10.0)
        empty = table.slice(5, 5)
        sink = _named_sink(threshold=1)
        envelope = codec.encode_table(empty, sink)
        sink.seal()
        sink.close_handoff()
        decoded = _consume(lambda r: codec.decode_table(envelope, r))
        assert_tables_equal(empty, decoded)

    def test_non_contiguous_view_round_trips(self):
        base = np.arange(64, dtype=np.float32).reshape(8, 8)
        view = base[::2, ::3]  # strided, non-contiguous
        sink = _named_sink(threshold=1)
        envelope = codec.encode_array(view, sink)
        assert sink.seal() is not None
        sink.close_handoff()
        decoded = _consume(lambda r: codec.decode_array(envelope, r))
        np.testing.assert_array_equal(decoded, view)
        assert decoded.flags["C_CONTIGUOUS"]

    def test_below_threshold_inlines_above_ships(self):
        small = np.arange(4, dtype=np.uint8)
        sink = _named_sink(threshold=1024)
        envelope = codec.encode_array(small, sink)
        assert sink.seal() is None  # 4 bytes < 1024: inline fallback
        assert "data" in envelope and "shm" not in envelope
        np.testing.assert_array_equal(codec.decode_array(envelope), small)

        big = np.arange(2048, dtype=np.uint8)
        sink = _named_sink(threshold=1024)
        envelope = codec.encode_array(big, sink)
        assert sink.seal() is not None
        assert "shm" in envelope and "data" not in envelope
        sink.close_handoff()
        np.testing.assert_array_equal(
            _consume(lambda r: codec.decode_array(envelope, r)), big
        )

    def test_disabled_sink_forces_inline_fallback(self):
        arr = np.arange(4096, dtype=np.float64)
        sink = shm_plane.ShmSink(alloc=None, threshold=1, enabled=False)
        envelope = codec.encode_array(arr, sink)
        assert sink.seal() is None
        np.testing.assert_array_equal(codec.decode_array(envelope), arr)

    def test_failed_allocation_forces_inline_fallback(self):
        arr = np.arange(4096, dtype=np.float64)
        sink = shm_plane.ShmSink(alloc=lambda n: None, threshold=1)
        envelope = codec.encode_array(arr, sink)
        assert sink.seal() is None
        np.testing.assert_array_equal(codec.decode_array(envelope), arr)

    def test_descriptor_without_reader_refused(self):
        arr = np.arange(1024, dtype=np.uint8)
        sink = _named_sink(threshold=1)
        envelope = codec.encode_array(arr, sink)
        sink.seal()
        with pytest.raises(CodecError, match="no reader"):
            codec.decode_array(envelope)
        # clean up the segment the refused decode left behind
        sink.close_handoff()
        assert shm_plane.unlink_segment(envelope["shm"]["seg"])

    def test_blob_round_trips_and_reader_unlinks_on_close(self):
        payload = pickle.dumps({"docs": list(range(500))})
        sink = _named_sink(threshold=1)
        envelope = codec.encode_blob(payload, sink)
        name = sink.seal()
        assert name is not None
        sink.close_handoff()
        reader = shm_plane.ShmReader(owns=True)
        assert codec.decode_blob(envelope, reader) == payload
        assert reader.total_nbytes == len(payload)
        reader.close()
        # the owning reader consumed the segment: it is gone
        assert not shm_plane.unlink_segment(name)

    def test_multiple_payloads_pack_into_one_aligned_segment(self):
        sink = _named_sink(threshold=1)
        envelopes = []
        arrays = [
            np.arange(7, dtype=np.uint8),
            np.arange(33, dtype=np.float64),
            np.arange(5, dtype=np.int32),
        ]
        for arr in arrays:
            envelopes.append(codec.encode_array(arr, sink))
        name = sink.seal()
        assert name is not None
        segs = {e["shm"]["seg"] for e in envelopes}
        assert segs == {name}  # one segment for the whole message
        for e in envelopes:
            assert e["shm"]["off"] % 64 == 0
        sink.close_handoff()
        reader = shm_plane.ShmReader(owns=True)
        for envelope, arr in zip(envelopes, arrays):
            np.testing.assert_array_equal(
                codec.decode_array(envelope, reader), arr
            )
        reader.close()

    def test_pool_recycles_and_leak_checks(self):
        pool = shm_plane.ShmPool("codec-pool-%d" % next(_seg_counter))
        seg = pool.allocate(1000)
        assert seg is not None
        assert seg.size >= 4096  # power-of-two, page-multiple floor
        name = seg.name
        assert pool.leased_names() == [name]
        pool.release(name)
        assert pool.leased_names() == []
        again = pool.allocate(2000)  # same size class: recycled
        assert again.name == name
        pool.release(name)
        pool.release(name)  # idempotent
        leaked = pool.close()
        assert leaked == []
        assert not shm_plane.unlink_segment(name)  # close unlinked it
        assert pool.allocate(100) is None  # closed pool refuses

    def test_pool_close_reports_still_leased_segments(self):
        pool = shm_plane.ShmPool("codec-pool-%d" % next(_seg_counter))
        seg = pool.allocate(100)
        assert pool.close() == [seg.name]
        assert pool.close() == []  # idempotent

    def test_worker_shaped_reader_cache_does_not_own(self):
        # the worker attaches to pooled request segments through a
        # long-lived cache and must NOT unlink them on close
        pool = shm_plane.ShmPool("codec-pool-%d" % next(_seg_counter))
        sink = shm_plane.ShmSink(alloc=pool.allocate, threshold=1)
        envelope = codec.encode_blob(b"x" * 256, sink)
        name = sink.seal()
        cache = {}
        reader = shm_plane.ShmReader(cache=cache, owns=False)
        assert codec.decode_blob(envelope, reader) == b"x" * 256
        assert name in cache
        reader.close()
        # the segment survives the reader: the pool still owns it
        pool.release(name)
        assert pool.close() == []
