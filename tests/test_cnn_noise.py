"""Unit tests for the rank-dispersion / confusion noise model."""

import numpy as np
import pytest

from repro.cnn.noise import ConfusionModel, default_confusion, true_class_ranks
from repro.video.classes import class_id


def _seeds(n):
    return np.arange(n, dtype=np.uint64) * np.uint64(2654435761)


def test_zero_dispersion_is_ground_truth():
    ranks = true_class_ranks(1, _seeds(1000), np.ones(1000), 0.0)
    assert (ranks == 1).all()


def test_negative_dispersion_rejected():
    with pytest.raises(ValueError):
        true_class_ranks(1, _seeds(10), np.ones(10), -1.0)


def test_ranks_at_least_one_and_capped():
    ranks = true_class_ranks(1, _seeds(5000), np.ones(5000), 500.0)
    assert ranks.min() >= 1
    assert ranks.max() <= 1000


def test_recall_curve_matches_analytic():
    """recall@K ~= 1 - exp(-K / dispersion) (the Figure 5 shape)."""
    d = 24.0
    ranks = true_class_ranks(7, _seeds(200000), np.ones(200000), d)
    for k in (10, 60, 200):
        expected = 1 - np.exp(-k / d)
        assert (ranks <= k).mean() == pytest.approx(expected, abs=0.01)


def test_difficulty_worsens_rank():
    easy = true_class_ranks(7, _seeds(50000), np.full(50000, 0.5), 24.0)
    hard = true_class_ranks(7, _seeds(50000), np.full(50000, 2.0), 24.0)
    assert hard.mean() > easy.mean()


def test_ranks_deterministic_per_model():
    a = true_class_ranks(42, _seeds(100), np.ones(100), 24.0)
    b = true_class_ranks(42, _seeds(100), np.ones(100), 24.0)
    c = true_class_ranks(43, _seeds(100), np.ones(100), 24.0)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


class TestConfusionModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ConfusionModel()

    def test_slot_probability_pool_boost(self, model):
        car, taxi = class_id("car"), class_id("taxi")
        suit = class_id("suit")
        p_pool = model.slot_probability(np.asarray([taxi]), car)[0]
        p_far = model.slot_probability(np.asarray([suit]), car)[0]
        assert p_pool > p_far > 0


    def test_membership_monotone_in_k(self, model):
        true_cls = np.full(20000, class_id("taxi"))
        seeds = _seeds(20000)
        m2 = model.spurious_membership(1, seeds, true_cls, class_id("car"), 2)
        m50 = model.spurious_membership(1, seeds, true_cls, class_id("car"), 50)
        assert m50.mean() > m2.mean()

    def test_membership_k1_empty(self, model):
        m = model.spurious_membership(1, _seeds(100), np.zeros(100, dtype=int), 5, 1)
        assert not m.any()

    def test_membership_deterministic(self, model):
        true_cls = np.zeros(500, dtype=int)
        a = model.spurious_membership(9, _seeds(500), true_cls, 3, 10)
        b = model.spurious_membership(9, _seeds(500), true_cls, 3, 10)
        np.testing.assert_array_equal(a, b)

    def test_sample_slots_distinct_and_exclude_true(self, model):
        slots = model.sample_slots(1, 12345, class_id("car"), 50)
        assert len(slots) == 50
        assert len(set(slots)) == 50
        assert class_id("car") not in slots

    def test_sample_slots_zero(self, model):
        assert model.sample_slots(1, 1, 0, 0) == []

    def test_sample_slots_deterministic(self, model):
        a = model.sample_slots(1, 777, 10, 20)
        b = model.sample_slots(1, 777, 10, 20)
        assert a == b

    def test_invalid_pool_mass(self):
        with pytest.raises(ValueError):
            ConfusionModel(pool_mass=1.5)

    def test_default_confusion_shared(self):
        assert default_confusion() is default_confusion()
