"""Smoke tests for the fast experiment entry points.

The heavy end-to-end figures are exercised by benchmarks/; these tests
cover the light-weight experiments and the structural contracts of each
entry point at tiny scale.
"""

import numpy as np
import pytest

from repro.core.config import AccuracyTarget
from repro.eval import experiments as ex


def test_table1_has_all_streams():
    rows = ex.table1_dataset_characteristics(duration_s=60.0)
    assert len(rows) == 13
    assert {r["type"] for r in rows} == {"traffic", "surveillance", "news"}


def test_fig5_structure():
    result = ex.fig5_recall_vs_k("lausanne", ks=(10, 60), duration_s=60.0)
    assert set(result["models"]) == {"cheapcnn1", "cheapcnn2", "cheapcnn3"}
    for d in result["models"].values():
        assert len(d["recall"]) == 2
        assert 0 <= d["recall"][0] <= d["recall"][1] <= 1


def test_fig3_small_window():
    result = ex.fig3_class_cdf(streams=("auburn_c", "lausanne"), duration_s=3600.0)
    assert set(result["streams"]) == {"auburn_c", "lausanne"}
    for d in result["streams"].values():
        cdf = d["cdf"]
        assert abs(cdf[-1] - 1.0) < 1e-9
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))
    assert 0 <= result["mean_jaccard"] <= 1


def test_sec223_small():
    out = ex.sec223_feature_nearest_neighbour(streams=("lausanne",), duration_s=20.0)
    assert 0.9 <= out["lausanne"] <= 1.0


def test_fig6_structure():
    result = ex.fig6_parameter_selection("lausanne", duration_s=120.0)
    assert result["viable"]
    assert result["pareto"]
    assert set(result["chosen"]) == {"balance", "opt-ingest", "opt-query"}
    for p in result["viable"]:
        assert 0 < p["ingest_cost"] <= 1.0


def test_sec67_structure():
    rows = ex.sec67_query_rates(streams=("lausanne",), duration_s=120.0)
    assert len(rows) == 1
    assert rows[0]["all_queried_cheaper_than_ingest_all"] > 1
    assert rows[0]["query_time_only_faster_than_query_all"] > 1
