"""Unit tests for the evaluation harness (runner, workloads, reporting)."""

import numpy as np
import pytest

from repro.core.config import AccuracyTarget, Policy
from repro.eval import reporting
from repro.eval.runner import StreamRunResult, clear_cache, run_stream
from repro.eval.workloads import dominant_class_workload, rare_class_workload
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="module")
def result():
    clear_cache()
    return run_stream("lausanne", duration_s=120.0)


class TestRunner:
    def test_factors_positive(self, result):
        assert result.ingest_cheaper_by > 5
        assert result.query_faster_by > 2

    def test_accuracy_targets_met(self, result):
        assert result.precision >= 0.93
        assert result.recall >= 0.93

    def test_policy_points_present(self, result):
        assert set(result.policy_points) == {"opt-ingest", "balance", "opt-query"}
        for point in result.policy_points.values():
            assert point.ingest_cheaper_by > 1
            assert point.query_faster_by > 1

    def test_cache_returns_same_object(self, result):
        again = run_stream("lausanne", duration_s=120.0)
        assert again is result

    def test_cache_distinguishes_parameters(self, result):
        other = run_stream("lausanne", duration_s=120.0, policy=Policy.OPT_INGEST)
        assert other is not result

    def test_no_cache_flag(self, result):
        fresh = run_stream("lausanne", duration_s=120.0, use_cache=False)
        assert fresh is not result
        # but deterministic: identical numbers
        assert fresh.ingest_cheaper_by == pytest.approx(result.ingest_cheaper_by)
        assert fresh.query_faster_by == pytest.approx(result.query_faster_by)

    def test_per_class_latencies(self, result):
        assert set(result.per_class_query_seconds) == set(result.dominant_classes)


class TestWorkloads:
    def test_dominant_workload(self):
        table = generate_observations("auburn_c", 60.0, 30.0)
        workload = dominant_class_workload(table)
        assert len(workload) >= 1
        assert set(workload.class_ids) == set(table.dominant_classes())

    def test_rare_workload_disjoint_from_dominant(self):
        table = generate_observations("auburn_c", 120.0, 30.0)
        dominant = set(dominant_class_workload(table).class_ids)
        rare = rare_class_workload(table, max_classes=3)
        assert not (set(rare.class_ids) & dominant)


class TestReporting:
    def test_format_table(self):
        rows = [{"a": 1, "b": 123.456}, {"a": 2, "b": 0.5}]
        text = reporting.format_table(rows, columns=("a", "b"), title="T")
        assert "T" in text
        assert "123" in text
        assert "0.500" in text

    def test_format_empty(self):
        assert "(no rows)" in reporting.format_table([], columns=("a",))

    def test_factor(self):
        assert reporting.factor(57.6) == "58x"

    def test_nan(self):
        text = reporting.format_table([{"a": float("nan")}], columns=("a",))
        assert "nan" in text
